"""Unit tests for the PPE structural model, caches, SPU LS model, chip."""

import pytest

from repro.cell import CellChip, ConfigError, SpeMapping
from repro.cell.caches import CacheHierarchy
from repro.cell.topology import RingTopology


class TestPpeModel:
    def test_l1_load_plateau_is_half_peak(self, chip):
        assert chip.ppe.bandwidth_gbps("l1", "load", 8, 1) == pytest.approx(16.8)
        assert chip.ppe.peak_gbps() == pytest.approx(33.6)

    def test_l1_load_no_16b_gain(self, chip):
        assert chip.ppe.bandwidth_gbps("l1", "load", 16, 1) == pytest.approx(
            chip.ppe.bandwidth_gbps("l1", "load", 8, 1)
        )

    def test_proportional_scaling_below_8b(self, chip):
        b8 = chip.ppe.bandwidth_gbps("l1", "load", 8, 1)
        for element in (1, 2, 4):
            assert chip.ppe.bandwidth_gbps("l1", "load", element, 1) == pytest.approx(
                b8 * element / 8
            )

    def test_l1_store_below_load_but_16b_helps(self, chip):
        store8 = chip.ppe.bandwidth_gbps("l1", "store", 8, 1)
        load8 = chip.ppe.bandwidth_gbps("l1", "load", 8, 1)
        store16 = chip.ppe.bandwidth_gbps("l1", "store", 16, 1)
        assert store8 < load8
        assert store16 > store8 * 1.1

    def test_l2_much_lower_than_l1(self, chip):
        assert chip.ppe.bandwidth_gbps("l2", "load", 16, 1) < (
            chip.ppe.bandwidth_gbps("l1", "load", 16, 1) / 2
        )

    def test_l2_store_roughly_twice_load_one_thread(self, chip):
        ratio = chip.ppe.bandwidth_gbps("l2", "store", 16, 1) / chip.ppe.bandwidth_gbps(
            "l2", "load", 16, 1
        )
        assert 1.5 < ratio < 2.5

    def test_two_threads_help_l2(self, chip):
        assert chip.ppe.bandwidth_gbps("l2", "load", 16, 2) > (
            1.3 * chip.ppe.bandwidth_gbps("l2", "load", 16, 1)
        )

    def test_mem_load_equals_l2_load(self, chip):
        for threads in (1, 2):
            assert chip.ppe.bandwidth_gbps("mem", "load", 16, threads) == pytest.approx(
                chip.ppe.bandwidth_gbps("l2", "load", 16, threads)
            )

    def test_mem_results_under_six(self, chip):
        for op in ("load", "store", "copy"):
            for threads in (1, 2):
                for element in (1, 2, 4, 8, 16):
                    assert chip.ppe.bandwidth_gbps("mem", op, element, threads) < 6.0

    def test_explain_names_issue_limit_for_small_elements(self, chip):
        point = chip.ppe.explain("l1", "load", 2, 1)
        assert "issue" in point.limiter
        plateau_point = chip.ppe.explain("l2", "load", 16, 1)
        assert "miss" in plateau_point.limiter

    def test_invalid_arguments_rejected(self, chip):
        with pytest.raises(ConfigError):
            chip.ppe.bandwidth_gbps("l3", "load", 8, 1)
        with pytest.raises(ConfigError):
            chip.ppe.bandwidth_gbps("l1", "swizzle", 8, 1)
        with pytest.raises(ConfigError):
            chip.ppe.bandwidth_gbps("l1", "load", 3, 1)
        with pytest.raises(ConfigError):
            chip.ppe.bandwidth_gbps("l1", "load", 8, 4)


class TestCacheHierarchy:
    def test_classification(self, config):
        caches = CacheHierarchy(config.ppe)
        assert caches.classify_buffer(8 * 1024) == "l1"
        assert caches.classify_buffer(128 * 1024) == "l2"
        assert caches.classify_buffer(4 * 1024 * 1024) == "mem"

    def test_copy_doubles_working_set(self, config):
        caches = CacheHierarchy(config.ppe)
        assert caches.classify_buffer(24 * 1024, working_sets=1) == "l1"
        assert caches.classify_buffer(24 * 1024, working_sets=2) == "l2"

    def test_buffer_sizing_pins_levels(self, config):
        caches = CacheHierarchy(config.ppe)
        for level in ("l1", "l2", "mem"):
            nbytes = caches.buffer_bytes_for(level)
            assert caches.classify_buffer(nbytes) == level

    def test_fits(self, config):
        caches = CacheHierarchy(config.ppe)
        assert caches.fits("l2", 100 * 1024)
        assert not caches.fits("l1", 100 * 1024)
        assert caches.fits("mem", 10 ** 8)

    def test_validation(self, config):
        caches = CacheHierarchy(config.ppe)
        with pytest.raises(ConfigError):
            caches.classify_buffer(0)
        with pytest.raises(ConfigError):
            caches.buffer_bytes_for("l4")


class TestSpuLocalStoreModel:
    def test_peak_at_16_bytes(self, chip):
        assert chip.spe(0).ls_bandwidth_gbps("load", 16) == pytest.approx(33.6)
        assert chip.spe(0).ls_bandwidth_gbps("store", 16) == pytest.approx(33.6)

    def test_subword_loads_proportional(self, chip):
        spe = chip.spe(0)
        assert spe.ls_bandwidth_gbps("load", 4) == pytest.approx(33.6 / 4)

    def test_subword_stores_pay_rmw(self, chip):
        spe = chip.spe(0)
        assert spe.ls_bandwidth_gbps("store", 8) < spe.ls_bandwidth_gbps("load", 8)

    def test_copy_is_harmonic_mean(self, chip):
        spe = chip.spe(0)
        load = spe.ls_bandwidth_gbps("load", 16)
        store = spe.ls_bandwidth_gbps("store", 16)
        expected = 2 / (1 / load + 1 / store)
        assert spe.ls_bandwidth_gbps("copy", 16) == pytest.approx(expected)

    def test_invalid_args(self, chip):
        with pytest.raises(ConfigError):
            chip.spe(0).ls_bandwidth_gbps("load", 3)
        with pytest.raises(ConfigError):
            chip.spe(0).ls_bandwidth_gbps("prefetch", 16)


class TestCellChip:
    def test_spes_placed_by_mapping(self, config):
        mapping = SpeMapping((3, 1, 0, 2, 4, 5, 6, 7))
        chip = CellChip(config=config, mapping=mapping)
        assert chip.spe(0).node == "SPE3"
        assert chip.spe(2).node == "SPE0"

    def test_mapping_size_must_match(self, config):
        with pytest.raises(ConfigError):
            CellChip(config=config, mapping=SpeMapping.identity(4))

    def test_topology_must_offer_enough_spes(self, config):
        tiny = RingTopology(("PPE", "SPE0", "MIC"))
        with pytest.raises(ConfigError):
            CellChip(config=config, topology=tiny)

    def test_spe_index_bounds(self, chip):
        with pytest.raises(ConfigError):
            chip.spe(8)

    def test_gbps_helper(self, chip):
        def burner(env):
            yield env.timeout(2_100_000)

        chip.env.process(burner(chip.env))
        chip.run()
        assert chip.elapsed_seconds() == pytest.approx(1e-3)
        assert chip.gbps(1_000_000) == pytest.approx(1.0)

    def test_repr_mentions_mapping(self, chip):
        assert "mapping" in repr(chip)
