"""Tests for the crash-safe sweep journal (repro.runtime.journal)."""

import json
import os
import warnings

import pytest

from repro import reproduce
from repro.core.cache import repro_code_version
from repro.core.experiment import run_spec
from repro.runtime.journal import SweepJournal
from repro.runtime.parallel import SweepExecutor

from tests.test_parallel_and_cache import make_spec


@pytest.fixture
def micro_preset(monkeypatch):
    """Shrink the quick preset to a smoke-sized sweep."""
    monkeypatch.setitem(reproduce.PRESETS, "quick", ((16384,), 1, 2 ** 20))


def journal_path(tmp_path):
    return str(tmp_path / "journal.jsonl")


def test_round_trip_and_idempotence(tmp_path):
    spec = make_spec(7, n_elements=4, n_spes=1)
    sample = run_spec(spec)
    with SweepJournal(journal_path(tmp_path)) as journal:
        assert journal.get(spec) is None
        journal.record(spec, sample)
        journal.record(spec, sample)  # idempotent: one line, not two
        assert journal.get(spec) == sample
        assert len(journal) == 1
    with open(journal_path(tmp_path)) as handle:
        lines = [line for line in handle.read().splitlines() if line]
    assert len(lines) == 1
    payload = json.loads(lines[0])
    assert len(payload["key"]) == 64


def test_entries_persist_across_instances(tmp_path):
    specs = [make_spec(seed, n_elements=4, n_spes=1) for seed in (1, 2, 3)]
    samples = [run_spec(spec) for spec in specs]
    with SweepJournal(journal_path(tmp_path)) as journal:
        for spec, sample in zip(specs, samples, strict=True):
            journal.record(spec, sample)
    replay = SweepJournal(journal_path(tmp_path))
    assert replay.loaded == 3 and replay.dropped == 0
    for spec, sample in zip(specs, samples, strict=True):
        assert replay.get(spec) == sample


def test_truncated_tail_is_skipped_not_fatal(tmp_path):
    specs = [make_spec(seed, n_elements=4, n_spes=1) for seed in (1, 2)]
    with SweepJournal(journal_path(tmp_path)) as journal:
        for spec in specs:
            journal.record(spec, run_spec(spec))
    # Simulate a crash mid-append: chop the final line in half.
    with open(journal_path(tmp_path), "r+") as handle:
        text = handle.read()
        handle.seek(0)
        handle.truncate()
        handle.write(text[: len(text) - 30])
    replay = SweepJournal(journal_path(tmp_path))
    assert replay.loaded == 1
    assert replay.dropped == 1
    assert replay.get(specs[0]) is not None
    assert replay.get(specs[1]) is None
    assert "corrupt line(s) skipped" in replay.describe()


def test_garbage_lines_are_skipped(tmp_path):
    spec = make_spec(5, n_elements=4, n_spes=1)
    with SweepJournal(journal_path(tmp_path)) as journal:
        journal.record(spec, run_spec(spec))
    with open(journal_path(tmp_path), "a") as handle:
        handle.write("not json at all\n")
        handle.write('{"key": "short", "gbps": 1.0}\n')
        handle.write(json.dumps({"key": "f" * 64, "gbps": "not-a-float"}) + "\n")
    replay = SweepJournal(journal_path(tmp_path))
    assert replay.loaded == 1
    assert replay.dropped == 3
    assert replay.get(spec) is not None


def test_code_version_mismatch_is_a_miss(tmp_path):
    spec = make_spec(9, n_elements=4, n_spes=1)
    with SweepJournal(journal_path(tmp_path), code_version="v-old") as journal:
        journal.record(spec, run_spec(spec))
    stale = SweepJournal(journal_path(tmp_path), code_version="v-new")
    # The entry loads (it is well-formed) but its key no longer matches.
    assert stale.loaded == 1
    assert stale.get(spec) is None
    fresh = SweepJournal(journal_path(tmp_path), code_version="v-old")
    assert fresh.get(spec) is not None


def test_default_code_version_is_repros(tmp_path):
    journal = SweepJournal(journal_path(tmp_path))
    assert journal.code_version == repro_code_version()


def test_unwritable_journal_warns_once_and_continues(tmp_path, monkeypatch):
    spec_a = make_spec(1, n_elements=4, n_spes=1)
    spec_b = make_spec(2, n_elements=4, n_spes=1)
    sample_a, sample_b = run_spec(spec_a), run_spec(spec_b)
    journal = SweepJournal(journal_path(tmp_path))

    def broken_open(*args, **kwargs):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr("builtins.open", broken_open)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        journal.record(spec_a, sample_a)
        journal.record(spec_b, sample_b)
    runtime_warnings = [w for w in caught
                        if issubclass(w.category, RuntimeWarning)]
    assert len(runtime_warnings) == 1
    assert "not writable" in str(runtime_warnings[0].message)
    # The in-memory log still serves this process's replays.
    assert journal.get(spec_a) is not None
    assert journal.get(spec_b) is not None


def test_executor_replays_journal_without_simulating(tmp_path):
    specs = [make_spec(seed, n_elements=4, n_spes=1) for seed in (10, 11, 12)]
    path = journal_path(tmp_path)
    with SweepExecutor(jobs=1, journal=path) as first:
        expected = first.samples(list(specs))
    assert first.simulated == 3
    with SweepExecutor(jobs=1, journal=path) as second:
        replayed = second.samples(list(specs))
    assert replayed == expected
    assert second.simulated == 0
    assert second.journal_hits == 3
    assert "journal: 3 replayed" in second.describe()


def test_executor_accepts_journal_instance_and_does_not_close_it(tmp_path):
    spec = make_spec(3, n_elements=4, n_spes=1)
    journal = SweepJournal(journal_path(tmp_path))
    with SweepExecutor(jobs=1, journal=journal) as executor:
        executor.samples([spec])
    # Caller-owned journal stays usable after the executor closes.
    extra = make_spec(4, n_elements=4, n_spes=1)
    journal.record(extra, run_spec(extra))
    journal.close()
    assert SweepJournal(journal_path(tmp_path)).loaded == 2


def test_run_all_with_journal_matches_run_without(tmp_path, micro_preset):
    plain_dir = str(tmp_path / "plain")
    journal_dir = str(tmp_path / "journalled")

    assert reproduce.main(["--quick", "--no-cache", "--jobs", "1",
                           "--outdir", plain_dir]) in (0, 1)
    assert reproduce.main(["--quick", "--no-cache", "--jobs", "1",
                           "--outdir", journal_dir, "--resume"]) in (0, 1)
    # Resume over the now-complete journal: everything replays.
    assert reproduce.main(["--quick", "--no-cache", "--jobs", "1",
                           "--outdir", journal_dir, "--resume"]) in (0, 1)

    def read_tree(outdir):
        out = {}
        for dirpath, _dirnames, names in os.walk(outdir):
            for name in names:
                if name == "sweep-journal.jsonl":
                    continue
                path = os.path.join(dirpath, name)
                with open(path, "rb") as handle:
                    out[os.path.relpath(path, outdir)] = handle.read()
        return out

    plain = read_tree(plain_dir)
    assert plain
    assert read_tree(journal_dir) == plain
    assert os.path.exists(os.path.join(journal_dir, "sweep-journal.jsonl"))
