"""Property-based tests for the extension subsystems (kernels, runtime,
affinity): invariants that must hold for any parameters."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.affinity import CommunicationPattern, mapping_cost
from repro.cell.dma import legal_command_sizes
from repro.cell.topology import SpeMapping
from repro.kernels import Precision, RooflineModel, dot_product, matrix_multiply
from repro.kernels.specs import KernelSpec
from repro.runtime import chain, fan_out_fan_in, wavefront


@given(nbytes=st.integers(min_value=1, max_value=500000))
def test_legal_command_sizes_cover_and_are_legal(nbytes):
    sizes = legal_command_sizes(nbytes)
    assert all(16 <= size <= 16384 and size % 16 == 0 for size in sizes)
    covered = sum(sizes)
    # Full coverage up to quadword rounding of the tail.
    assert nbytes - 15 <= covered <= nbytes or covered == 16


@given(
    chunk=st.sampled_from([1024, 4096, 16384]),
    precision=st.sampled_from(list(Precision)),
)
def test_dot_product_intensity_is_precision_invariant(chunk, precision):
    # 2 FLOPs per element over 2 elements of traffic: FLOP/B depends only
    # on the element width.
    spec = dot_product(chunk_bytes=chunk, precision=precision)
    expected = 2 / (2 * precision.element_bytes)
    assert abs(spec.arithmetic_intensity - expected) < 1e-12


@given(block=st.sampled_from([4, 8, 16, 32, 64]))
def test_matmul_intensity_scales_linearly_with_block(block):
    spec = matrix_multiply(block=block, k_blocks=block)
    double = matrix_multiply(block=2 * block, k_blocks=2 * block)
    ratio = double.arithmetic_intensity / spec.arithmetic_intensity
    assert 1.8 < ratio < 2.2


@given(
    intensity=st.floats(min_value=0.01, max_value=100.0),
    n_spes=st.sampled_from([1, 2, 4, 8]),
)
def test_roofline_prediction_never_exceeds_either_roof(intensity, n_spes):
    roofline = RooflineModel()
    spec = KernelSpec(
        name="synthetic",
        read_bytes=(16384,),
        write_bytes=0,
        flops_per_iteration=intensity * 16384,
    )
    point = roofline.predict(spec, n_spes)
    assert point.predicted_gflops <= roofline.compute_roof(Precision.SINGLE, n_spes) + 1e-9
    assert (
        point.predicted_gflops
        <= spec.arithmetic_intensity * roofline.bandwidth_roof(n_spes) + 1e-9
    )
    expected_bound = (
        "bandwidth"
        if spec.arithmetic_intensity < roofline.ridge_intensity(Precision.SINGLE, n_spes)
        else "compute"
    )
    assert point.bound == expected_bound


@given(
    width=st.integers(min_value=1, max_value=6),
    steps=st.integers(min_value=1, max_value=6),
)
def test_wavefront_graph_invariants(width, steps):
    graph = wavefront(width=width, steps=steps)
    assert len(graph) == width * steps
    # Only the first row reads external input; later rows read deps.
    externals = [task for task in graph.tasks if task.external_input_bytes]
    assert len(externals) == width
    # Critical path spans all steps.
    flops = graph.tasks[0].flops
    assert graph.critical_path_flops == steps * flops


@given(n=st.integers(min_value=1, max_value=20))
def test_chain_critical_path_equals_total(n):
    graph = chain(n)
    assert graph.critical_path_flops == graph.total_flops


@given(width=st.integers(min_value=1, max_value=20))
def test_fan_consumers_bookkeeping(width):
    graph = fan_out_fan_in(width=width)
    source = graph.tasks[0]
    sink = graph.tasks[-1]
    assert len(graph.consumers[source]) == width
    assert graph.consumers[sink] == []


@settings(max_examples=25)
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_mapping_cost_non_negative_and_deterministic(seed):
    pattern = CommunicationPattern.cycle(8)
    mapping = SpeMapping.random(seed)
    cost = mapping_cost(pattern, mapping)
    assert cost >= 0
    assert cost == mapping_cost(pattern, mapping)


@given(seed=st.integers(min_value=0, max_value=1000))
def test_couples_cost_invariant_under_pair_relabeling(seed):
    """Swapping the two logical SPEs inside a pair cannot change the
    placement cost: the flows are symmetric."""
    mapping = SpeMapping.random(seed)
    base = CommunicationPattern.couples(8)
    swapped = CommunicationPattern(
        tuple((b, a, w) for a, b, w in base.flows)
    )
    assert mapping_cost(base, mapping) == mapping_cost(swapped, mapping)
