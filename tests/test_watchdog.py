"""Kernel watchdog and stall-diagnostic tests (repro.sim.core).

The simulator must never fail silently: a livelock trips the
``stall_after`` watchdog, an event-budget overrun trips ``max_events``,
and a drained queue with processes still waiting is reported as a
deadlock naming every blocked process and its wait target.
"""

import pytest

from repro.sim import (
    Environment,
    ProgressGuard,
    SimulationError,
    SimulationStall,
    TraceRecorder,
)


def test_stall_after_detects_zero_time_livelock():
    env = Environment()

    def spinner(env):
        while True:
            event = env.event()
            event.succeed()
            yield event  # resumes at the same timestamp, forever

    def bystander(env):
        yield env.event()  # legitimately blocked

    env.process(spinner(env))
    env.process(bystander(env), daemon=False)
    with pytest.raises(SimulationStall) as excinfo:
        env.run(stall_after=500)
    message = str(excinfo.value)
    assert "no-progress livelock" in message
    assert "bystander" in message  # blocked processes are named
    assert excinfo.value.blocked  # structured report available too


def test_stall_after_allows_busy_but_advancing_runs():
    env = Environment()

    def ticker(env):
        for _ in range(2000):
            yield env.timeout(1)

    env.process(ticker(env))
    env.run(stall_after=500)  # clock advances every event: no stall
    assert env.now == 2000


def test_max_events_budget_trips():
    env = Environment()

    def ticker(env):
        while True:
            yield env.timeout(1)

    env.process(ticker(env))
    with pytest.raises(SimulationStall, match="max_events"):
        env.run(max_events=100)


def test_drained_queue_with_blocked_process_is_a_deadlock():
    env = Environment()

    def one_shot(env):
        yield env.timeout(5)

    def waits_forever(env):
        yield env.event()

    env.process(one_shot(env))
    env.process(waits_forever(env))
    with pytest.raises(SimulationError) as excinfo:
        env.run()
    message = str(excinfo.value)
    assert "deadlock" in message
    assert "waits_forever" in message
    assert "waiting on" in message


def test_daemon_processes_are_exempt_from_deadlock_check():
    env = Environment()

    def service(env):
        yield env.event()  # a server loop parked on its request queue

    def client(env):
        yield env.timeout(3)

    env.process(service(env), daemon=True)
    env.process(client(env))
    env.run()  # drains cleanly: the daemon does not count as blocked
    assert env.now == 3


def test_stall_report_includes_trace_tail_when_tracing():
    env = Environment(trace=TraceRecorder())

    def spinner(env):
        while True:
            event = env.event()
            event.succeed()
            yield event

    env.process(spinner(env))
    with pytest.raises(SimulationStall, match="trace tail"):
        env.run(stall_after=100)


def test_run_until_event_drain_failure_names_blocked():
    env = Environment()

    def waits_forever(env):
        yield env.event()

    env.process(waits_forever(env))
    target = env.event()  # nobody ever succeeds it
    with pytest.raises(SimulationError, match="waits_forever"):
        env.run(until=target)


def test_progress_guard_trips_on_repeated_key():
    env = Environment()
    guard = ProgressGuard(env, "unit under test", limit=10)
    with pytest.raises(SimulationStall, match="unit under test"):
        for _ in range(20):
            guard.tick(("same", 0))


def test_progress_guard_resets_when_key_changes():
    env = Environment()
    guard = ProgressGuard(env, "unit under test", limit=10)
    for i in range(1000):
        guard.tick(("progress", i))  # key changes: never trips
