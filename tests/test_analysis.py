"""Unit tests for the analysis layer: stats, guidelines, ablation, streaming."""

import pytest

from repro.analysis import (
    AblationStudy,
    GuidelineAdvisor,
    StreamingComparison,
    crossover,
    efficiency,
    scaling_efficiency,
    speedup_series,
)
from repro.analysis.ablation import perturb
from repro.cell import CellConfig, ConfigError
from repro.core import (
    CouplesExperiment,
    CycleExperiment,
    PairSyncExperiment,
    PpeBandwidthExperiment,
    SpeMemoryExperiment,
)

VOLUME = 2 ** 20


class TestStatsHelpers:
    def test_efficiency(self):
        assert efficiency(8.4, 16.8) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            efficiency(1.0, 0.0)
        with pytest.raises(ValueError):
            efficiency(-1.0, 10.0)

    def test_speedup_series(self):
        assert speedup_series([(1, 10.0), (2, 20.0)]) == [
            (1, 1.0),
            (2, 2.0),
        ]
        with pytest.raises(ValueError):
            speedup_series([])

    def test_scaling_efficiency(self):
        series = scaling_efficiency([(1, 10.0), (2, 20.0), (4, 20.0)])
        assert series[1][1] == pytest.approx(1.0)
        assert series[2][1] == pytest.approx(0.5)

    def test_crossover(self):
        a = [(128, 1.0), (512, 3.0), (1024, 5.0)]
        b = [(128, 2.0), (512, 2.5), (1024, 4.0)]
        assert crossover(a, b) == 512
        assert crossover(b, a) is None
        with pytest.raises(ValueError):
            crossover(a, [(1, 1.0)])


class TestPerturb:
    def test_dotted_replacement(self):
        config = perturb(CellConfig(), "mfc.queue_depth", 4)
        assert config.mfc.queue_depth == 4
        assert CellConfig().mfc.queue_depth == 16

    def test_bad_paths_rejected(self):
        with pytest.raises(ConfigError):
            perturb(CellConfig(), "queue_depth", 4)
        with pytest.raises(ConfigError):
            perturb(CellConfig(), "mfc.bogus", 4)
        with pytest.raises(ConfigError):
            perturb(CellConfig(), "warp.speed", 4)


class TestAblationStudy:
    def test_sweeps_values(self):
        study = AblationStudy(
            parameter="mfc.queue_depth",
            values=[1, 16],
            metric=lambda config: float(config.mfc.queue_depth),
        )
        points = study.run()
        assert [point.metric for point in points] == [1.0, 16.0]
        text = AblationStudy.format(points)
        assert "mfc.queue_depth" in text

    def test_queue_depth_ablation_changes_bandwidth(self):
        """A 1-deep MFC queue cannot overlap transfers: bandwidth collapses
        versus the 16-deep queue (the mechanism behind delayed sync)."""

        def pair_bandwidth(config):
            result = PairSyncExperiment(
                sync_policies=(2 ** 30,),
                element_sizes=(4096,),
                repetitions=1,
                bytes_per_spe=VOLUME,
                config=config,
            ).run()
            return result.table("sync").mean(2 ** 30, 4096)

        study = AblationStudy("mfc.queue_depth", [1, 16], pair_bandwidth)
        shallow, deep = study.run()
        assert deep.metric > 1.5 * shallow.metric

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigError):
            AblationStudy("mfc.queue_depth", [], lambda config: 0.0)


class TestGuidelines:
    def test_advisor_emits_nothing_without_results(self):
        assert GuidelineAdvisor().guidelines() == []

    def test_advisor_derives_rules_from_results(self):
        advisor = GuidelineAdvisor()
        advisor.add_ppe("l1", PpeBandwidthExperiment("l1").run())
        advisor.add_ppe("l2", PpeBandwidthExperiment("l2").run())
        advisor.add_memory(
            SpeMemoryExperiment(
                element_sizes=(16384,),
                directions=("get",),
                repetitions=1,
                bytes_per_spe=VOLUME,
            ).run()
        )
        rules = advisor.guidelines()
        texts = " ".join(rule.rule for rule in rules)
        assert "SIMD" in texts  # vectorize
        assert "two SPEs" in texts or "at least two" in texts.lower()
        assert all(rule.advantage > 1.0 for rule in rules)

    def test_lists_rule_from_couples(self):
        advisor = GuidelineAdvisor()
        advisor.add_couples(
            CouplesExperiment(
                spe_counts=(2,),
                element_sizes=(256, 16384),
                repetitions=1,
                bytes_per_spe=VOLUME,
            ).run()
        )
        rules = advisor.guidelines()
        assert any("DMA lists" in rule.rule for rule in rules)

    def test_saturation_rule_needs_both_experiments(self):
        advisor = GuidelineAdvisor()
        advisor.add_cycle(
            CycleExperiment(
                spe_counts=(2,),
                element_sizes=(16384,),
                repetitions=1,
                bytes_per_spe=VOLUME,
            ).run()
        )
        # couples missing -> no saturation rule, no crash
        assert all("saturating" not in rule.rule for rule in advisor.guidelines())


class TestStreaming:
    def test_two_streams_beat_one(self):
        results = StreamingComparison(chunks_per_stream_unit=24).run()
        assert results["double"].gbps > 1.4 * results["single"].gbps
        assert results["single"].spes_per_pipeline == 8
        assert results["double"].n_pipelines == 2
        # Same data volume both ways.
        assert results["double"].total_bytes == results["single"].total_bytes

    def test_compute_cycles_slow_both_configurations(self):
        fast = StreamingComparison(chunks_per_stream_unit=16).run()
        slow = StreamingComparison(
            chunks_per_stream_unit=16, compute_cycles=40000
        ).run()
        assert slow["single"].gbps < fast["single"].gbps
        assert slow["double"].gbps < fast["double"].gbps
