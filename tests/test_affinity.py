"""Unit and integration tests for the SPE affinity planner."""

import statistics

import pytest

from repro.analysis.affinity import (
    CommunicationPattern,
    mapping_cost,
    measure_mapping,
    plan_mapping,
)
from repro.cell import ConfigError, SpeMapping
from repro.cell.topology import RingTopology


class TestCommunicationPattern:
    def test_couples_factory(self):
        pattern = CommunicationPattern.couples(8)
        assert len(pattern.flows) == 4
        assert pattern.n_spes_required == 8
        with pytest.raises(ConfigError):
            CommunicationPattern.couples(5)

    def test_cycle_factory(self):
        pattern = CommunicationPattern.cycle(4)
        assert pattern.flows == ((0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0))
        with pytest.raises(ConfigError):
            CommunicationPattern.cycle(1)

    def test_validation(self):
        with pytest.raises(ConfigError):
            CommunicationPattern(((0, 0, 1.0),))
        with pytest.raises(ConfigError):
            CommunicationPattern(((0, 1, 0.0),))


class TestMappingCost:
    def test_adjacent_pairs_cost_less_than_spread_pairs(self):
        topology = RingTopology()
        pattern = CommunicationPattern.couples(8)
        # Physical SPE0/SPE2 are ring neighbours (indices 10 and 9), as
        # are SPE1/SPE3 (1 and 2) etc: map logical pairs onto physical
        # neighbours.
        adjacent = SpeMapping((0, 2, 1, 3, 4, 6, 5, 7))
        spread = SpeMapping((0, 7, 1, 6, 2, 5, 3, 4))
        assert mapping_cost(pattern, adjacent, topology) < mapping_cost(
            pattern, spread, topology
        )

    def test_cost_is_deterministic(self):
        pattern = CommunicationPattern.cycle(8)
        mapping = SpeMapping.random(3)
        assert mapping_cost(pattern, mapping) == mapping_cost(pattern, mapping)


class TestPlanMapping:
    def test_best_beats_worst_on_cost(self):
        pattern = CommunicationPattern.couples(8)
        best = plan_mapping(pattern, objective="best")
        worst = plan_mapping(pattern, objective="worst")
        assert mapping_cost(pattern, best) < mapping_cost(pattern, worst)

    def test_sampled_search_when_space_too_large(self):
        pattern = CommunicationPattern.couples(8)
        sampled = plan_mapping(pattern, max_evaluations=200, seed=1)
        assert sorted(sampled.physical_of) == list(range(8))

    def test_pattern_must_fit(self):
        pattern = CommunicationPattern.cycle(8)
        with pytest.raises(ConfigError):
            plan_mapping(pattern, n_spes=4)

    def test_objective_validated(self):
        with pytest.raises(ConfigError):
            plan_mapping(CommunicationPattern.couples(8), objective="median")


class TestMeasureMapping:
    def test_planned_beats_random_average_on_the_simulator(self):
        pattern = CommunicationPattern.couples(8)
        planned = measure_mapping(
            pattern, plan_mapping(pattern), n_elements=48
        )
        random_mean = statistics.fmean(
            measure_mapping(pattern, SpeMapping.random(seed), n_elements=48)
            for seed in range(4)
        )
        assert planned > random_mean

    def test_planned_couples_reach_near_peak(self):
        pattern = CommunicationPattern.couples(8)
        planned = measure_mapping(pattern, plan_mapping(pattern), n_elements=48)
        assert planned > 0.9 * 134.4

    def test_adversarial_placement_is_clearly_worse(self):
        pattern = CommunicationPattern.cycle(8)
        best = measure_mapping(pattern, plan_mapping(pattern), n_elements=32)
        worst = measure_mapping(
            pattern, plan_mapping(pattern, objective="worst"), n_elements=32
        )
        assert worst < 0.8 * best
