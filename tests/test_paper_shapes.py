"""The headline integration test: the paper's claims, reproduced.

Runs each experiment (at reduced repetition counts / element sweeps to
keep CI time sane) and asserts every shape claim in
``repro.core.validation``.  ``benchmarks/`` regenerates the full figures.
"""

import pytest

from repro.core import (
    CouplesExperiment,
    CycleExperiment,
    PairDistanceExperiment,
    PairSyncExperiment,
    PpeBandwidthExperiment,
    SpeLocalStoreExperiment,
    SpeMemoryExperiment,
)
from repro.core import validation
from repro.core.spe_pairs import SYNC_AFTER_ALL

VOLUME = 2 ** 20  # 1 MiB per SPE: past the steady-state floor


@pytest.fixture(scope="module")
def ppe_results():
    return {level: PpeBandwidthExperiment(level).run() for level in ("l1", "l2", "mem")}


@pytest.fixture(scope="module")
def localstore_result():
    return SpeLocalStoreExperiment().run()


@pytest.fixture(scope="module")
def memory_result():
    return SpeMemoryExperiment(
        element_sizes=(16384,), repetitions=2, bytes_per_spe=VOLUME
    ).run()


@pytest.fixture(scope="module")
def sync_result():
    return PairSyncExperiment(
        sync_policies=(1, SYNC_AFTER_ALL),
        element_sizes=(512, 1024, 4096, 16384),
        repetitions=2,
        bytes_per_spe=VOLUME,
    ).run()


@pytest.fixture(scope="module")
def distance_result():
    return PairDistanceExperiment(
        element_sizes=(16384,), repetitions=4, bytes_per_spe=VOLUME
    ).run()


@pytest.fixture(scope="module")
def couples_result():
    return CouplesExperiment(
        element_sizes=(16384,), repetitions=6, bytes_per_spe=VOLUME
    ).run()


@pytest.fixture(scope="module")
def cycle_result():
    return CycleExperiment(
        element_sizes=(16384,), repetitions=6, bytes_per_spe=VOLUME
    ).run()


def assert_all(checks):
    failed = [str(check) for check in checks if not check.passed]
    assert not failed, "unreproduced paper claims:\n" + "\n".join(failed)


def test_figures_3_4_6_ppe(ppe_results):
    assert_all(validation.check_ppe(ppe_results))


def test_section_422_localstore(localstore_result):
    assert_all(validation.check_localstore(localstore_result))


def test_figure_8_spe_memory(memory_result):
    assert_all(validation.check_spe_memory(memory_result))


def test_figure_10_sync_delay(sync_result):
    assert_all(validation.check_pair_sync(sync_result))


def test_figure_9_distance(distance_result):
    assert_all(validation.check_pair_distance(distance_result))


def test_figures_12_13_couples(couples_result):
    assert_all(validation.check_couples(couples_result))


def test_figures_15_16_cycle(cycle_result, couples_result):
    assert_all(validation.check_cycle(cycle_result, couples_result))


def test_summary_counts_passes(memory_result):
    checks = validation.check_spe_memory(memory_result)
    summary = validation.summarize(checks)
    assert f"{len(checks)}/{len(checks)} claims reproduced" in summary
