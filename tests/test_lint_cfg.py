"""CFG construction: blocks, edges, back edges, handlers, exits."""

import ast

import pytest

from repro.analysis.lint import build_cfg


def cfg_of(source):
    tree = ast.parse(source)
    fn = tree.body[0]
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(fn)


def reachable(cfg):
    seen = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        for succ in cfg.block(stack.pop()).succs:
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def test_straight_line_is_one_path_to_exit():
    cfg = cfg_of("def f():\n    a = 1\n    b = 2\n")
    assert cfg.exit in reachable(cfg)
    entry = cfg.block(cfg.entry)
    assert [s.lineno for s in entry.stmts] == [2, 3]


def test_if_branches_join():
    cfg = cfg_of(
        "def f(x):\n"
        "    if x:\n"
        "        a = 1\n"
        "    else:\n"
        "        a = 2\n"
        "    b = 3\n"
    )
    # The join block (holding b = 3) has two predecessors.
    join = next(
        block for block in cfg.blocks.values()
        if any(s.lineno == 6 for s in block.stmts)
    )
    assert len(join.preds) == 2


def test_if_without_else_falls_through():
    cfg = cfg_of("def f(x):\n    if x:\n        a = 1\n    b = 2\n")
    join = next(
        block for block in cfg.blocks.values()
        if any(s.lineno == 4 for s in block.stmts)
    )
    assert len(join.preds) == 2  # then-branch and the test block itself


def test_while_loop_has_back_edge_and_exit_edge():
    cfg = cfg_of("def f(x):\n    while x:\n        x -= 1\n    y = 1\n")
    head = next(b for b in cfg.blocks.values() if b.is_loop_head)
    assert isinstance(head.loop, ast.While)
    # Head reaches both the body and the after-loop block.
    assert len(head.succs) == 2
    # Some successor chain leads back to the head (the back edge).
    assert head.id in {
        succ for block in cfg.blocks.values() for succ in block.succs
        if block.id != head.id or True
    }
    assert any(
        head.id in cfg.block(b).succs
        for b in cfg.blocks
        if b != head.id
    )


def test_for_loop_head_carries_the_for_node():
    cfg = cfg_of("def f():\n    for i in range(4):\n        pass\n")
    head = next(b for b in cfg.blocks.values() if b.is_loop_head)
    assert isinstance(head.loop, ast.For)
    assert head.loop.lineno == 2
    assert head.first_line() == 2


def test_break_edges_to_after_loop():
    cfg = cfg_of(
        "def f():\n"
        "    for i in range(4):\n"
        "        if i:\n"
        "            break\n"
        "        a = 1\n"
        "    done = 1\n"
    )
    after = next(
        block for block in cfg.blocks.values()
        if any(s.lineno == 6 for s in block.stmts)
    )
    break_block = next(
        block for block in cfg.blocks.values()
        if any(isinstance(s, ast.Break) for s in block.stmts)
    )
    assert after.id in break_block.succs


def test_continue_edges_back_to_head():
    cfg = cfg_of(
        "def f():\n"
        "    for i in range(4):\n"
        "        if i:\n"
        "            continue\n"
        "        a = 1\n"
    )
    head = next(b for b in cfg.blocks.values() if b.is_loop_head)
    continue_block = next(
        block for block in cfg.blocks.values()
        if any(isinstance(s, ast.Continue) for s in block.stmts)
    )
    assert head.id in continue_block.succs


def test_return_edges_to_exit_and_cuts_fallthrough():
    cfg = cfg_of(
        "def f(x):\n"
        "    if x:\n"
        "        return 1\n"
        "    return 2\n"
    )
    for block in cfg.blocks.values():
        for stmt in block.stmts:
            if isinstance(stmt, ast.Return):
                assert cfg.exit in block.succs


def test_try_body_statements_edge_to_every_handler():
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        a = 1\n"
        "        b = 2\n"
        "    except ValueError:\n"
        "        c = 3\n"
        "    except KeyError:\n"
        "        d = 4\n"
        "    e = 5\n"
    )
    handler_heads = [
        block.id for block in cfg.blocks.values()
        if any(s.lineno in (6, 8) for s in block.stmts)
    ]
    assert len(handler_heads) == 2
    body = next(
        block for block in cfg.blocks.values()
        if any(s.lineno == 3 for s in block.stmts)
    )
    for head in handler_heads:
        assert head in body.succs
    # All paths join on e = 5.
    join = next(
        block for block in cfg.blocks.values()
        if any(s.lineno == 9 for s in block.stmts)
    )
    assert len(join.preds) >= 3


def test_try_finally_joins_live_paths():
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        a = 1\n"
        "    finally:\n"
        "        b = 2\n"
        "    c = 3\n"
    )
    final = next(
        block for block in cfg.blocks.values()
        if any(s.lineno == 5 for s in block.stmts)
    )
    assert final.id in reachable(cfg)
    # The continuation after the try either shares the finally's block
    # (straight-line merge) or is one of its successors.
    lines = [s.lineno for s in final.stmts]
    if 6 in lines:
        assert lines.index(5) < lines.index(6)
    else:
        after = next(
            block for block in cfg.blocks.values()
            if any(s.lineno == 6 for s in block.stmts)
        )
        assert after.id in final.succs


def test_with_body_stays_inline():
    cfg = cfg_of(
        "def f(cm):\n"
        "    with cm() as x:\n"
        "        a = 1\n"
        "    b = 2\n"
    )
    entry = cfg.block(cfg.entry)
    # Context expression, body, and continuation are all sequential.
    assert [s.lineno for s in entry.stmts] == [2, 3, 4]


def test_nested_loops_have_two_heads():
    cfg = cfg_of(
        "def f():\n"
        "    for i in range(4):\n"
        "        for j in range(4):\n"
        "            a = i + j\n"
    )
    heads = [b for b in cfg.blocks.values() if b.is_loop_head]
    assert sorted(h.loop.lineno for h in heads) == [2, 3]


def test_rpo_starts_at_entry_and_orders_heads_before_bodies():
    cfg = cfg_of(
        "def f(x):\n"
        "    while x:\n"
        "        x -= 1\n"
        "    y = 1\n"
    )
    order = cfg.rpo()
    assert order[0] == cfg.entry
    head = next(b.id for b in cfg.blocks.values() if b.is_loop_head)
    body = next(
        b.id for b in cfg.blocks.values()
        if any(s.lineno == 3 for s in b.stmts)
    )
    assert order.index(head) < order.index(body)


def test_unreachable_code_is_parked_not_crashing():
    cfg = cfg_of(
        "def f():\n"
        "    return 1\n"
        "    dead = 2\n"
    )
    dead = next(
        block for block in cfg.blocks.values()
        if any(s.lineno == 3 for s in block.stmts)
    )
    assert dead.preds == []
    assert dead.id not in reachable(cfg)


def test_match_statement_branches_and_joins():
    pytest.importorskip("ast", reason="match requires 3.10+")
    cfg = cfg_of(
        "def f(x):\n"
        "    match x:\n"
        "        case 1:\n"
        "            a = 1\n"
        "        case _:\n"
        "            a = 2\n"
        "    b = 3\n"
    )
    join = next(
        block for block in cfg.blocks.values()
        if any(s.lineno == 7 for s in block.stmts)
    )
    assert len(join.preds) >= 2
