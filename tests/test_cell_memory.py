"""Unit tests for the memory system: banks, turnaround, placement."""

import pytest

from repro.cell import CellConfig, ConfigError
from repro.cell.memory import READ, WRITE, MemoryBank, MemoryRequest, MemorySystem
from repro.sim import Environment


def make_bank(env, config=None, peak=8.0):
    config = config or CellConfig.paper_blade()
    return MemoryBank(env, "test-bank", "MIC", peak, config)


def drive(env, bank, requests):
    """Submit requests and record each completion time."""
    completions = {}

    def submitter(env):
        events = []
        for i, request in enumerate(requests):
            events.append((i, bank.submit(request)))
        for i, event in events:
            yield event
            completions[i] = env.now

    env.process(submitter(env))
    env.run()
    return completions


def test_single_stream_pays_turnaround():
    env = Environment()
    config = CellConfig.paper_blade()
    bank = make_bank(env, config)
    n, size = 16, 16384
    requests = [MemoryRequest("SPE0", size, READ) for _ in range(n)]
    drive(env, bank, requests)
    transfer = size / 8.0
    fraction = config.memory.same_requester_turnaround_fraction
    # All but the first command pay the same-requester turnaround.
    expected = n * transfer + (n - 1) * round(fraction * transfer)
    assert env.now == pytest.approx(expected, rel=0.02)


def test_two_interleaved_streams_hide_turnaround():
    env = Environment()
    config = CellConfig.paper_blade()
    bank = make_bank(env, config)
    n, size = 16, 16384
    requests = [
        MemoryRequest(f"SPE{i % 2}", size, READ) for i in range(n)
    ]
    drive(env, bank, requests)
    transfer = size / 8.0
    switch = config.memory.requester_switch_fraction
    expected = n * transfer * (1 + switch)
    # Far faster than the single-stream case; only the small switch cost.
    assert env.now < n * transfer * 1.2
    assert env.now == pytest.approx(expected, rel=0.1)


def test_scheduler_reorders_to_alternate_requesters():
    """Back-to-back same-requester commands get reordered when another
    requester is waiting, hiding the turnaround."""
    env = Environment()
    bank = make_bank(env)
    requests = (
        [MemoryRequest("SPE0", 16384, READ) for _ in range(8)]
        + [MemoryRequest("SPE1", 16384, READ) for _ in range(8)]
    )
    drive(env, bank, requests)
    single_stream_env = Environment()
    single_bank = make_bank(single_stream_env)
    drive(
        single_stream_env,
        single_bank,
        [MemoryRequest("SPE0", 16384, READ) for _ in range(16)],
    )
    assert env.now < single_stream_env.now * 0.8


def test_duplex_overlap_speeds_mixed_traffic():
    env_mixed = Environment()
    bank_mixed = make_bank(env_mixed)
    mixed = [
        MemoryRequest("SPE0" if i % 2 else "SPE1", 16384, READ if i % 2 else WRITE)
        for i in range(16)
    ]
    drive(env_mixed, bank_mixed, mixed)

    env_pure = Environment()
    bank_pure = make_bank(env_pure)
    pure = [
        MemoryRequest("SPE0" if i % 2 else "SPE1", 16384, READ) for i in range(16)
    ]
    drive(env_pure, bank_pure, pure)
    assert env_mixed.now < env_pure.now


def test_requester_spread_penalty_kicks_in():
    """Eight interleaved requesters are served less efficiently than two."""
    def run(n_requesters):
        env = Environment()
        bank = make_bank(env)
        requests = [
            MemoryRequest(f"SPE{i % n_requesters}", 16384, READ) for i in range(32)
        ]
        drive(env, bank, requests)
        return env.now

    assert run(8) > run(2)


def test_request_validation():
    with pytest.raises(ConfigError):
        MemoryRequest("SPE0", 128, "readwrite")
    with pytest.raises(ConfigError):
        MemoryRequest("SPE0", 0, READ)


def test_bank_statistics():
    env = Environment()
    bank = make_bank(env)
    drive(env, bank, [MemoryRequest("SPE0", 4096, READ) for _ in range(3)])
    assert bank.commands_served == 3
    assert bank.bytes_served == 3 * 4096
    assert bank.monitor.busy_time() > 0


def test_bank_peak_gbps():
    env = Environment()
    config = CellConfig.paper_blade()
    bank = MemoryBank(
        env, "local", "MIC",
        config.memory.local_bank_peak_bytes_per_cpu_cycle, config,
    )
    assert bank.peak_gbps == pytest.approx(16.8)


class TestMemorySystem:
    def test_banks_are_local_and_remote(self):
        system = MemorySystem(Environment(), CellConfig.paper_blade())
        assert system.local_bank.node == "MIC"
        assert system.remote_bank.node == "IOIF0"
        assert system.local_bank.peak_gbps == pytest.approx(16.8)
        assert system.remote_bank.peak_gbps == pytest.approx(7.0)

    def test_placement_follows_local_fraction(self):
        config = CellConfig.paper_blade()
        system = MemorySystem(Environment(), config)
        picks = [system.assign_bank("SPE0") for _ in range(1000)]
        local = sum(1 for bank in picks if bank is system.local_bank)
        assert local / 1000 == pytest.approx(
            config.memory.local_placement_fraction, abs=0.01
        )

    def test_placement_is_per_requester(self):
        system = MemorySystem(Environment(), CellConfig.paper_blade())
        first_of_each = {
            requester: system.assign_bank(requester)
            for requester in ("SPE0", "SPE1", "SPE2")
        }
        # Every requester's first command lands on the preferred bank.
        assert all(bank is system.local_bank for bank in first_of_each.values())

    def test_bytes_served_aggregates(self):
        env = Environment()
        system = MemorySystem(env, CellConfig.paper_blade())

        def submitter(env):
            yield system.read("SPE0", 2048, system.local_bank)
            yield system.write("SPE0", 1024, system.remote_bank)

        env.process(submitter(env))
        env.run()
        assert system.bytes_served == 3072

    def test_describe(self):
        system = MemorySystem(Environment(), CellConfig.paper_blade())
        info = system.describe()
        assert info["local_peak_gbps"] == pytest.approx(16.8)
        assert info["remote_peak_gbps"] == pytest.approx(7.0)
