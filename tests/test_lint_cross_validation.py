"""Static/runtime cross-validation: every DMA hazard the runtime
sanitizer reports when executing ``racy_pair_program`` must be covered
by a static SL601 finding on the same source, and the clean showcase
must be hazard-free in both worlds."""

import re

from repro.analysis.lint import lint_callable, lint_paths, select_rules
from repro.cell.chip import CellChip
from repro.core.kernels import DmaWorkload, dma_stream_kernel
from repro.libspe import SpeContext
from repro.reproduce import racy_pair_program
from repro.sim import DmaSanitizer


def run_under_sanitizer(program, *args):
    sanitizer = DmaSanitizer()
    chip = CellChip(sanitizer=sanitizer)
    SpeContext(chip, 0).load(program, *args)
    chip.run()
    return sanitizer


def sl601_findings(program):
    return [
        f for f in lint_callable(program, rules=select_rules(["SL601"]))
        if f.rule == "SL601"
    ]


def finding_ranges(finding):
    """The LS byte ranges quoted in an SL601 message, as (lo, hi) pairs."""
    return [
        (int(lo), int(hi))
        for lo, hi in re.findall(r"\[(\d+), (\d+)\)", finding.message)
    ]


def test_every_runtime_hazard_is_covered_by_an_sl601_finding():
    sanitizer = run_under_sanitizer(racy_pair_program, {})
    assert sanitizer.findings, "the seeded racy pair must trip the sanitizer"

    statics = sl601_findings(racy_pair_program)
    assert statics, "SL601 must flag the same program statically"

    for hazard in sanitizer.findings:
        assert hazard.space.startswith("ls:"), hazard
        covered = any(
            any(lo <= hazard.lo and hazard.hi <= hi for lo, hi in
                finding_ranges(finding))
            for finding in statics
        )
        assert covered, (
            f"runtime hazard [{hazard.lo}, {hazard.hi}) has no static "
            f"SL601 counterpart in {statics}"
        )


def test_static_findings_anchor_inside_the_racy_program():
    import inspect

    statics = sl601_findings(racy_pair_program)
    source_lines, start = inspect.getsourcelines(racy_pair_program)
    end = start + len(source_lines)
    for finding in statics:
        assert finding.path.endswith("reproduce.py")
        assert start <= finding.line < end
        for line, _note in finding.steps:
            assert start <= line < end


def test_clean_double_buffered_kernel_is_clean_in_both_worlds():
    # The shipped streaming kernel, as exercised by the --sanitize
    # showcase: hazard-free at runtime and SL601-clean statically.
    workload = DmaWorkload(direction="get", element_bytes=4096, n_elements=32)
    sanitizer = DmaSanitizer()
    chip = CellChip(sanitizer=sanitizer)
    SpeContext(chip, 0).load(dma_stream_kernel, workload, {}, None)
    chip.run()
    assert sanitizer.findings == []
    assert sanitizer.commands_checked > 0

    assert sl601_findings(dma_stream_kernel) == []


def test_shipped_examples_are_sl601_clean():
    findings = lint_paths(["examples"], rules=select_rules(["SL6"]))
    assert [f for f in findings if f.rule.startswith("SL6")] == []
