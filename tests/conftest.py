"""Shared fixtures: a paper-blade config and small, fast experiment knobs."""

import pytest

from repro.cell import CellChip, CellConfig
from repro.cell.topology import SpeMapping


@pytest.fixture
def config():
    return CellConfig.paper_blade()


@pytest.fixture
def chip(config):
    """A fresh chip with the identity mapping."""
    return CellChip(config=config, mapping=SpeMapping.identity(config.n_spes))


def gbps_of(chip, nbytes, cycles):
    return chip.config.clock.gbps(nbytes, cycles)
