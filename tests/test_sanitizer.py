"""DMA hazard sanitizer: detection semantics (overlap, ordering edges),
pure-observer byte-equivalence, and clean bills of health for the
shipped kernels."""

import pytest

from repro.cell import CellChip
from repro.core.kernels import DmaWorkload, dma_stream_kernel
from repro.kernels.compute import SpuComputeModel
from repro.kernels.specs import stream_triad
from repro.kernels.streaming import _kernel_program
from repro.libspe import SpeContext
from repro.sim import (
    DmaHazard,
    DmaSanitizer,
    FaultEngine,
    TraceRecorder,
    records_from_chrome,
    to_chrome_trace,
)
from repro.sim.sanitizer import command_accesses, ls_space


def run_program(program, *args, sanitizer=None, trace=None, faults=None,
                logical=0):
    chip = CellChip(sanitizer=sanitizer, trace=trace, faults=faults)
    out = {}
    SpeContext(chip, logical).load(program, out, *args)
    chip.run()
    return chip, out


def racy_getget(spu, out):
    yield from spu.mfc_get(size=4096, tag=0)
    yield from spu.mfc_get(size=4096, tag=0)  # simlint: ignore[SL601] -- deliberate race: fixture for the runtime sanitizer
    yield from spu.wait_tags([0])
    out["done"] = True


# ---------------------------------------------------------------------------
# Detection semantics
# ---------------------------------------------------------------------------

def test_overlapping_unordered_gets_are_flagged():
    sanitizer = DmaSanitizer()
    run_program(racy_getget, sanitizer=sanitizer)
    assert len(sanitizer.findings) == 1
    hazard = sanitizer.findings[0]
    assert hazard.hazard == "write-write"
    assert hazard.space == ls_space("SPE0")
    assert (hazard.lo, hazard.hi) == (0, 4096)
    assert hazard.first_cmd != hazard.second_cmd
    assert "race" in sanitizer.describe(hazard)
    assert "1 hazard" in sanitizer.report()


def test_disjoint_offsets_are_clean():
    def program(spu, out):
        yield from spu.mfc_get(size=4096, tag=0)
        yield from spu.mfc_get(size=4096, tag=0,
                               local_offset=4096, remote_offset=4096)
        yield from spu.wait_tags([0])

    sanitizer = DmaSanitizer()
    run_program(program, sanitizer=sanitizer)
    assert sanitizer.findings == []
    assert sanitizer.commands_checked == 2


def test_tag_wait_establishes_happens_before():
    def program(spu, out):
        yield from spu.mfc_get(size=4096, tag=0)
        yield from spu.wait_tags([0])
        yield from spu.mfc_get(size=4096, tag=0)
        yield from spu.wait_tags([0])

    sanitizer = DmaSanitizer()
    run_program(program, sanitizer=sanitizer)
    assert sanitizer.findings == []


def test_fence_and_barrier_are_ordering_edges():
    def fenced(spu, out):
        yield from spu.mfc_get(size=4096, tag=0)
        yield from spu.mfc_getf(size=4096, tag=0)
        yield from spu.wait_tags([0])

    def barriered(spu, out):
        yield from spu.mfc_get(size=4096, tag=0)
        yield from spu.mfc_getb(size=4096, tag=5)
        yield from spu.wait_tags([0, 5])

    for program in (fenced, barriered):
        sanitizer = DmaSanitizer()
        run_program(program, sanitizer=sanitizer)
        assert sanitizer.findings == [], program.__name__


def test_fence_does_not_cover_other_tag_groups():
    # A fence orders against its own tag group only; the earlier command
    # here is in a different group, so the overlap is still a race.
    def program(spu, out):
        yield from spu.mfc_get(size=4096, tag=0)
        yield from spu.mfc_getf(size=4096, tag=7)  # simlint: ignore[SL601] -- deliberate race: fence on the wrong tag group
        yield from spu.wait_tags([0, 7])

    sanitizer = DmaSanitizer()
    run_program(program, sanitizer=sanitizer)
    assert [hazard.hazard for hazard in sanitizer.findings] == ["write-write"]


def test_get_put_overlap_is_a_write_read_race():
    # GET writes LS [0, 4096); the PUT then reads the same bytes while
    # the GET may still be in flight.
    def program(spu, out):
        yield from spu.mfc_get(size=4096, tag=0)
        yield from spu.mfc_put(size=4096, tag=1, remote_offset=8192)  # simlint: ignore[SL601] -- deliberate race: write-read overlap under test
        yield from spu.wait_tags([0, 1])

    sanitizer = DmaSanitizer()
    run_program(program, sanitizer=sanitizer)
    assert [hazard.hazard for hazard in sanitizer.findings] == ["write-read"]
    assert sanitizer.findings[0].space == ls_space("SPE0")


def test_remote_ea_overlap_is_flagged():
    # Disjoint LS buffers, but both commands touch EA [0, 4096) with one
    # writer: a race on the memory side.
    def program(spu, out):
        yield from spu.mfc_get(size=4096, tag=0)
        yield from spu.mfc_put(size=4096, tag=1, local_offset=4096)
        yield from spu.wait_tags([0, 1])

    sanitizer = DmaSanitizer()
    run_program(program, sanitizer=sanitizer)
    assert [hazard.hazard for hazard in sanitizer.findings] == ["read-write"]
    assert sanitizer.findings[0].space == "ea"


def test_cross_spe_commands_are_not_compared():
    # Two SPEs writing the same EA range: ordering between SPEs flows
    # through channels the MFC cannot see, so this is out of scope by
    # design (per-MFC happens-before only).
    def writer(spu, out):
        yield from spu.mfc_put(size=4096, tag=0)
        yield from spu.wait_tags([0])

    sanitizer = DmaSanitizer()
    chip = CellChip(sanitizer=sanitizer)
    SpeContext(chip, 0).load(writer, {})
    SpeContext(chip, 1).load(writer, {})
    chip.run()
    assert sanitizer.findings == []
    assert sanitizer.commands_checked == 2


def test_dma_list_bounding_ranges():
    def program(spu, out):
        yield from spu.mfc_getl(element_size=1024, n_elements=4, tag=0)
        yield from spu.mfc_getl(element_size=1024, n_elements=4, tag=1)
        yield from spu.wait_tags([0, 1])

    sanitizer = DmaSanitizer()
    run_program(program, sanitizer=sanitizer)
    # Both lists span LS [0, 4096) and EA [0, 4096): LS write-write
    # plus EA read-read (not a hazard) -> exactly one finding.
    assert [hazard.hazard for hazard in sanitizer.findings] == ["write-write"]


def test_capacity_bounds_findings():
    def program(spu, out):
        for _ in range(4):
            yield from spu.mfc_get(size=4096, tag=0)
        yield from spu.wait_tags([0])

    sanitizer = DmaSanitizer(capacity=2)
    run_program(program, sanitizer=sanitizer)
    assert len(sanitizer.findings) == 2
    assert sanitizer.dropped > 0
    assert "dropped" in sanitizer.report()
    with pytest.raises(ValueError):
        DmaSanitizer(capacity=0)


def test_allocation_names_in_reports():
    def program(spu, out):
        spu.spe.local_store.alloc(4096, name="inbuf")
        yield from spu.mfc_get(size=4096, tag=0)
        yield from spu.mfc_get(size=4096, tag=0)  # simlint: ignore[SL601] -- deliberate race: exercises allocation names in reports
        yield from spu.wait_tags([0])

    sanitizer = DmaSanitizer()
    run_program(program, sanitizer=sanitizer)
    assert len(sanitizer.findings) == 1
    assert "inbuf" in sanitizer.describe(sanitizer.findings[0])


def test_command_accesses_directions():
    class FakeDirection:
        name = "GET"

    class FakeTarget:
        name = "MAIN_MEMORY"

    class FakeCommand:
        direction = FakeDirection()
        target = FakeTarget()
        size = 256
        local_offset = 1024
        remote_offset = 4096
        remote_node = None

    local, remote = command_accesses("SPE3", FakeCommand())
    assert (local.space, local.lo, local.hi, local.writes) == (
        "ls:SPE3", 1024, 1280, True
    )
    assert (remote.space, remote.lo, remote.hi, remote.writes) == (
        "ea", 4096, 4352, False
    )


# ---------------------------------------------------------------------------
# Trace integration and pure-observer byte-equivalence
# ---------------------------------------------------------------------------

def test_hazards_ride_the_trace_stream_and_round_trip():
    sanitizer = DmaSanitizer()
    recorder = TraceRecorder()
    run_program(racy_getget, sanitizer=sanitizer, trace=recorder)
    hazards = [r for r in recorder.records if isinstance(r, DmaHazard)]
    assert hazards == sanitizer.findings
    rebuilt = records_from_chrome(to_chrome_trace(hazards))
    assert rebuilt == hazards


def test_sanitizer_is_a_pure_observer():
    # The full trace stream with the sanitizer attached must equal the
    # stream without it, modulo the DmaHazard records it adds — on a racy
    # program, under fault injection, and on a clean seed workload.
    def traced_run(program, *args, sanitize, fault_spec=None):
        faults = FaultEngine(fault_spec, seed=11) if fault_spec else None
        recorder = TraceRecorder()
        sanitizer = DmaSanitizer() if sanitize else None
        run_program(program, *args, sanitizer=sanitizer, trace=recorder,
                    faults=faults)
        return recorder.records

    workload = DmaWorkload(direction="copy", element_bytes=4096,
                           n_elements=32)

    def seed_workload(spu, out):
        yield from dma_stream_kernel(spu, workload, out)

    for program, args, spec in (
        (racy_getget, (), None),
        (racy_getget, (), "ecc_retry:0.5"),
        (seed_workload, (), None),
    ):
        baseline = traced_run(program, *args, sanitize=False,
                              fault_spec=spec)
        sanitized = traced_run(program, *args, sanitize=True,
                               fault_spec=spec)
        stripped = [r for r in sanitized if not isinstance(r, DmaHazard)]
        assert stripped == baseline, (program.__name__, spec)


# ---------------------------------------------------------------------------
# Seed workloads run hazard-free
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("direction", ["get", "put", "copy"])
@pytest.mark.parametrize("element_bytes", [128, 1024, 4096])
def test_stream_kernels_are_hazard_free(direction, element_bytes):
    workload = DmaWorkload(direction=direction, element_bytes=element_bytes,
                           n_elements=48)
    sanitizer = DmaSanitizer()
    chip = CellChip(sanitizer=sanitizer)
    SpeContext(chip, 0).load(dma_stream_kernel, workload, {}, None)
    chip.run()
    assert sanitizer.findings == [], sanitizer.report()


def test_pair_kernels_are_hazard_free():
    workload = DmaWorkload(direction="copy", element_bytes=16384,
                           n_elements=48, partner_logical=1)
    sanitizer = DmaSanitizer()
    chip = CellChip(sanitizer=sanitizer)
    SpeContext(chip, 0).load(dma_stream_kernel, workload, {}, chip.spe(1))
    SpeContext(chip, 1).load(dma_stream_kernel, workload, {}, chip.spe(0))
    chip.run()
    assert sanitizer.findings == [], sanitizer.report()


def test_streaming_kernel_is_hazard_free():
    spec = stream_triad()
    sanitizer = DmaSanitizer()
    chip = CellChip(sanitizer=sanitizer)
    compute = SpuComputeModel(chip.config)
    for logical in range(2):
        SpeContext(chip, logical).load(_kernel_program, spec, compute, 8, {})
    chip.run()
    assert sanitizer.findings == [], sanitizer.report()


def test_seeded_fault_run_is_deterministic():
    # Same fault seed -> identical hazard findings, run to run.  Command
    # ids come from a process-global counter, so compare their spacing
    # rather than their absolute values.
    def findings_for(seed):
        sanitizer = DmaSanitizer()
        run_program(racy_getget, sanitizer=sanitizer,
                    faults=FaultEngine("ecc_retry:0.5", seed=seed))
        return [
            (h.ts, h.node, h.space, h.hazard, h.second_cmd - h.first_cmd,
             h.first_tag, h.second_tag, h.lo, h.hi)
            for h in sanitizer.findings
        ]

    assert findings_for(3) == findings_for(3)
