"""Unit tests for result containers and report rendering."""

import pytest

from repro.core.results import BandwidthSample, BandwidthStats, SweepTable
from repro.core.report import (
    format_placement_statistics,
    format_table,
    to_csv,
)


def sample(gbps, seed=None):
    return BandwidthSample(gbps=gbps, nbytes=1024, cycles=100, seed=seed)


def stats(*values):
    return BandwidthStats.from_samples([sample(v) for v in values])


class TestBandwidthSample:
    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthSample(gbps=1.0, nbytes=0, cycles=10)
        with pytest.raises(ValueError):
            BandwidthSample(gbps=1.0, nbytes=10, cycles=0)
        with pytest.raises(ValueError):
            BandwidthSample(gbps=-1.0, nbytes=10, cycles=10)


class TestBandwidthStats:
    def test_reductions(self):
        reduced = stats(10.0, 30.0, 20.0, 40.0)
        assert reduced.minimum == 10.0
        assert reduced.maximum == 40.0
        assert reduced.median == 25.0
        assert reduced.mean == 25.0
        assert reduced.spread == 30.0
        assert reduced.n_samples == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BandwidthStats.from_samples([])

    def test_str_mentions_all_stats(self):
        text = str(stats(10.0, 20.0))
        for token in ("min", "median", "mean", "max"):
            assert token in text


class TestSweepTable:
    def build(self):
        table = SweepTable(name="demo", axes=("n_spes", "element_bytes"))
        for n in (2, 4):
            for element in (128, 1024):
                table.put((n, element), stats(float(n * element) / 100))
        return table

    def test_put_get_mean(self):
        table = self.build()
        assert table.mean(2, 128) == pytest.approx(2.56)
        assert len(table) == 4

    def test_key_arity_enforced(self):
        table = self.build()
        with pytest.raises(ValueError):
            table.put((1,), stats(1.0))

    def test_missing_key_raises(self):
        table = self.build()
        with pytest.raises(KeyError):
            table.get(16, 128)

    def test_axis_values_in_insertion_order(self):
        table = self.build()
        assert table.axis_values("n_spes") == [2, 4]
        assert table.axis_values("element_bytes") == [128, 1024]
        with pytest.raises(KeyError):
            table.axis_values("direction")

    def test_series_extraction(self):
        table = self.build()
        series = table.series("element_bytes", {"n_spes": 4})
        assert series == [
            (128, pytest.approx(5.12)),
            (1024, pytest.approx(40.96)),
        ]
        with pytest.raises(KeyError):
            table.series("element_bytes", {"bogus": 1})


class TestReportRendering:
    def build(self):
        table = SweepTable(name="demo", axes=("n_spes", "element_bytes"))
        table.put((2, 128), stats(3.0, 5.0))
        table.put((2, 1024), stats(10.0, 12.0))
        table.put((8, 128), stats(1.0, 9.0))
        table.put((8, 1024), stats(20.0, 30.0))
        return table

    def test_format_table_contains_values(self):
        text = format_table(self.build())
        assert "n_spes=2" in text
        assert "4.00" in text  # mean of 3 and 5
        assert "25.00" in text

    def test_format_table_other_statistics(self):
        text = format_table(self.build(), statistic="maximum")
        assert "30.00" in text

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            format_table(SweepTable(name="empty", axes=("a",)))

    def test_placement_statistics_view(self):
        text = format_placement_statistics(self.build(), fixed_key=(8,))
        assert "minimum" in text and "maximum" in text
        assert "1.00" in text and "30.00" in text

    def test_csv_export(self):
        csv = to_csv(self.build())
        lines = csv.strip().splitlines()
        assert lines[0] == "n_spes,element_bytes,min,median,mean,max,n"
        assert len(lines) == 5
        assert "2,128,3.000" in lines[1]

    def test_large_sentinel_rendered_as_all(self):
        table = SweepTable(name="sync", axes=("sync_every",))
        table.put((2 ** 30,), stats(5.0))
        text = format_table(table)
        assert "all" in text
