"""Integration tests for the experiment framework and each experiment.

These run small parameterisations (few sizes, few repetitions) so the
whole file stays fast; the full paper-shape assertions live in
``test_paper_shapes.py``.
"""

import pytest

from repro.cell.errors import ConfigError
from repro.core import (
    CouplesExperiment,
    CycleExperiment,
    PairDistanceExperiment,
    PairSyncExperiment,
    PpeBandwidthExperiment,
    SpeLocalStoreExperiment,
    SpeMemoryExperiment,
)
from repro.core.experiment import (
    DEFAULT_BYTES_PER_SPE,
    Experiment,
    MAX_COMMANDS,
    MIN_COMMANDS,
    PAPER_BYTES_PER_SPE,
)
from repro.core.kernels import DmaWorkload
from repro.core.spe_pairs import SYNC_AFTER_ALL


class TestExperimentBase:
    def test_seed_list(self):
        exp = Experiment(repetitions=3, seed_base=50)
        assert exp.seeds == [50, 51, 52]

    def test_n_elements_clamps(self):
        exp = Experiment(bytes_per_spe=2 ** 21)
        assert exp.n_elements_for(16384) == 128
        assert exp.n_elements_for(128) == MAX_COMMANDS
        assert exp.n_elements_for(2 ** 21) == MIN_COMMANDS

    def test_validation(self):
        with pytest.raises(ConfigError):
            Experiment(repetitions=0)
        with pytest.raises(ConfigError):
            Experiment(bytes_per_spe=1024)
        with pytest.raises(ConfigError):
            Experiment().n_elements_for(0)

    def test_paper_scale_uses_32mib(self):
        exp = Experiment.paper_scale()
        assert exp.bytes_per_spe == PAPER_BYTES_PER_SPE

    def test_run_assignments_requires_some(self):
        with pytest.raises(ConfigError):
            Experiment().run_assignments(1, [])

    def test_default_volume(self):
        assert Experiment().bytes_per_spe == DEFAULT_BYTES_PER_SPE


class TestWorkload:
    def test_total_bytes_counts_copy_twice(self):
        get = DmaWorkload(direction="get", element_bytes=1024, n_elements=8)
        copy = DmaWorkload(direction="copy", element_bytes=1024, n_elements=8)
        assert get.total_bytes == 8192
        assert copy.total_bytes == 16384

    def test_validation(self):
        with pytest.raises(ConfigError):
            DmaWorkload(direction="scan", element_bytes=128, n_elements=1)
        with pytest.raises(ConfigError):
            DmaWorkload(direction="get", element_bytes=128, n_elements=0)
        with pytest.raises(ConfigError):
            DmaWorkload(direction="get", element_bytes=128, n_elements=1, mode="burst")
        with pytest.raises(ConfigError):
            DmaWorkload(
                direction="get", element_bytes=128, n_elements=1, sync_every=0
            )


class TestPpeExperiment:
    def test_produces_full_sweep(self):
        result = PpeBandwidthExperiment("l1").run()
        table = result.table("bandwidth")
        assert len(table) == 3 * 2 * 5
        assert table.mean("load", 1, 8) == pytest.approx(16.8)

    def test_unknown_level_rejected(self):
        with pytest.raises(ConfigError):
            PpeBandwidthExperiment("l7")

    def test_notes_name_limiters(self):
        result = PpeBandwidthExperiment("l2").run()
        assert any("miss" in note for note in result.notes)


class TestLocalStoreExperiment:
    def test_peak_reached(self):
        result = SpeLocalStoreExperiment().run()
        assert result.table("bandwidth").mean("load", 16) == pytest.approx(33.6)


class TestSpeMemoryExperiment:
    def test_small_run_shapes(self):
        result = SpeMemoryExperiment(
            spe_counts=(1, 2),
            element_sizes=(16384,),
            directions=("get",),
            repetitions=1,
            bytes_per_spe=2 ** 20,
        ).run()
        table = result.table("get")
        one = table.mean(1, 16384)
        two = table.mean(2, 16384)
        assert 8.0 < one < 12.0
        assert two > 1.6 * one


class TestPairExperiments:
    def test_sync_sweep_monotone_in_delay(self):
        result = PairSyncExperiment(
            sync_policies=(1, SYNC_AFTER_ALL),
            element_sizes=(4096,),
            repetitions=1,
            bytes_per_spe=2 ** 20,
        ).run()
        table = result.table("sync")
        assert table.mean(SYNC_AFTER_ALL, 4096) > table.mean(1, 4096)

    def test_distance_experiment_covers_all_partners(self):
        result = PairDistanceExperiment(
            element_sizes=(16384,), repetitions=2, bytes_per_spe=2 ** 20
        ).run()
        table = result.table("distance")
        assert table.axis_values("target_logical") == list(range(1, 8))


class TestCouplesAndCycle:
    def test_couples_small(self):
        result = CouplesExperiment(
            spe_counts=(2,),
            element_sizes=(16384,),
            modes=("elem",),
            repetitions=2,
            bytes_per_spe=2 ** 20,
        ).run()
        assert result.table("elem").mean(2, 16384) > 28.0

    def test_couples_rejects_odd_counts(self):
        exp = CouplesExperiment(
            spe_counts=(3,),
            element_sizes=(16384,),
            modes=("elem",),
            repetitions=1,
            bytes_per_spe=2 ** 20,
        )
        with pytest.raises(ConfigError):
            exp.run()

    def test_cycle_small(self):
        result = CycleExperiment(
            spe_counts=(2,),
            element_sizes=(16384,),
            modes=("elem",),
            repetitions=2,
            bytes_per_spe=2 ** 20,
        ).run()
        assert result.table("elem").mean(2, 16384) > 28.0

    def test_cycle_needs_two(self):
        exp = CycleExperiment(
            spe_counts=(1,),
            element_sizes=(16384,),
            modes=("elem",),
            repetitions=1,
            bytes_per_spe=2 ** 20,
        )
        with pytest.raises(ConfigError):
            exp.run()


def test_volume_invariance():
    """Sustained bandwidth is volume-invariant above the warm-up floor,
    which justifies the scaled-down default volumes."""
    def run(bytes_per_spe):
        result = SpeMemoryExperiment(
            spe_counts=(1,),
            element_sizes=(16384,),
            directions=("get",),
            repetitions=1,
            bytes_per_spe=bytes_per_spe,
        ).run()
        return result.table("get").mean(1, 16384)

    small = run(2 ** 20)
    large = run(2 ** 22)
    assert small == pytest.approx(large, rel=0.05)


def test_experiment_result_table_lookup_errors():
    result = PpeBandwidthExperiment("l1").run()
    with pytest.raises(KeyError):
        result.table("nonexistent")
