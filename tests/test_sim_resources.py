"""Unit tests for Resource, Store and Container."""

import pytest

from repro.sim import Container, Environment, Resource, SimulationError, Store


def test_resource_grants_up_to_capacity_immediately():
    env = Environment()
    res = Resource(env, capacity=2)
    r1 = res.request()
    r2 = res.request()
    r3 = res.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.count == 2


def test_resource_fifo_handoff():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, name, hold):
        req = res.request()
        yield req
        order.append((env.now, name, "in"))
        yield env.timeout(hold)
        res.release(req)
        order.append((env.now, name, "out"))

    env.process(user(env, "a", 10))
    env.process(user(env, "b", 5))
    env.process(user(env, "c", 1))
    env.run()
    assert order == [
        (0, "a", "in"),
        (10, "a", "out"),
        (10, "b", "in"),
        (15, "b", "out"),
        (15, "c", "in"),
        (16, "c", "out"),
    ]


def test_release_unheld_request_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    held = res.request()
    queued = res.request()
    with pytest.raises(SimulationError):
        res.release(queued)
    res.release(held)
    assert queued.triggered


def test_resource_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    held = res.request()
    queued = res.request()
    res.cancel(queued)
    res.release(held)
    assert not queued.triggered


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_store_put_get_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            yield env.timeout(1)
            yield store.put(i)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append((env.now, item))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [(1, 0), (2, 1), (3, 2)]


def test_store_capacity_blocks_putter():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("a")
        log.append(("a put", env.now))
        yield store.put("b")
        log.append(("b put", env.now))

    def consumer(env):
        yield env.timeout(10)
        item = yield store.get()
        log.append((f"got {item}", env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ("a put", 0) in log
    assert ("b put", 10) in log


def test_store_get_blocks_until_item_available():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((env.now, item))

    def producer(env):
        yield env.timeout(42)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(42, "late")]


def test_container_get_blocks_until_level_sufficient():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    log = []

    def filler(env):
        for _ in range(4):
            yield env.timeout(5)
            yield tank.put(10)

    def drainer(env):
        yield tank.get(30)
        log.append(env.now)

    env.process(filler(env))
    env.process(drainer(env))
    env.run()
    assert log == [15]
    assert tank.level == 10


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    log = []

    def putter(env):
        yield tank.put(5)
        log.append(env.now)

    def getter(env):
        yield env.timeout(7)
        yield tank.get(6)

    env.process(putter(env))
    env.process(getter(env))
    env.run()
    assert log == [7]


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=9)
    tank = Container(env, capacity=5)
    with pytest.raises(ValueError):
        tank.get(0)
    with pytest.raises(ValueError):
        tank.put(-1)
