"""Tests for MFC command ordering (fence/barrier) and PPE proxy DMA."""

import pytest

from repro.cell import CellChip, DmaCommand, DmaDirection, DmaSizeError
from repro.cell.dma import TargetKind
from repro.cell.errors import CellError
from repro.libspe import SpeContext


def test_fence_and_barrier_are_exclusive():
    with pytest.raises(DmaSizeError):
        DmaCommand(
            direction=DmaDirection.GET,
            target=TargetKind.MAIN_MEMORY,
            size=128,
            fence=True,
            barrier=True,
        )


def track_completions(chip, program):
    """Run a one-SPE program that appends (label, time) into a list."""
    log = []
    SpeContext(chip, 0).load(program, log)
    chip.run()
    return dict(log)


def test_unfenced_small_command_overtakes_big_one(chip):
    def program(spu, log):
        yield from spu.mfc_get(size=16384, tag=0, remote_spe=spu.spe.chip.spe(1))
        yield from spu.mfc_get(size=128, tag=1, remote_spe=spu.spe.chip.spe(1))  # simlint: ignore[SL601] -- offsets default to 0: this test measures overtaking, not LS layout
        yield from spu.wait_tags([1])
        log.append(("small", spu.read_decrementer()))
        yield from spu.wait_tags([0])
        log.append(("big", spu.read_decrementer()))

    times = track_completions(chip, program)
    assert times["small"] < times["big"]
    # The small transfer overtook: it finished long before the 16 KiB
    # transfer's ~2048 data cycles were over.
    assert times["small"] < 2048


def test_barrier_prevents_overtaking(chip):
    def program(spu, log):
        yield from spu.mfc_get(size=16384, tag=0, remote_spe=spu.spe.chip.spe(1))
        yield from spu.mfc_getb(size=128, tag=1, remote_spe=spu.spe.chip.spe(1))
        yield from spu.wait_tags([1])
        log.append(("small", spu.read_decrementer()))
        yield from spu.wait_tags([0])
        log.append(("big", spu.read_decrementer()))

    times = track_completions(chip, program)
    # The barriered small command could not start before the 16 KiB
    # transfer (~2048 data cycles) had fully completed.
    assert times["small"] > 2048


def test_fence_orders_within_tag_group_only(chip):
    def program(spu, log):
        partner = spu.spe.chip.spe(1)
        # Big transfer on tag 0, then a *fenced* small one on tag 1:
        # the fence only orders against earlier tag-1 commands (none),
        # so it still overtakes the big tag-0 transfer.
        yield from spu.mfc_get(size=16384, tag=0, remote_spe=partner)
        yield from spu.mfc_getf(size=128, tag=1, remote_spe=partner)  # simlint: ignore[SL601] -- offsets default to 0: this test measures fence scope, not LS layout
        yield from spu.wait_tags([1])
        log.append(("small", spu.read_decrementer()))
        yield from spu.wait_tags([0])
        log.append(("big", spu.read_decrementer()))

    times = track_completions(chip, program)
    assert times["small"] < times["big"]


def test_fence_orders_same_tag_commands(chip):
    def program(spu, log):
        partner = spu.spe.chip.spe(1)
        yield from spu.mfc_get(size=16384, tag=3, remote_spe=partner)
        yield from spu.mfc_putf(size=128, tag=3, remote_spe=partner)
        yield from spu.wait_tags([3])
        log.append(("done", spu.read_decrementer()))

    chip2 = CellChip(config=chip.config)

    def unordered(spu, log):
        partner = spu.spe.chip.spe(1)
        yield from spu.mfc_get(size=16384, tag=3, remote_spe=partner)
        yield from spu.mfc_put(size=128, tag=3, remote_spe=partner)  # simlint: ignore[SL601,SL602] -- same-tag get/put overlap is the fence behaviour under test
        yield from spu.wait_tags([3])
        log.append(("done", spu.read_decrementer()))

    fenced_time = track_completions(chip, program)["done"]
    free_time = track_completions(chip2, unordered)["done"]
    # The fenced PUT serialises after the GET, costing time; the free
    # PUT overlaps (opposite data directions do not share ports).
    assert fenced_time > free_time


class TestProxyDma:
    def test_ppe_stages_data_without_spu_involvement(self, chip):
        mfc = chip.spe(0).mfc
        done = mfc.proxy_enqueue(
            DmaCommand(
                direction=DmaDirection.GET,
                target=TargetKind.MAIN_MEMORY,
                size=16384,
            )
        )
        chip.run()
        assert done.triggered
        assert mfc.bytes_transferred == 16384

    def test_proxy_queue_is_eight_deep(self, chip):
        mfc = chip.spe(0).mfc
        commands = [
            DmaCommand(
                direction=DmaDirection.GET,
                target=TargetKind.MAIN_MEMORY,
                size=16384,
            )
            for _ in range(10)
        ]
        for command in commands:
            mfc.proxy_enqueue(command)
        # Before the simulation runs, only 8 proxy slots can be held.
        chip.env.run(until=1)
        assert mfc._proxy_slots.count <= 8
        chip.run()
        assert mfc.commands_completed == 10

    def test_proxy_rejects_lists(self, chip):
        with pytest.raises(CellError):
            chip.spe(0).mfc.proxy_enqueue("not a command")

    def test_proxy_and_spu_commands_share_tags(self, chip):
        mfc = chip.spe(0).mfc
        observed = {}

        def program(spu, out):
            yield from spu.mfc_get(size=2048, tag=5, remote_spe=spu.spe.chip.spe(1))
            yield from spu.wait_tags([5])
            out["spu_done"] = spu.read_decrementer()

        mfc.proxy_enqueue(
            DmaCommand(
                direction=DmaDirection.PUT,
                target=TargetKind.MAIN_MEMORY,
                size=2048,
                tag=5,
            )
        )
        SpeContext(chip, 0).load(program, observed)
        chip.run()
        assert observed["spu_done"] > 0
        assert mfc.outstanding(5) == 0
