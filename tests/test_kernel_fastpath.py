"""Regression tests for the DES-kernel hot-path rework.

The fast path replaced the per-yield relay *Event* with a slotted
``_Relay`` that occupies the exact same heap slot, and split ``run()``
into an inlined unwatched loop and a watched loop.  These tests pin the
behavioural edges of that rework:

* interrupting a process *before its start relay fires* detaches the
  start slot — the generator must never be started and then resumed a
  second time with the Interrupt;
* timeout delays are integer cycle counts: integral floats coerce,
  fractional delays and non-numbers are rejected loudly;
* the unwatched and watched loops process events in the same order.

Every case runs under both engines: the coalescing
:class:`~repro.sim.engine_fast.FastEnvironment` reuses the reference
event loop, so the generator-process hot path must behave identically
there too.
"""

import contextlib

import pytest

from repro.sim import Environment, Interrupt
from repro.sim.core import Timeout
from repro.sim.engine_fast import FastEnvironment


@pytest.fixture(params=[Environment, FastEnvironment],
                ids=["reference", "fast"])
def env_cls(request):
    return request.param


class TestInterruptBeforeStart:
    def test_generator_never_starts(self, env_cls):
        env = env_cls()
        log = []

        def victim(env):
            log.append("started")
            yield env.timeout(1)
            log.append("finished")

        proc = env.process(victim(env))

        def waiter(env, proc):
            try:
                yield proc
            except Interrupt as interrupt:
                log.append(("interrupted", interrupt.cause, env.now))

        env.process(waiter(env, proc))
        proc.interrupt("too early")
        env.run()
        # The victim's body never ran — not even its first statement —
        # and the waiter saw exactly one termination, the Interrupt.
        assert log == [("interrupted", "too early", 0)]
        assert proc.triggered and not proc.ok

    def test_no_second_resume_from_stale_start(self, env_cls):
        env = env_cls()
        resumes = []

        def victim(env):
            try:
                yield env.timeout(5)
                resumes.append("value")
            except Interrupt:
                resumes.append("interrupt")

        proc = env.process(victim(env))
        proc.interrupt()

        def defuser(env, proc):
            with contextlib.suppress(Interrupt):
                yield proc

        env.process(defuser(env, proc))
        env.run()
        # Before the fix the cancelled start slot still fired, starting
        # the generator normally *after* the Interrupt had terminated
        # it; the body must observe no resume at all.
        assert resumes == []

    def test_interrupt_then_restartable_environment(self, env_cls):
        # The cancelled start relay must be inert when it pops: the
        # queue drains cleanly and later processes run normally.
        env = env_cls()
        ran = []

        def victim(env):
            ran.append("victim")
            yield env.timeout(1)

        proc = env.process(victim(env))

        def catcher(env, proc):
            try:
                yield proc
            except Interrupt:
                ran.append("caught")

        env.process(catcher(env, proc))
        proc.interrupt()

        def bystander(env):
            yield env.timeout(3)
            ran.append(("bystander", env.now))

        env.process(bystander(env))
        env.run()
        assert ran == ["caught", ("bystander", 3)]


class TestTimeoutDelayValidation:
    def test_integral_float_coerces_to_int(self, env_cls):
        env = env_cls()
        timeout = env.timeout(5.0)  # simlint: ignore[SL401] -- integral float coercion is the behaviour under test
        assert type(timeout.delay) is int and timeout.delay == 5

    def test_fractional_delay_raises_value_error(self, env_cls):
        env = env_cls()
        with pytest.raises(ValueError, match="non-integral"):
            env.timeout(5.5)  # simlint: ignore[SL401] -- fractional delay rejection is the behaviour under test

    def test_non_numeric_delay_raises_type_error(self, env_cls):
        env = env_cls()
        with pytest.raises(TypeError, match="integer cycle count"):
            env.timeout("soon")

    def test_negative_delay_still_rejected(self, env_cls):
        env = env_cls()
        with pytest.raises(ValueError, match="negative"):
            env.timeout(-1)

    def test_direct_timeout_construction_validates_too(self, env_cls):
        env = env_cls()
        with pytest.raises(ValueError):
            Timeout(env, 0.25)

    def test_coerced_delay_fires_on_time(self, env_cls):
        env = env_cls()
        fired = []

        def proc(env):
            yield env.timeout(10.0)  # simlint: ignore[SL401] -- integral float coercion is the behaviour under test
            fired.append(env.now)

        env.process(proc(env))
        env.run()
        assert fired == [10]


class TestWatchedLoopParity:
    def _workload(self, env, log):
        def producer(env, k):
            for i in range(3):
                yield env.timeout(k)
                log.append((env.now, k, i))

        for k in (2, 3, 5):
            env.process(producer(env, k))

    def test_same_order_with_and_without_watchdogs(self, env_cls):
        unwatched = []
        env = env_cls()
        self._workload(env, unwatched)
        env.run()

        watched = []
        env = env_cls()
        self._workload(env, watched)
        env.run(max_events=10_000, stall_after=10_000)

        assert unwatched == watched and len(unwatched) == 9
