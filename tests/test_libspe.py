"""Unit tests for the libspe-shaped programming layer."""

import pytest

from repro.cell import CellChip
from repro.cell.errors import CellError
from repro.libspe import SpeContext, run_programs
from repro.sim import SimulationError


def test_context_runs_program_and_returns(chip):
    def program(spu, out):
        yield spu.compute(100)
        out["done_at"] = spu.read_decrementer()

    out = {}
    context = SpeContext(chip, 0)
    process = context.load(program, out)
    chip.run()
    assert out["done_at"] == 100
    assert context.finished
    assert process.triggered


def test_context_rejects_double_load(chip):
    def forever(spu):
        while True:
            yield spu.compute(1000)

    context = SpeContext(chip, 0)
    context.load(forever)
    with pytest.raises(CellError):
        context.load(forever)


def test_mfc_get_moves_bytes(chip):
    def program(spu, partner, out):
        yield from spu.mfc_get(size=4096, tag=0, remote_spe=partner)
        yield from spu.wait_tags([0])
        out["cycles"] = spu.read_decrementer()

    out = {}
    SpeContext(chip, 0).load(program, chip.spe(1), out)
    chip.run()
    assert chip.spe(0).mfc.bytes_transferred == 4096
    assert out["cycles"] > chip.config.mfc.elem_issue_cycles


def test_rolled_loop_pays_more_issue_cost(config):
    def program(spu, partner, out):
        start = spu.read_decrementer()
        for _ in range(16):
            yield from spu.mfc_get(size=128, tag=0, remote_spe=partner)
        yield from spu.wait_tags([0])
        out["cycles"] = spu.read_decrementer() - start

    def run(unrolled):
        chip = CellChip(config=config)
        out = {}
        SpeContext(chip, 0, unrolled=unrolled).load(program, chip.spe(1), out)
        chip.run()
        return out["cycles"]

    assert run(unrolled=False) > run(unrolled=True) * 2


def test_list_issue_validates_element_count(chip):
    def program(spu, partner):
        yield from spu.mfc_getl(  # simlint: ignore[SL102] -- list is deliberately oversized: the MFC must reject it before any wait
            element_size=128,
            n_elements=chip.config.mfc.list_max_elements + 1,
            remote_spe=partner,
        )

    SpeContext(chip, 0).load(program, chip.spe(1))
    with pytest.raises(CellError):
        chip.run()


def test_put_and_putl_reach_partner(chip):
    def program(spu, partner, out):
        yield from spu.mfc_put(size=1024, tag=0, remote_spe=partner)
        yield from spu.mfc_putl(element_size=512, n_elements=4, tag=0, remote_spe=partner)
        yield from spu.wait_tags([0])
        out["bytes"] = spu.spe.mfc.bytes_transferred

    out = {}
    SpeContext(chip, 0).load(program, chip.spe(1), out)
    chip.run()
    assert out["bytes"] == 1024 + 4 * 512


def test_memory_transfers_without_partner(chip):
    def program(spu):
        yield from spu.mfc_get(size=2048, tag=3)
        yield from spu.mfc_put(size=2048, tag=3)  # simlint: ignore[SL601,SL602] -- offsets default to 0: this test counts bytes, not LS layout
        yield from spu.wait_tags([3])

    SpeContext(chip, 0).load(program)
    chip.run()
    assert chip.memory.bytes_served == 4096


def test_wait_tags_costs_sync_cycles(chip):
    def program(spu, out):
        start = spu.read_decrementer()
        yield from spu.wait_tags([0])
        out["cycles"] = spu.read_decrementer() - start

    out = {}
    SpeContext(chip, 0).load(program, out)
    chip.run()
    assert out["cycles"] == chip.config.mfc.sync_cycles


def test_mailbox_round_trip_between_programs(chip):
    log = []

    def pinger(spu, partner_runtime):
        yield partner_runtime.mailbox.inbound.write(17)
        reply = yield spu.read_in_mbox()
        log.append(("pong", reply, spu.read_decrementer()))

    def ponger(spu, partner_runtime):
        message = yield spu.read_in_mbox()
        yield spu.compute(50)
        yield partner_runtime.mailbox.inbound.write(message + 1)

    ping = SpeContext(chip, 0)
    pong = SpeContext(chip, 1)
    ping.load(pinger, pong.runtime)
    pong.load(ponger, ping.runtime)
    chip.run()
    assert log == [("pong", 18, 50)]


def test_run_programs_helper(config):
    chip = CellChip(config=config)
    results = {}

    def program(spu, index):
        yield spu.compute(10 * (index + 1))
        results[index] = spu.read_decrementer()

    contexts = run_programs(
        chip, program, range(4), args_for=lambda logical: (logical,)
    )
    assert len(contexts) == 4
    assert results == {0: 10, 1: 20, 2: 30, 3: 40}


def test_run_programs_detects_hang(config):
    chip = CellChip(config=config)

    def stuck(spu):
        yield spu.spe.env.event()  # waits forever

    # The kernel's drain-time deadlock diagnostic fires first and names
    # the blocked process (run_programs' own check is the backstop).
    with pytest.raises(SimulationError, match=r"stuck"):
        run_programs(chip, stuck, [0])
