"""Gates for the analytic bandwidth surrogate
(:mod:`repro.analysis.surrogate` / :mod:`repro.analysis.surrogate_store`).

The contract under test:

* **fit determinism** — the same training sweep persists byte-identical
  model files (the payload is a pure function of the training set);
* **fit quality** — every fitted path reports R² ≥ 0.99 and
  MAPE ≤ 2% against held-out DES points for the paper shapes, across
  the issue-bound/transfer-bound regime break;
* **validated domain** — out-of-domain specs are refused by the model
  and simulated by the executor, byte-identical to a surrogate-off run,
  and their truth feeds the training set;
* **staleness** — a stored model fitted under a different code version
  is never served;
* **purity** — surrogate-served samples are never written to the result
  cache or the sweep journal.
"""

import json
import os

from repro.analysis.surrogate import (
    SurrogateModel,
    signature,
)
from repro.analysis.surrogate_store import SurrogateStore
from repro.cell.config import CellConfig
from repro.core.cache import ResultCache
from repro.core.experiment import (
    MAX_COMMANDS,
    MIN_COMMANDS,
    RunSpec,
    run_spec,
)
from repro.core.kernels import DmaWorkload
from repro.runtime.parallel import SweepExecutor

CONFIG = CellConfig.paper_blade()

#: Small per-SPE volume keeps the DES side of these tests fast; the
#: surrogate is size-blind.
VOLUME = 2 ** 19


def n_elements_for(element_bytes: int) -> int:
    return max(MIN_COMMANDS, min(MAX_COMMANDS, VOLUME // element_bytes))


def spec_for(
    element_bytes,
    seed=1000,
    direction="get",
    n_spes=1,
    partner_logical=None,
    sync_every=None,
    mode="elem",
    n_elements=None,
):
    workload = DmaWorkload(
        direction=direction,
        element_bytes=element_bytes,
        n_elements=(
            n_elements_for(element_bytes) if n_elements is None else n_elements
        ),
        mode=mode,
        sync_every=sync_every,
        partner_logical=partner_logical,
    )
    return RunSpec(
        config=CONFIG,
        seed=seed,
        assignments=tuple((logical, workload) for logical in range(n_spes)),
    )


def fit_on(specs, code_version="pinned"):
    samples = [run_spec(spec, engine="fast") for spec in specs]
    return SurrogateModel.fit(specs, samples, code_version=code_version), samples


#: The paper shapes, crossing the small-element (issue-bound) and
#: large-element (transfer-bound) regimes that force piecewise fits.
PAPER_SIZES = (512, 1024, 2048, 4096, 8192, 16384)


class TestFitQuality:
    def test_paper_shapes_meet_the_gates_on_holdout(self):
        # One memory stream, one contended 8-SPE stream, one SPE pair:
        # the three path kinds of the paper's DMA figures, each across
        # the regime break.
        specs = []
        for elem in PAPER_SIZES:
            for seed in (1000, 1001):
                specs.append(spec_for(elem, seed=seed))
                specs.append(
                    spec_for(elem, seed=seed, direction="copy", n_spes=8)
                )
                specs.append(
                    spec_for(
                        elem, seed=seed, direction="copy", partner_logical=1
                    )
                )
        model, _ = fit_on(specs)
        assert model.n_paths > 0
        for entry in model.report.entries:
            assert entry.r2 >= model.min_r2, entry.label
            assert entry.mape <= model.max_mape, entry.label
        # Families with enough points must actually have been
        # cross-validated, not just fitted in-sample.
        assert any(entry.n_holdout > 0 for entry in model.report.entries)

    def test_regime_break_forces_piecewise_fit(self):
        # A single family spanning 512 B..16 KiB cannot be one linear
        # law (cycles plateau when issue-bound); the adaptive
        # segmentation must produce several pieces, each in-gate.
        specs = [spec_for(elem, seed=1000) for elem in PAPER_SIZES]
        model, samples = fit_on(specs)
        sig = signature(specs[0])
        path = model.paths[sig.key]
        assert len(path.pieces) >= 2
        for spec, sample in zip(specs, samples):
            predicted = model.predict(spec)
            if predicted is None:  # held-out hull edge: fallback, fine
                continue
            assert abs(predicted.cycles - sample.cycles) / sample.cycles <= (
                model.max_mape + 1e-9
            )

    def test_prediction_bandwidth_is_consistent(self):
        specs = [spec_for(elem) for elem in (1024, 4096, 16384)]
        model, _ = fit_on(specs)
        for spec in specs:
            predicted = model.predict(spec)
            assert predicted is not None
            sig = signature(spec)
            assert predicted.nbytes == sig.total_bytes
            assert predicted.seed == spec.seed
            assert predicted.gbps == spec.config.clock.gbps(
                predicted.nbytes, predicted.cycles
            )


class TestFitDeterminism:
    def test_same_sweep_persists_byte_identical_models(self, tmp_path):
        specs = [
            spec_for(elem, seed=seed)
            for elem in (1024, 4096, 16384)
            for seed in (1000, 1001)
        ]
        model_a, _ = fit_on(specs)
        model_b, _ = fit_on(list(reversed(specs)))
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        SurrogateStore(str(path_a), code_version="pinned").save(model_a)
        SurrogateStore(str(path_b), code_version="pinned").save(model_b)
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_predictions_are_deterministic(self):
        specs = [spec_for(elem) for elem in (1024, 16384)]
        model_a, _ = fit_on(specs)
        model_b, _ = fit_on(specs)
        for spec in specs:
            assert model_a.predict(spec) == model_b.predict(spec)


class TestValidatedDomain:
    def test_unfitted_family_is_refused(self):
        model, _ = fit_on([spec_for(1024), spec_for(16384)])
        # Different direction => different family => no model.
        assert model.predict(spec_for(1024, direction="put")) is None
        assert not model.in_domain(spec_for(1024, direction="put"))

    def test_untrained_element_size_is_refused(self):
        # Two trained sizes are below the interpolation threshold, so
        # only exactly those sizes are served — 2 KiB (between them)
        # must fall back to the DES.
        model, _ = fit_on([spec_for(1024), spec_for(16384)])
        assert model.predict(spec_for(1024)) is not None
        assert model.predict(spec_for(2048)) is None

    def test_volume_outside_hull_is_refused(self):
        model, _ = fit_on([spec_for(1024), spec_for(16384)])
        doubled = spec_for(1024, n_elements=2 * n_elements_for(1024))
        assert model.predict(doubled) is None

    def test_heterogeneous_workloads_have_no_signature(self):
        fast = DmaWorkload(
            direction="get", element_bytes=1024, n_elements=64
        )
        slow = DmaWorkload(
            direction="get", element_bytes=16384, n_elements=32
        )
        spec = RunSpec(
            config=CONFIG, seed=1000, assignments=((0, fast), (1, slow))
        )
        assert signature(spec) is None
        model, _ = fit_on([spec_for(1024)])
        assert model.predict(spec) is None

    def test_out_of_domain_fallback_is_byte_identical(self):
        model, _ = fit_on([spec_for(1024), spec_for(16384)])
        fallback_specs = [
            spec_for(2048),
            spec_for(4096, direction="copy", partner_logical=1),
        ]
        with SweepExecutor(jobs=1, cache=None) as executor:
            baseline = executor.samples(list(fallback_specs))
        with SweepExecutor(jobs=1, cache=None) as executor:
            executor.surrogate = model
            surrogated = executor.samples(list(fallback_specs))
            assert executor.surrogate_hits == 0
            assert executor.surrogate_fallbacks == len(fallback_specs)
        assert surrogated == baseline

    def test_fallback_feeds_the_training_set(self):
        model, _ = fit_on([spec_for(1024), spec_for(16384)])
        target = spec_for(2048)
        assert model.predict(target) is None
        with SweepExecutor(jobs=1, cache=None) as executor:
            executor.surrogate = model
            (sample,) = executor.samples([target])
        assert model.pending == 1
        model.refit()
        predicted = model.predict(target)
        assert predicted is not None
        assert predicted.cycles == sample.cycles


class TestExecutorIntegration:
    def test_in_domain_repetitions_are_served_not_simulated(self):
        specs = [spec_for(1024), spec_for(16384)]
        model, samples = fit_on(specs)
        with SweepExecutor(jobs=1, cache=None) as executor:
            executor.surrogate = model
            served = executor.samples(list(specs))
            assert executor.surrogate_hits == len(specs)
            assert executor.simulated == 0
            assert "surrogate: 2 served" in executor.describe()
        for sample, truth in zip(served, samples):
            assert sample.nbytes == truth.nbytes
            assert abs(sample.cycles - truth.cycles) / truth.cycles <= 0.02

    def test_served_samples_never_touch_cache_or_journal(self, tmp_path):
        specs = [spec_for(1024), spec_for(16384)]
        model, _ = fit_on(specs)
        cache = ResultCache(str(tmp_path / "cache"), code_version="pinned")
        journal_path = str(tmp_path / "journal.jsonl")
        with SweepExecutor(jobs=1, cache=cache, journal=journal_path) as executor:
            executor.surrogate = model
            executor.samples(list(specs))
            assert executor.surrogate_hits == len(specs)
        entries = [
            name
            for _, _, names in os.walk(tmp_path / "cache")
            for name in names
            if name.endswith(".json")
        ]
        assert entries == []
        assert (
            not os.path.exists(journal_path)
            or open(journal_path).read() == ""
        )

    def test_cache_hits_win_over_the_surrogate(self, tmp_path):
        # An exact cached sample must be preferred to a prediction.
        spec = spec_for(1024)
        model, _ = fit_on([spec])
        cache = ResultCache(str(tmp_path), code_version="pinned")
        truth = run_spec(spec, engine="fast")
        cache.put(spec, truth)
        with SweepExecutor(jobs=1, cache=cache) as executor:
            executor.surrogate = model
            (sample,) = executor.samples([spec])
            assert executor.surrogate_hits == 0
        assert sample == truth

    def test_predict_many_matches_predict(self):
        specs = [
            spec_for(elem, seed=seed)
            for elem in (1024, 2048, 16384)
            for seed in (1000, 1001)
        ]
        model, _ = fit_on([spec_for(1024), spec_for(16384)])
        assert model.predict_many(specs) == [
            model.predict(spec) for spec in specs
        ]


class TestStore:
    def test_round_trip_serves_identically(self, tmp_path):
        specs = [spec_for(elem) for elem in (1024, 4096, 16384)]
        model, _ = fit_on(specs)
        store = SurrogateStore(
            str(tmp_path / "model.json"), code_version="pinned"
        )
        store.save(model)
        loaded = store.load()
        assert loaded is not None
        assert loaded.n_paths == model.n_paths
        for spec in specs:
            assert loaded.predict(spec) == model.predict(spec)

    def test_stale_code_version_is_not_served(self, tmp_path):
        model, _ = fit_on([spec_for(1024)], code_version="old-code")
        path = str(tmp_path / "model.json")
        SurrogateStore(path, code_version="old-code").save(model)
        assert SurrogateStore(path, code_version="old-code").load() is not None
        # The same file under the current (different) code version must
        # read as "no model" — refit, never reuse.
        assert SurrogateStore(path, code_version="new-code").load() is None

    def test_missing_and_corrupt_files_read_as_no_model(self, tmp_path):
        path = str(tmp_path / "model.json")
        store = SurrogateStore(path, code_version="pinned")
        assert store.load() is None
        with open(path, "w") as handle:
            handle.write('{"format": 99, "truncated')
        assert store.load() is None
        with open(path, "w") as handle:
            json.dump({"format": 1, "points": "nonsense"}, handle)
        assert store.load() is None
