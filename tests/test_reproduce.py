"""Tests for the reproduce-all driver (python -m repro.reproduce)."""

import os

import pytest

from repro import reproduce
from repro.core import validation


@pytest.fixture
def micro_preset(monkeypatch):
    """Shrink the quick preset to a smoke-sized sweep for the test."""
    monkeypatch.setitem(reproduce.PRESETS, "quick", ((16384,), 1, 2 ** 20))


def test_parse_args_defaults():
    args = reproduce.parse_args([])
    assert args.outdir == "repro-out"
    assert not args.quick and not args.paper_scale
    assert args.jobs is None
    assert not args.no_cache
    assert args.cache_dir == reproduce.DEFAULT_CACHE_DIR


def test_parse_args_jobs_and_cache_flags():
    args = reproduce.parse_args(
        ["--jobs", "4", "--no-cache", "--cache-dir", "/tmp/c"]
    )
    assert args.jobs == 4
    assert args.no_cache
    assert args.cache_dir == "/tmp/c"


def test_main_rejects_nonpositive_jobs(tmp_path):
    # argparse rejects 0/negative/non-integer --jobs up front (exit 2).
    for bad in ("0", "-3", "2.5", "two"):
        with pytest.raises(SystemExit) as excinfo:
            reproduce.main(["--jobs", bad, "--outdir", str(tmp_path)])
        assert excinfo.value.code == 2


def test_quick_and_paper_scale_are_exclusive():
    with pytest.raises(SystemExit):
        reproduce.parse_args(["--quick", "--paper-scale"])


def test_run_all_writes_reports_and_passes(tmp_path, micro_preset):
    outdir = str(tmp_path / "out")
    checks = reproduce.run_all("quick", outdir)
    assert checks
    written = os.listdir(outdir)
    # One text report per experiment plus CSVs, guidelines and the
    # validation summary.
    assert "validation.txt" in written
    assert "guidelines.txt" in written
    assert "guideline-streams.txt" in written
    assert any(name.startswith("fig08") and name.endswith(".csv") for name in written)
    assert any(name.startswith("fig15") for name in written)
    with open(os.path.join(outdir, "validation.txt")) as handle:
        summary = handle.read()
    assert "claims reproduced" in summary
    # The distance/pair checks are sensitive to tiny sweeps; the bulk of
    # the battery must still pass even at smoke size.
    passed = sum(1 for check in checks if check.passed)
    assert passed >= len(checks) - 2


def test_main_returns_zero_on_success(tmp_path, micro_preset, monkeypatch):
    calls = {}

    def fake_run_all(preset, outdir, executor=None):
        calls["preset"] = preset
        calls["outdir"] = outdir
        calls["executor"] = executor
        return [
            validation.ClaimCheck(
                claim_id="x",
                description="d",
                observed=1.0,
                expected_low=0.0,
                expected_high=2.0,
                passed=True,
            )
        ]

    monkeypatch.setattr(reproduce, "run_all", fake_run_all)
    assert reproduce.main(["--quick", "--outdir", str(tmp_path)]) == 0
    assert calls["preset"] == "quick"
    assert calls["executor"] is not None


def test_main_returns_nonzero_on_failure(tmp_path, monkeypatch):
    monkeypatch.setattr(
        reproduce,
        "run_all",
        lambda preset, outdir, executor=None: [
            validation.ClaimCheck(
                claim_id="x",
                description="d",
                observed=9.0,
                expected_low=0.0,
                expected_high=2.0,
                passed=False,
            )
        ],
    )
    assert reproduce.main(["--outdir", str(tmp_path)]) == 1
