"""Unit and integration tests for the kernel evaluation (paper §5
future work): compute model, specs, streaming runner, roofline."""

import pytest

from repro.cell import ConfigError
from repro.kernels import (
    KernelSpec,
    Precision,
    RooflineModel,
    SpuComputeModel,
    dot_product,
    matrix_multiply,
    matrix_vector,
    run_kernel,
    stream_triad,
)
from repro.kernels.streaming import _dma_sizes


@pytest.fixture
def compute(config):
    return SpuComputeModel(config)


class TestComputeModel:
    def test_sp_peak_is_paper_number(self, compute):
        # "capable of achieving [16.8] GFLOPS * 8 at 2.1 GHz"
        assert compute.peak_gflops(Precision.SINGLE, 1) == pytest.approx(16.8)
        assert compute.peak_gflops(Precision.SINGLE, 8) == pytest.approx(134.4)

    def test_dp_every_seven_cycles(self, compute):
        # "only one double precision operation every 7 cycles"
        assert compute.flops_per_cycle(Precision.DOUBLE) == pytest.approx(4 / 7)
        assert compute.dp_slowdown() == pytest.approx(14.0)

    def test_cycles_for_flops(self, compute):
        assert compute.cycles_for_flops(800, Precision.SINGLE) == 100
        assert compute.cycles_for_flops(0, Precision.SINGLE) == 0
        assert compute.cycles_for_flops(1, Precision.SINGLE) == 1
        with pytest.raises(ConfigError):
            compute.cycles_for_flops(-1, Precision.SINGLE)

    def test_efficiency_derates(self, config):
        derated = SpuComputeModel(config, efficiency=0.5)
        assert derated.peak_gflops(Precision.SINGLE, 1) == pytest.approx(8.4)
        with pytest.raises(ConfigError):
            SpuComputeModel(config, efficiency=0.0)

    def test_element_bytes(self):
        assert Precision.SINGLE.element_bytes == 4
        assert Precision.DOUBLE.element_bytes == 8


class TestSpecs:
    def test_dot_product_intensity(self):
        spec = dot_product(chunk_bytes=16384)
        # 2 FLOPs per element, 8 B of traffic per element in SP.
        assert spec.arithmetic_intensity == pytest.approx(0.25)
        assert spec.write_bytes == 0

    def test_triad_intensity(self):
        spec = stream_triad(chunk_bytes=16384)
        assert spec.traffic_bytes == 3 * 16384
        assert spec.arithmetic_intensity == pytest.approx(2 / 12)

    def test_matrix_vector_keeps_x_resident(self):
        spec = matrix_vector()
        assert spec.ls_resident_bytes > 0
        assert spec.arithmetic_intensity == pytest.approx(0.5)

    def test_matmul_intensity_grows_with_block(self):
        small = matrix_multiply(block=16)
        large = matrix_multiply(block=64)
        assert large.arithmetic_intensity > 3 * small.arithmetic_intensity

    def test_matmul_validation(self):
        with pytest.raises(ConfigError):
            matrix_multiply(block=48)  # not a power of two
        with pytest.raises(ConfigError):
            matrix_multiply(block=256)  # tile too big for the LS
        with pytest.raises(ConfigError):
            matrix_multiply(block=64, k_blocks=0)

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            KernelSpec(name="bad", read_bytes=(), write_bytes=0,
                       flops_per_iteration=1.0)
        with pytest.raises(ConfigError):
            KernelSpec(name="bad", read_bytes=(1024,), write_bytes=0,
                       flops_per_iteration=0.0)
        with pytest.raises(ConfigError):
            KernelSpec(name="bad", read_bytes=(0,), write_bytes=0,
                       flops_per_iteration=1.0)


class TestDmaSizes:
    def test_small_passthrough(self):
        assert _dma_sizes(4096) == [4096]

    def test_split_at_16k(self):
        assert _dma_sizes(40960) == [16384, 16384, 8192]

    def test_remainder_rounded_to_quadword(self):
        assert _dma_sizes(100) == [96]
        assert _dma_sizes(10) == [16]


class TestRunKernel:
    def test_bandwidth_bound_kernel_tracks_memory_bandwidth(self):
        run = run_kernel(dot_product(), n_spes=2, iterations_per_spe=48)
        # Two SPEs pull ~20 GB/s from memory (Fig. 8), so the dot product
        # lands near 0.25 FLOP/B x 20 GB/s = 5 GFLOP/s.
        assert 15.0 < run.gbps < 22.0
        assert run.gflops == pytest.approx(run.gbps * 0.25, rel=0.01)

    def test_compute_bound_kernel_reaches_peak(self):
        run = run_kernel(matrix_multiply(block=64), n_spes=2, iterations_per_spe=24)
        assert run.gflops > 0.9 * 2 * 16.8

    def test_dp_matmul_is_an_order_of_magnitude_slower(self):
        sp = run_kernel(matrix_multiply(block=64), n_spes=1, iterations_per_spe=16)
        dp = run_kernel(
            matrix_multiply(block=64, precision=Precision.DOUBLE),
            n_spes=1,
            iterations_per_spe=16,
        )
        assert 10.0 < sp.gflops / dp.gflops < 15.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            run_kernel(dot_product(), n_spes=0)
        with pytest.raises(ConfigError):
            run_kernel(dot_product(), n_spes=1, iterations_per_spe=0)
        # A kernel whose buffers cannot double-buffer in 256 KiB.
        greedy = KernelSpec(
            name="greedy",
            read_bytes=(131072, 131072),
            write_bytes=0,
            flops_per_iteration=1.0,
        )
        with pytest.raises(ConfigError):
            run_kernel(greedy, n_spes=1)

    def test_run_totals(self):
        run = run_kernel(stream_triad(), n_spes=2, iterations_per_spe=16)
        assert run.total_bytes == 3 * 16384 * 16 * 2
        assert "stream-triad" in str(run)


class TestRoofline:
    def test_ridge_point(self):
        roofline = RooflineModel()
        ridge = roofline.ridge_intensity(Precision.SINGLE, 4)
        # 67.2 GFLOP/s / ~21.5 GB/s ~= 3 FLOP/B.
        assert 2.5 < ridge < 4.0

    def test_predictions_classify_kernels(self):
        roofline = RooflineModel()
        assert roofline.predict(dot_product(), 4).bound == "bandwidth"
        assert roofline.predict(matrix_multiply(block=64), 4).bound == "compute"

    def test_verified_prediction_is_accurate(self):
        roofline = RooflineModel()
        point = roofline.verify(dot_product(), n_spes=4, iterations_per_spe=48)
        assert point.model_error is not None
        assert point.model_error < 0.15
        # At 2 SPEs plain double buffering no longer hides the full
        # memory latency: the run lands below the roof, not above it.
        two = roofline.verify(dot_product(), n_spes=2, iterations_per_spe=48)
        assert two.measured.gflops < two.predicted_gflops * 1.02

    def test_unknown_spe_count_rejected(self):
        with pytest.raises(ConfigError):
            RooflineModel().bandwidth_roof(5)

    def test_format(self):
        roofline = RooflineModel()
        text = RooflineModel.format(
            [roofline.predict(dot_product(), 4), roofline.predict(matrix_multiply(), 4)]
        )
        assert "bandwidth" in text and "compute" in text
