"""Unit tests for DMA command types and MFC validation rules."""

import pytest

from repro.cell import DmaAlignmentError, DmaCommand, DmaDirection, DmaList, DmaSizeError
from repro.cell.dma import (
    DmaListElement,
    EFFICIENT_MIN_BYTES,
    MAX_TRANSFER_BYTES,
    TargetKind,
    split_into_commands,
    validate_transfer,
)


class TestValidateTransfer:
    def test_quadword_multiples_accepted(self):
        for size in (16, 128, 1024, MAX_TRANSFER_BYTES):
            validate_transfer(size, 0, 0)

    def test_small_power_of_two_sizes_accepted(self):
        for size in (1, 2, 4, 8):
            validate_transfer(size, size, size)

    def test_zero_and_negative_rejected(self):
        with pytest.raises(DmaSizeError):
            validate_transfer(0, 0, 0)
        with pytest.raises(DmaSizeError):
            validate_transfer(-16, 0, 0)

    def test_above_16k_rejected(self):
        with pytest.raises(DmaSizeError):
            validate_transfer(MAX_TRANSFER_BYTES + 16, 0, 0)

    def test_odd_small_sizes_rejected(self):
        for size in (3, 5, 6, 7, 9, 15):
            with pytest.raises(DmaSizeError):
                validate_transfer(size, 0, 0)

    def test_non_quadword_multiple_rejected(self):
        with pytest.raises(DmaSizeError):
            validate_transfer(24, 0, 0)

    def test_misaligned_quadword_rejected(self):
        with pytest.raises(DmaAlignmentError):
            validate_transfer(128, 8, 8)

    def test_small_natural_alignment_enforced(self):
        validate_transfer(4, 4, 4)
        with pytest.raises(DmaAlignmentError):
            validate_transfer(4, 2, 2)

    def test_mismatched_alignment_rejected(self):
        with pytest.raises(DmaAlignmentError):
            validate_transfer(8, 0, 8)


class TestDmaCommand:
    def test_valid_command(self):
        command = DmaCommand(
            direction=DmaDirection.GET,
            target=TargetKind.MAIN_MEMORY,
            size=4096,
            tag=3,
        )
        assert command.is_efficient
        assert command.size == 4096

    def test_small_command_flagged_inefficient(self):
        command = DmaCommand(
            direction=DmaDirection.PUT,
            target=TargetKind.MAIN_MEMORY,
            size=EFFICIENT_MIN_BYTES - 64,
        )
        assert not command.is_efficient

    def test_tag_range_enforced(self):
        with pytest.raises(DmaSizeError):
            DmaCommand(
                direction=DmaDirection.GET,
                target=TargetKind.MAIN_MEMORY,
                size=128,
                tag=32,
            )

    def test_ls_target_needs_remote_node(self):
        with pytest.raises(DmaSizeError):
            DmaCommand(
                direction=DmaDirection.GET,
                target=TargetKind.LOCAL_STORE,
                size=128,
            )

    def test_command_ids_are_unique(self):
        a = DmaCommand(DmaDirection.GET, TargetKind.MAIN_MEMORY, 128)
        b = DmaCommand(DmaDirection.GET, TargetKind.MAIN_MEMORY, 128)
        assert a.command_id != b.command_id


class TestDmaList:
    def test_uniform_builder(self):
        dma_list = DmaList.uniform(
            DmaDirection.GET, TargetKind.MAIN_MEMORY, element_size=512, n_elements=10
        )
        assert len(dma_list.elements) == 10
        assert dma_list.size == 5120
        assert dma_list.elements[3].remote_offset == 3 * 512

    def test_empty_list_rejected(self):
        with pytest.raises(DmaSizeError):
            DmaList(
                direction=DmaDirection.GET,
                target=TargetKind.MAIN_MEMORY,
                elements=[],
            )

    def test_uniform_rejects_zero_elements(self):
        with pytest.raises(DmaSizeError):
            DmaList.uniform(
                DmaDirection.GET, TargetKind.MAIN_MEMORY, element_size=512, n_elements=0
            )

    def test_element_validation_applies(self):
        with pytest.raises(DmaSizeError):
            DmaListElement(size=24)

    def test_ls_list_needs_remote_node(self):
        with pytest.raises(DmaSizeError):
            DmaList.uniform(
                DmaDirection.PUT, TargetKind.LOCAL_STORE, element_size=128, n_elements=2
            )


class TestSplitIntoCommands:
    def test_even_split(self):
        commands = split_into_commands(
            4096, 1024, DmaDirection.GET, TargetKind.MAIN_MEMORY
        )
        assert len(commands) == 4
        assert all(command.size == 1024 for command in commands)
        assert commands[2].remote_offset == 2048

    def test_uneven_split_rejected(self):
        with pytest.raises(DmaSizeError):
            split_into_commands(1000, 128, DmaDirection.GET, TargetKind.MAIN_MEMORY)

    def test_zero_element_rejected(self):
        with pytest.raises(DmaSizeError):
            split_into_commands(1024, 0, DmaDirection.GET, TargetKind.MAIN_MEMORY)
