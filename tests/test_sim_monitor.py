"""Unit tests for simulation instrumentation."""

import pytest

from repro.sim import BusyMonitor, Counter, Environment, SimulationError, TimeSeries


def test_busy_monitor_tracks_single_interval():
    env = Environment()
    monitor = BusyMonitor(env, "srv")

    def worker(env):
        yield env.timeout(5)
        monitor.acquire()
        yield env.timeout(10)
        monitor.release()
        yield env.timeout(5)

    env.process(worker(env))
    env.run()
    assert monitor.busy_time() == 10
    assert monitor.utilization() == pytest.approx(0.5)


def test_busy_monitor_overlapping_levels():
    env = Environment()
    monitor = BusyMonitor(env, "ring")

    def holder(env, start, duration):
        yield env.timeout(start)
        monitor.acquire()
        yield env.timeout(duration)
        monitor.release()

    env.process(holder(env, 0, 10))
    env.process(holder(env, 5, 10))
    env.run()
    # Busy from 0 to 15; level 2 from 5 to 10.
    assert monitor.busy_time() == 15
    assert monitor.level_time_integral() == 10 + 10


def test_busy_monitor_release_while_idle_raises():
    env = Environment()
    monitor = BusyMonitor(env)
    with pytest.raises(SimulationError):
        monitor.release()


def test_busy_monitor_utilization_zero_elapsed():
    env = Environment()
    monitor = BusyMonitor(env)
    assert monitor.utilization() == 0.0


def test_time_series_records_and_reduces():
    env = Environment()
    series = TimeSeries(env, "depth")

    def sampler(env):
        for value in (1.0, 3.0, 2.0):
            yield env.timeout(1)
            series.record(value)

    env.process(sampler(env))
    env.run()
    assert len(series) == 3
    assert series.values() == [1.0, 3.0, 2.0]
    assert series.mean() == pytest.approx(2.0)
    assert series.max() == 3.0
    assert series.samples[0] == (1, 1.0)


def test_time_series_empty_reduction_raises():
    env = Environment()
    series = TimeSeries(env)
    with pytest.raises(SimulationError):
        series.mean()
    with pytest.raises(SimulationError):
        series.max()


def test_counter_increments_and_rejects_negative():
    counter = Counter("grants")
    counter.increment()
    counter.increment(by=4)
    assert int(counter) == 5
    with pytest.raises(ValueError):
        counter.increment(by=-1)
    assert "grants" in repr(counter)
