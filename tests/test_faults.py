"""Fault-injection engine and runtime-resilience tests.

Covers the spec grammar, the determinism guarantees (same ``(spec,
seed)`` pair ⇒ same faults ⇒ same results; no engine ⇒ identical to a
plain run), each hardware fault site, and the offload runtime's
crash/hang recovery.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cell import CellChip, DmaTimeoutError
from repro.libspe import SpeContext
from repro.runtime import OffloadRuntime, ResiliencePolicy, wavefront
from repro.sim import (
    FaultEngine,
    FaultInjected,
    FaultReport,
    FaultSpecError,
    NULL_FAULTS,
    TraceRecorder,
    TraceSummary,
    parse_fault_spec,
)
from repro.trace_report import render_report


# -- spec grammar ------------------------------------------------------------------


def test_parse_fault_spec_mixed():
    assert parse_fault_spec("spe_crash:1,dma_drop:0.02,ecc_retry:0.5") == {
        "spe_crash": 1,
        "dma_drop": 0.02,
        "ecc_retry": 0.5,
    }


@pytest.mark.parametrize(
    "spec",
    [
        "unknown_kind:1",
        "spe_crash",  # no value
        "spe_crash:1.5",  # count kinds take integers
        "spe_crash:-1",
        "dma_drop:1.5",  # probability out of range
        "dma_drop:x",
        "",
    ],
)
def test_parse_fault_spec_rejects(spec):
    with pytest.raises(FaultSpecError):
        parse_fault_spec(spec)


def test_null_engine_is_inert():
    assert NULL_FAULTS.enabled is False
    assert NULL_FAULTS.injected == 0
    assert NULL_FAULTS.counts() == {}


def test_environment_defaults_to_null_engine(chip):
    assert chip.env.faults is NULL_FAULTS
    assert chip.faults.enabled is False


# -- determinism -------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_engine_probe_stream_is_seed_deterministic(seed):
    spec = "dma_stall:0.3,dma_drop:0.2,eib_degrade:0.25,ecc_retry:0.15"
    a = FaultEngine(spec, seed=seed)
    b = FaultEngine(spec, seed=seed)
    trace_a = [
        (a.mfc_stall_cycles("spe0"), a.mfc_dropped("spe0"),
         a.eib_penalty_cycles("spe0", "mem0"), a.bank_retry_cycles("bank0"))
        for _ in range(200)
    ]
    trace_b = [
        (b.mfc_stall_cycles("spe0"), b.mfc_dropped("spe0"),
         b.eib_penalty_cycles("spe0", "mem0"), b.bank_retry_cycles("bank0"))
        for _ in range(200)
    ]
    assert trace_a == trace_b
    assert a.counts() == b.counts()


def _run_stats(policy, faults=None):
    return OffloadRuntime(
        wavefront(3, 3), n_spes=4, policy=policy, faults=faults
    ).run()


def _key(stats):
    return (
        stats.makespan_cycles,
        stats.memory_read_bytes,
        stats.memory_write_bytes,
        stats.forwarded_bytes,
        stats.faults_injected,
        stats.tasks_retried,
        stats.spes_lost,
        stats.lost_workers,
        tuple(sorted(stats.tasks_per_spe.items())),
    )


@pytest.mark.parametrize("policy", ["forward", "memory"])
def test_same_fault_seed_reproduces_identical_run(policy):
    spec = "spe_crash:1,dma_stall:0.1,ecc_retry:0.1"
    first = _run_stats(policy, FaultEngine(spec, seed=7))
    second = _run_stats(policy, FaultEngine(spec, seed=7))
    assert _key(first) == _key(second)


def test_engine_disabled_matches_plain_run():
    plain = _run_stats("forward")
    again = _run_stats("forward", faults=None)
    assert _key(plain) == _key(again)
    assert plain.faults_injected == 0
    assert str(plain) == str(again)
    assert "faults" not in str(plain)  # stats text unchanged without faults


# -- hardware fault sites -----------------------------------------------------------


def _chip_with(spec, seed=0, trace=None, **knobs):
    return CellChip(faults=FaultEngine(spec, seed=seed, **knobs), trace=trace)


def test_mfc_stall_delays_command():
    out = {}

    def program(spu, out):
        yield from spu.mfc_get(size=4096, tag=0)
        yield from spu.wait_tags([0])
        out["cycles"] = spu.read_decrementer()

    baseline_chip = CellChip()
    SpeContext(baseline_chip, 0).load(program, out)
    baseline_chip.run()
    baseline = out["cycles"]

    chip = _chip_with("dma_stall:1.0", stall_cycles=5_000)
    SpeContext(chip, 0).load(program, out)
    chip.run()
    assert out["cycles"] >= baseline + 5_000
    assert chip.faults.counts() == {"dma_stall": 1}


def test_dropped_command_recovers_via_redrive():
    out = {}

    def program(spu, out):
        yield from spu.mfc_get(size=4096, tag=0)
        yield from spu.wait_tags([0], timeout=2_000, retries=2)
        out["redriven"] = spu.spe.mfc.commands_redriven
        out["parked"] = spu.spe.mfc.parked_commands()

    chip = _chip_with("dma_drop:1.0")
    SpeContext(chip, 0).load(program, out)
    chip.run()
    assert out["redriven"] == 1  # the drop was re-driven and completed
    assert out["parked"] == 0
    assert chip.faults.counts() == {"dma_drop": 1}


def test_dropped_command_without_retries_times_out():
    def program(spu):
        yield from spu.mfc_get(size=4096, tag=0)
        yield from spu.wait_tags([0], timeout=2_000, retries=0)

    chip = _chip_with("dma_drop:1.0")
    SpeContext(chip, 0).load(program)
    with pytest.raises(DmaTimeoutError) as excinfo:
        chip.run()
    assert excinfo.value.tags == (0,)
    assert excinfo.value.attempts == 1


def test_ecc_retry_charges_the_bank():
    def program(spu):
        yield from spu.mfc_get(size=16384, tag=0)
        yield from spu.wait_tags([0])

    chip = _chip_with("ecc_retry:1.0")
    SpeContext(chip, 0).load(program)
    chip.run()
    assert sum(b.fault_cycles for b in chip.memory.banks) > 0
    assert chip.faults.counts()["ecc_retry"] >= 1


def test_eib_degradation_charges_the_ring():
    def program(spu, partner):
        yield from spu.mfc_get(size=16384, tag=0, remote_spe=partner)
        yield from spu.wait_tags([0])

    chip = _chip_with("eib_degrade:1.0")
    SpeContext(chip, 0).load(program, chip.spe(4))
    chip.run()
    assert chip.eib.fault_cycles > 0
    assert chip.faults.counts()["eib_degrade"] >= 1


# -- runtime recovery ---------------------------------------------------------------


@pytest.mark.parametrize("policy", ["forward", "memory"])
def test_runtime_survives_one_crashed_spe(policy):
    graph = wavefront(4, 4)
    stats = OffloadRuntime(
        graph, n_spes=8, policy=policy, faults=FaultEngine("spe_crash:1", seed=7)
    ).run()
    assert stats.spes_lost == 1
    assert stats.lost_workers == (0,)  # victims are the first contexts loaded
    assert stats.tasks_retried >= 1
    # Every task completed exactly once, crash or not.
    assert sum(stats.tasks_per_spe.values()) == len(graph)


@pytest.mark.parametrize("policy", ["forward", "memory"])
def test_runtime_survives_one_hung_spe(policy):
    graph = wavefront(4, 4)
    stats = OffloadRuntime(
        graph,
        n_spes=8,
        policy=policy,
        faults=FaultEngine("spe_hang:1", seed=3),
        resilience=ResiliencePolicy(
            hang_timeout_cycles=200_000, check_interval_cycles=20_000
        ),
    ).run()
    assert stats.spes_lost == 1
    assert sum(stats.tasks_per_spe.values()) == len(graph)


def test_runtime_completes_under_noisy_transfers():
    graph = wavefront(3, 3)
    stats = OffloadRuntime(
        graph,
        n_spes=4,
        policy="forward",
        faults=FaultEngine("dma_drop:0.05,dma_stall:0.05,ecc_retry:0.1", seed=11),
    ).run()
    assert sum(stats.tasks_per_spe.values()) == len(graph)
    assert stats.faults_injected > 0


def test_crash_without_monitor_still_propagates():
    """Outside the resilient runtime, an injected crash is loud."""
    from repro.cell.errors import SpeCrashError

    def program(spu):
        while True:
            yield spu.compute(100)

    chip = _chip_with("spe_crash:1", seed=1)
    SpeContext(chip, 0).load(program)
    with pytest.raises(SpeCrashError):
        chip.run()


# -- trace and reporting ------------------------------------------------------------


def test_fault_records_reach_trace_and_report():
    def program(spu):
        yield from spu.mfc_get(size=16384, tag=0)
        yield from spu.wait_tags([0])

    recorder = TraceRecorder()
    chip = _chip_with("ecc_retry:1.0,dma_stall:1.0", trace=recorder)
    SpeContext(chip, 0).load(program)
    chip.run()
    fault_records = [r for r in recorder.records if isinstance(r, FaultInjected)]
    assert fault_records
    summary = TraceSummary(recorder.records)
    stats = summary.fault_stats()
    assert ("memory", "ecc_retry") in stats
    assert ("mfc", "dma_stall") in stats
    report = render_report(summary, cpu_hz=3.2e9)
    assert "== faults ==" in report
    assert "ecc_retry" in report


def test_fault_report_from_engine():
    engine = FaultEngine("dma_stall:1.0", seed=2)
    for _ in range(5):
        engine.mfc_stall_cycles("spe0")
    report = FaultReport.from_engine(engine)
    assert report.injected == 5
    assert report.by_kind == {"dma_stall": 5}
    assert report.seed == 2
    assert FaultReport.from_engine(NULL_FAULTS).injected == 0
