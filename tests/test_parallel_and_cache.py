"""Tests for the parallel sweep executor and the persistent result cache.

The determinism contract under test: for any ``--jobs`` value, and for
any mix of cold and warm cache, a reproduction run must produce
byte-identical report files and the same validation verdicts as the
historical serial path.
"""

import json
import os
import pickle

import pytest

from repro import reproduce
from repro.cell.config import CellConfig
from repro.core.cache import ResultCache, repro_code_version
from repro.core.experiment import ExperimentResult, RunSpec, run_spec
from repro.core.kernels import DmaWorkload
from repro.core.results import BandwidthSample, BandwidthStats, SweepTable
from repro.runtime.parallel import DeferredStats, SweepExecutor, default_jobs


def make_spec(seed=1000, n_elements=16, element_bytes=16384, n_spes=2):
    workload = DmaWorkload(
        direction="get", element_bytes=element_bytes, n_elements=n_elements
    )
    return RunSpec(
        config=CellConfig.paper_blade(),
        seed=seed,
        assignments=tuple((logical, workload) for logical in range(n_spes)),
    )


@pytest.fixture
def micro_preset(monkeypatch):
    """Shrink the quick preset to a smoke-sized sweep."""
    monkeypatch.setitem(reproduce.PRESETS, "quick", ((16384,), 1, 2 ** 20))


class _QueueThenExplode:
    """Experiment stand-in that queues deferred work, then fails."""

    executor = None

    def __init__(self, specs):
        self.specs = specs

    def run(self):
        self.executor.stats(self.specs)
        raise RuntimeError("mid-sweep failure")


class _OneCell:
    """Experiment stand-in with a single deferred sweep cell."""

    executor = None

    def __init__(self, specs):
        self.specs = specs

    def run(self):
        table = SweepTable(name="cell", axes=("k",))
        table.put((0,), self.executor.stats(self.specs))
        return ExperimentResult(
            name="one-cell", description="", tables={"cell": table}
        )


def read_tree(outdir):
    """{relative path: bytes} for every file under ``outdir``."""
    tree = {}
    for dirpath, _dirnames, filenames in os.walk(outdir):
        for filename in filenames:
            path = os.path.join(dirpath, filename)
            with open(path, "rb") as handle:
                tree[os.path.relpath(path, outdir)] = handle.read()
    return tree


class TestRunSpec:
    def test_pickles_round_trip(self):
        spec = make_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_run_spec_is_pure(self):
        spec = make_spec()
        assert run_spec(spec) == run_spec(spec)


class TestSweepExecutor:
    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepExecutor(jobs=0)

    def test_serial_stats_returned_immediately(self):
        specs = [make_spec(seed) for seed in (1000, 1001)]
        with SweepExecutor(jobs=1) as executor:
            stats = executor.stats(specs)
        assert stats.n_samples == 2
        assert executor.simulated == 2

    def test_parallel_stats_deferred_then_equal_to_serial(self):
        specs = [make_spec(seed) for seed in (1000, 1001, 1002)]
        with SweepExecutor(jobs=1) as serial:
            expected = serial.samples(list(specs))
        with SweepExecutor(jobs=2) as parallel:
            placeholder = parallel.stats(specs)
            assert isinstance(placeholder, DeferredStats)
            got = parallel.samples(list(specs))
        assert got == expected

    def test_pool_samples_match_inline_run_spec(self):
        specs = [make_spec(seed) for seed in (1000, 1001)]
        inline = [run_spec(spec) for spec in specs]
        with SweepExecutor(jobs=2) as executor:
            assert executor.samples(specs) == inline

    def test_failed_experiment_leaves_no_pending_specs(self):
        """Regression: a raising experiment used to leave its queued
        specs in ``_pending``, shifting the DeferredStats offsets of
        every *later* experiment on the same executor — whose cells then
        resolved against the wrong samples."""
        bad = [make_spec(seed) for seed in (2000, 2001)]
        good = [make_spec(seed) for seed in (1000, 1001)]
        with SweepExecutor(jobs=2) as executor:
            with pytest.raises(RuntimeError, match="mid-sweep failure"):
                executor.run(_QueueThenExplode(bad))
            assert executor._pending == []
            result = executor.run(_OneCell(good))
        with SweepExecutor(jobs=1) as serial:
            expected = BandwidthStats.from_samples(serial.samples(list(good)))
        assert result.tables["cell"].cells[(0,)] == expected


class TestResultCache:
    def test_key_is_stable_across_instances(self, tmp_path):
        spec = make_spec()
        a = ResultCache(str(tmp_path), code_version="v1")
        b = ResultCache(str(tmp_path), code_version="v1")
        assert a.key(spec) == b.key(spec)

    def test_seed_changes_key(self, tmp_path):
        cache = ResultCache(str(tmp_path), code_version="v1")
        assert cache.key(make_spec(seed=1)) != cache.key(make_spec(seed=2))

    def test_workload_changes_key(self, tmp_path):
        cache = ResultCache(str(tmp_path), code_version="v1")
        assert cache.key(make_spec(n_elements=16)) != cache.key(
            make_spec(n_elements=17)
        )

    def test_code_version_changes_key(self, tmp_path):
        spec = make_spec()
        old = ResultCache(str(tmp_path), code_version="v1")
        new = ResultCache(str(tmp_path), code_version="v2")
        assert old.key(spec) != new.key(spec)

    def test_put_get_round_trip_is_exact(self, tmp_path):
        spec = make_spec()
        cache = ResultCache(str(tmp_path))
        assert cache.get(spec) is None
        sample = run_spec(spec)
        cache.put(spec, sample)
        assert cache.get(spec) == sample
        assert cache.misses == 1 and cache.hits == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        spec = make_spec()
        cache = ResultCache(str(tmp_path))
        cache.put(spec, BandwidthSample(gbps=1.0, nbytes=1, cycles=1, seed=0))
        path = cache._path(cache.key(spec))
        with open(path, "w") as handle:
            handle.write("{not json")
        assert cache.get(spec) is None

    def test_mistyped_entries_read_as_misses(self, tmp_path):
        """Regression: entries that parse as JSON but carry the wrong
        types (a string gbps, a null nbytes, a boolean seed) used to be
        handed straight to BandwidthSample and poison downstream stats;
        get() must treat every one of them as a miss."""
        spec = make_spec()
        cache = ResultCache(str(tmp_path))
        path = cache._path(cache.key(spec))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        good = {"gbps": 1.0, "nbytes": 1, "cycles": 1, "seed": 0}
        mistyped = [
            {**good, "gbps": "1.0"},
            {**good, "nbytes": None},
            {**good, "cycles": 1.5},
            {**good, "seed": True},  # bool is an int subclass: rejected
            [1.0, 1, 1, 0],  # not even an object
        ]
        for payload in mistyped:
            with open(path, "w") as handle:
                json.dump(payload, handle)
            assert cache.get(spec) is None
        assert cache.misses == len(mistyped) and cache.hits == 0
        # and the well-typed payload still round-trips
        with open(path, "w") as handle:
            json.dump(good, handle)
        assert cache.get(spec) == BandwidthSample(
            gbps=1.0, nbytes=1, cycles=1, seed=0
        )

    def test_key_computed_once_per_spec_even_on_miss(self, tmp_path):
        """Regression: a miss used to compute key(spec) twice (once in
        get, once in put); the executor now threads one key through
        both sides of the lookup."""

        class CountingCache(ResultCache):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.key_calls = 0

            def key(self, spec):
                self.key_calls += 1
                return super().key(spec)

        specs = [make_spec(seed) for seed in (1000, 1001, 1002)]
        cache = CountingCache(str(tmp_path))
        with SweepExecutor(jobs=1, cache=cache) as cold:
            cold.samples(list(specs))
        assert cold.simulated == len(specs)
        assert cache.key_calls == len(specs)
        cache.key_calls = 0
        with SweepExecutor(jobs=1, cache=cache) as warm:
            warm.samples(list(specs))
        assert warm.simulated == 0
        assert cache.key_calls == len(specs)

    def test_repro_code_version_is_stable_in_process(self):
        assert repro_code_version() == repro_code_version()
        assert len(repro_code_version()) == 64

    def test_executor_serves_hits_without_simulating(self, tmp_path):
        specs = [make_spec(seed) for seed in (1000, 1001)]
        cache = ResultCache(str(tmp_path))
        with SweepExecutor(jobs=1, cache=cache) as cold:
            first = cold.samples(list(specs))
        assert cold.simulated == 2 and cache.misses == 2
        warm_cache = ResultCache(str(tmp_path))
        with SweepExecutor(jobs=1, cache=warm_cache) as warm:
            second = warm.samples(list(specs))
        assert warm.simulated == 0 and warm_cache.hits == 2
        assert second == first


class TestReproduceEquivalence:
    """--jobs and the cache must not change a single output byte."""

    def run_all(self, outdir, jobs, cache=None, engine="reference"):
        executor = SweepExecutor(jobs=jobs, cache=cache, engine=engine)
        try:
            checks = reproduce.run_all("quick", str(outdir), executor=executor)
        finally:
            executor.close()
        return checks, executor

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_serial_and_parallel_outputs_byte_identical(
        self, tmp_path, micro_preset, engine
    ):
        checks1, _ = self.run_all(tmp_path / "serial", jobs=1, engine=engine)
        checks2, _ = self.run_all(tmp_path / "parallel", jobs=2, engine=engine)
        assert read_tree(tmp_path / "serial") == read_tree(tmp_path / "parallel")
        assert [(c.claim_id, c.passed) for c in checks1] == [
            (c.claim_id, c.passed) for c in checks2
        ]

    def test_fast_engine_outputs_byte_identical_to_reference(
        self, tmp_path, micro_preset
    ):
        checks1, _ = self.run_all(tmp_path / "ref", jobs=1)
        checks2, _ = self.run_all(tmp_path / "fast", jobs=1, engine="fast")
        assert read_tree(tmp_path / "ref") == read_tree(tmp_path / "fast")
        assert [(c.claim_id, c.passed) for c in checks1] == [
            (c.claim_id, c.passed) for c in checks2
        ]

    def test_fast_engine_cache_interchangeable_with_reference(
        self, tmp_path, micro_preset
    ):
        """The cache key has no engine component: entries written by a
        fast run must serve a reference rerun byte-identically (and
        vice versa), because the samples are contractually identical."""
        cache_dir = str(tmp_path / "cache")
        checks1, cold = self.run_all(
            tmp_path / "fast", jobs=1, cache=ResultCache(cache_dir),
            engine="fast",
        )
        assert cold.simulated > 0
        checks2, warm = self.run_all(
            tmp_path / "ref", jobs=1, cache=ResultCache(cache_dir)
        )
        assert warm.simulated == 0
        assert read_tree(tmp_path / "fast") == read_tree(tmp_path / "ref")
        assert [(c.claim_id, c.passed) for c in checks1] == [
            (c.claim_id, c.passed) for c in checks2
        ]

    def test_cache_hit_rerun_outputs_byte_identical(self, tmp_path, micro_preset):
        cache_dir = str(tmp_path / "cache")
        cold_cache = ResultCache(cache_dir)
        checks1, cold = self.run_all(tmp_path / "cold", jobs=1, cache=cold_cache)
        assert cold.simulated > 0
        warm_cache = ResultCache(cache_dir)
        checks2, warm = self.run_all(tmp_path / "warm", jobs=1, cache=warm_cache)
        # Every repetition of the rerun is served from the cache.
        assert warm.simulated == 0 and warm_cache.hits > 0
        assert read_tree(tmp_path / "cold") == read_tree(tmp_path / "warm")
        assert [(c.claim_id, c.passed) for c in checks1] == [
            (c.claim_id, c.passed) for c in checks2
        ]


class TestSelfHealingCache:
    """The hardened cache contract: corruption quarantines, unwritable
    filesystems degrade warn-once, the size cap evicts LRU-first."""

    def entry_paths(self, cache_dir):
        from repro.core.cache import QUARANTINE_DIR

        return sorted(
            os.path.join(dirpath, name)
            for dirpath, _dirnames, names in os.walk(cache_dir)
            if QUARANTINE_DIR not in dirpath
            for name in names
            if name.endswith(".json")
        )

    def test_put_oserror_warns_once_then_noops(self, tmp_path, monkeypatch):
        import warnings as warnings_module

        from repro.core import cache as cache_module

        spec_a, spec_b = make_spec(1), make_spec(2)
        sample = run_spec(spec_a)
        cache = ResultCache(str(tmp_path / "cache"), code_version="v1")

        def broken_tempfile(*args, **kwargs):
            raise OSError(28, "No space left on device")

        # Running as root defeats chmod-based read-only setups, so break
        # the write path itself.
        monkeypatch.setattr(
            cache_module.tempfile, "NamedTemporaryFile", broken_tempfile
        )
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            cache.put(spec_a, sample)
            cache.put(spec_b, sample)
        runtime_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(runtime_warnings) == 1
        assert "not writable" in str(runtime_warnings[0].message)
        assert cache.put_errors == 2
        assert "2 write error(s)" in cache.describe()
        # The sweep itself is unharmed: gets still answer (as misses).
        assert cache.get(spec_a) is None

    def test_corrupt_entry_is_quarantined_and_healed(self, tmp_path):
        from repro.core.cache import QUARANTINE_DIR

        cache_dir = str(tmp_path / "cache")
        spec = make_spec(3)
        sample = run_spec(spec)
        cache = ResultCache(cache_dir, code_version="v1")
        cache.put(spec, sample)
        (entry,) = self.entry_paths(cache_dir)
        with open(entry, "w") as handle:
            handle.write('{"gbps": "trash"')
        healing = ResultCache(cache_dir, code_version="v1")
        assert healing.get(spec) is None
        assert healing.corrupt == 1
        assert "1 quarantined" in healing.describe()
        assert not os.path.exists(entry)
        assert os.listdir(os.path.join(cache_dir, QUARANTINE_DIR))
        # A re-put heals the entry for good.
        healing.put(spec, sample)
        assert healing.get(spec) == sample

    def test_mistyped_payload_is_quarantined(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        spec = make_spec(4)
        cache = ResultCache(cache_dir, code_version="v1")
        cache.put(spec, run_spec(spec))
        (entry,) = self.entry_paths(cache_dir)
        # Valid JSON, wrong shape: gbps must be a float, not a bool.
        with open(entry, "w") as handle:
            json.dump({"gbps": True, "nbytes": 1, "cycles": 1, "seed": 4}, handle)
        cache = ResultCache(cache_dir, code_version="v1")
        assert cache.get(spec) is None
        assert cache.corrupt == 1

    def test_max_bytes_evicts_oldest_first(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        specs = [make_spec(seed) for seed in (1, 2, 3, 4)]
        samples = {spec.seed: run_spec(spec) for spec in specs}
        probe = ResultCache(cache_dir, code_version="v1")
        probe.put(specs[0], samples[1])
        (first_entry,) = self.entry_paths(cache_dir)
        entry_size = os.path.getsize(first_entry)
        # Room for three entries; the fourth put must evict the oldest.
        cache = ResultCache(
            cache_dir, code_version="v1", max_bytes=3 * entry_size
        )
        now = 1_700_000_000
        os.utime(first_entry, (now, now))
        for offset, spec in enumerate(specs[1:], start=1):
            cache.put(spec, samples[spec.seed])
            newest = [
                path for path in self.entry_paths(cache_dir)
                if os.stat(path).st_mtime < now
            ]
            for path in newest:
                os.utime(path, (now + offset, now + offset))
        assert cache.evictions == 1
        assert "1 evicted" in cache.describe()
        survivors = ResultCache(cache_dir, code_version="v1")
        # Seed 1 (the oldest mtime) was evicted; the newest three live.
        assert survivors.get(specs[0]) is None
        for spec in specs[1:]:
            assert survivors.get(spec) == samples[spec.seed]

    def test_get_touches_entry_under_eviction(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        spec = make_spec(5)
        cache = ResultCache(cache_dir, code_version="v1", max_bytes=2 ** 20)
        cache.put(spec, run_spec(spec))
        (entry,) = self.entry_paths(cache_dir)
        stale = 1_600_000_000
        os.utime(entry, (stale, stale))
        assert cache.get(spec) is not None
        # The hit refreshed the mtime: the entry is young again for LRU.
        assert os.stat(entry).st_mtime > stale

    def test_max_bytes_rejects_nonpositive(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(str(tmp_path), max_bytes=0)
