"""Unit tests for the MFC: queue, tags, lists, pacing, penalties."""

import pytest

from repro.cell import CellChip, DmaCommand, DmaDirection, DmaList
from repro.cell.dma import TargetKind
from repro.cell.errors import CellError


def ls_command(size=2048, tag=0, node="SPE1"):
    return DmaCommand(
        direction=DmaDirection.GET,
        target=TargetKind.LOCAL_STORE,
        size=size,
        tag=tag,
        remote_node=node,
    )


def mem_command(size=2048, tag=0, direction=DmaDirection.GET):
    return DmaCommand(direction=direction, target=TargetKind.MAIN_MEMORY, size=size, tag=tag)


def test_enqueue_returns_once_slot_taken(chip):
    mfc = chip.spe(0).mfc
    log = []

    def issuer(env):
        yield from mfc.enqueue(ls_command())
        log.append(env.now)

    chip.env.process(issuer(chip.env))
    chip.run()
    assert log == [0]
    assert mfc.commands_completed == 1
    assert mfc.bytes_transferred == 2048


def test_queue_depth_backpressure(chip):
    """The 17th enqueue must wait for a completion."""
    mfc = chip.spe(0).mfc
    depth = chip.config.mfc.queue_depth
    enqueue_times = []

    def issuer(env):
        for _ in range(depth + 1):
            yield from mfc.enqueue(ls_command(size=16384))
            enqueue_times.append(env.now)

    chip.env.process(issuer(chip.env))
    chip.run()
    assert enqueue_times[depth - 1] == 0
    assert enqueue_times[depth] > 0


def test_tag_groups_tracked_independently(chip):
    mfc = chip.spe(0).mfc
    observations = {}

    def issuer(env):
        yield from mfc.enqueue(ls_command(tag=2))
        yield from mfc.enqueue(ls_command(tag=5))
        observations["outstanding"] = (mfc.outstanding(2), mfc.outstanding(5))
        yield mfc.tag_group_quiet([2])
        observations["after_tag2"] = (mfc.outstanding(2), mfc.outstanding(5))
        yield mfc.tag_group_quiet([5])
        observations["after_both"] = (mfc.outstanding(2), mfc.outstanding(5))

    chip.env.process(issuer(chip.env))
    chip.run()
    assert observations["outstanding"] == (1, 1)
    assert observations["after_tag2"][0] == 0
    assert observations["after_both"] == (0, 0)


def test_tag_group_quiet_fires_immediately_when_empty(chip):
    mfc = chip.spe(0).mfc
    event = mfc.tag_group_quiet([0, 1, 2])
    assert event.triggered


def test_tag_group_quiet_rejects_unknown_tag(chip):
    with pytest.raises(CellError):
        chip.spe(0).mfc.tag_group_quiet([99])


def test_enqueue_rejects_non_commands(chip):
    with pytest.raises(CellError):
        list(chip.spe(0).mfc.enqueue("not a command"))


def test_ls_dma_with_itself_rejected(chip):
    mfc = chip.spe(0).mfc
    bad = ls_command(node="SPE0")

    def issuer(env):
        yield from mfc.enqueue(bad)

    chip.env.process(issuer(chip.env))
    with pytest.raises(CellError):
        chip.run()


def test_small_transfer_penalty_applies(config):
    def timed_run(size, n):
        chip = CellChip(config=config)
        mfc = chip.spe(0).mfc

        def issuer(env):
            for _ in range(n):
                yield from mfc.enqueue(ls_command(size=size))
            yield mfc.tag_group_quiet([0])

        chip.env.process(issuer(chip.env))
        chip.run()
        return chip.config.clock.gbps(size * n, chip.env.now)

    # 64 B transfers (legal but sub-packet) fall well below the 128 B
    # rate even after halving for the size itself.
    assert timed_run(64, 64) < timed_run(128, 64) * 0.6


def test_memory_pacer_limits_single_mfc(config):
    """A single MFC cannot exceed its outstanding-transaction window
    against memory, however many commands it queues."""
    chip = CellChip(config=config)
    mfc = chip.spe(0).mfc
    n, size = 128, 16384

    def issuer(env):
        for _ in range(n):
            yield from mfc.enqueue(mem_command(size=size))
        yield mfc.tag_group_quiet([0])

    chip.env.process(issuer(chip.env))
    chip.run()
    gbps = chip.config.clock.gbps(n * size, chip.env.now)
    cap = config.mfc.memory_path_bytes_per_cpu_cycle * config.clock.cpu_hz / 1e9
    assert gbps <= cap * 1.02
    assert gbps >= cap * 0.9


def test_list_occupies_single_queue_slot(chip):
    mfc = chip.spe(0).mfc
    dma_list = DmaList.uniform(
        DmaDirection.GET,
        TargetKind.LOCAL_STORE,
        element_size=1024,
        n_elements=64,
        remote_node="SPE1",
    )
    enqueue_done = []

    def issuer(env):
        yield from mfc.enqueue(dma_list)
        enqueue_done.append(env.now)
        # Queue accepts more immediately: only one slot is held.
        assert mfc.queue_free_slots == chip.config.mfc.queue_depth - 1
        yield mfc.tag_group_quiet([0])

    chip.env.process(issuer(chip.env))
    chip.run()
    assert mfc.bytes_transferred == 64 * 1024


def test_list_bursts_coalesce_small_elements(chip):
    mfc = chip.spe(0).mfc
    dma_list = DmaList.uniform(
        DmaDirection.GET,
        TargetKind.LOCAL_STORE,
        element_size=128,
        n_elements=33,
        remote_node="SPE1",
    )
    bursts = mfc._list_bursts(dma_list.elements)
    quantum = chip.config.eib.grant_quantum_bytes
    assert sum(count for count, _ in bursts) == 33
    assert sum(nbytes for _, nbytes in bursts) == 33 * 128
    assert all(nbytes <= quantum for _, nbytes in bursts)
    # 16 x 128 B fills one 2 KiB quantum.
    assert bursts[0] == (16, 2048)


def test_list_bursts_keep_large_elements_separate(chip):
    mfc = chip.spe(0).mfc
    dma_list = DmaList.uniform(
        DmaDirection.PUT,
        TargetKind.LOCAL_STORE,
        element_size=16384,
        n_elements=3,
        remote_node="SPE1",
    )
    bursts = mfc._list_bursts(dma_list.elements)
    assert bursts == [(1, 16384)] * 3


def test_mixed_tags_complete_out_of_order(chip):
    """A small transfer issued after a big one finishes first."""
    mfc = chip.spe(0).mfc
    finish = {}

    def issuer(env):
        yield from mfc.enqueue(ls_command(size=16384, tag=0))
        yield from mfc.enqueue(ls_command(size=128, tag=1, node="SPE2"))
        yield mfc.tag_group_quiet([1])
        finish["small"] = env.now
        yield mfc.tag_group_quiet([0])
        finish["big"] = env.now

    chip.env.process(issuer(chip.env))
    chip.run()
    assert finish["small"] < finish["big"]
