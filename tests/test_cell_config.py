"""Unit tests for the machine configuration."""

import dataclasses

import pytest

from repro.cell import CellConfig, ClockConfig, ConfigError, EibConfig, MfcConfig
from repro.cell.config import LocalStoreConfig, MemoryConfig, PpeConfig


def test_paper_blade_headline_rates():
    config = CellConfig.paper_blade()
    assert config.clock.cpu_hz == pytest.approx(2.1e9)
    assert config.clock.bus_hz == pytest.approx(1.05e9)
    assert config.eib_peak_gbps == pytest.approx(16.8)
    assert config.pair_peak_gbps == pytest.approx(33.6)
    assert config.local_store_peak_gbps == pytest.approx(33.6)
    assert config.memory_peak_gbps == pytest.approx(23.8)
    assert config.n_spes == 8


def test_couples_peak():
    config = CellConfig.paper_blade()
    assert config.couples_peak_gbps(2) == pytest.approx(33.6)
    assert config.couples_peak_gbps(8) == pytest.approx(134.4)
    with pytest.raises(ConfigError):
        config.couples_peak_gbps(3)


def test_node_rates():
    config = CellConfig.paper_blade()
    assert config.node_rate_bytes_per_cpu_cycle("SPE0") == pytest.approx(8.0)
    assert config.node_rate_bytes_per_cpu_cycle("MIC") == pytest.approx(8.0)
    ioif = config.node_rate_bytes_per_cpu_cycle("IOIF0")
    assert ioif * config.clock.cpu_hz == pytest.approx(7.0e9)


def test_clock_conversions():
    clock = ClockConfig()
    assert clock.cycles_to_seconds(2_100_000_000) == pytest.approx(1.0)
    assert clock.gbps(16_800_000_000, 2_100_000_000) == pytest.approx(16.8)
    with pytest.raises(ConfigError):
        clock.gbps(100, 0)


def test_clock_validation():
    with pytest.raises(ConfigError):
        ClockConfig(cpu_hz=0)
    with pytest.raises(ConfigError):
        ClockConfig(bus_divisor=0)


def test_eib_validation():
    with pytest.raises(ConfigError):
        EibConfig(rings_per_direction=0)
    with pytest.raises(ConfigError):
        EibConfig(grant_quantum_bytes=64)
    with pytest.raises(ConfigError):
        EibConfig(max_transfers_per_ring=0)


def test_mfc_validation():
    with pytest.raises(ConfigError):
        MfcConfig(queue_depth=0)
    with pytest.raises(ConfigError):
        MfcConfig(memory_path_bytes_per_cpu_cycle=0.0)


def test_memory_validation():
    with pytest.raises(ConfigError):
        MemoryConfig(local_placement_fraction=1.5)
    with pytest.raises(ConfigError):
        MemoryConfig(duplex_overlap_fraction=1.0)
    with pytest.raises(ConfigError):
        MemoryConfig(local_bank_peak_bytes_per_cpu_cycle=0)


def test_local_store_validation():
    with pytest.raises(ConfigError):
        LocalStoreConfig(size_bytes=100)


def test_config_replace_is_nondestructive():
    base = CellConfig.paper_blade()
    faster = base.replace(
        eib=dataclasses.replace(base.eib, grant_quantum_bytes=4096)
    )
    assert faster.eib.grant_quantum_bytes == 4096
    assert base.eib.grant_quantum_bytes == 2048


def test_config_is_frozen():
    config = CellConfig.paper_blade()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.n_spes = 4


def test_ppe_plateau_lookup():
    ppe = PpeConfig()
    assert ppe.plateau("l1", "load", 1) == pytest.approx(8.0)
    assert ppe.plateau("l2", "store", 2) > ppe.plateau("l2", "store", 1) * 0 + 0
    with pytest.raises(ConfigError):
        ppe.plateau("l1", "load", 3)
    with pytest.raises(ConfigError):
        ppe.plateau("l9", "load", 1)


def test_ppe_16b_bonus_defaults_to_one_for_loads():
    ppe = PpeConfig()
    assert ppe.bonus_16b("l1", "load", 1) == 1.0
    assert ppe.bonus_16b("l1", "store", 1) > 1.0


def test_describe_contains_headlines():
    summary = CellConfig.paper_blade().describe()
    assert summary["pair_peak_gbps"] == pytest.approx(33.6)
    assert summary["cpu_ghz"] == pytest.approx(2.1)


def test_n_spes_validation():
    with pytest.raises(ConfigError):
        CellConfig(n_spes=0)
