"""Property-based tests (hypothesis) on the core data structures.

Invariants exercised here:

* topology routing: path lengths, direction complements, span coverage;
* SPE mappings: seeded shuffles are permutations;
* local-store allocator: no overlap, alignment, capacity;
* DMA validation: accepts exactly the architectural size grammar;
* bandwidth statistics: order statistics behave like order statistics;
* the DES kernel: timeouts compose associatively, FIFO resources never
  exceed capacity;
* the EIB: byte conservation for arbitrary transfer plans;
* memory placement: the Bresenham stream respects its target fraction.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cell import CellChip, CellConfig
from repro.cell.dma import validate_transfer
from repro.cell.errors import DmaError, LocalStoreError
from repro.cell.local_store import LocalStore
from repro.cell.memory import MemorySystem
from repro.cell.topology import CLOCKWISE, COUNTERCLOCKWISE, RingTopology, SpeMapping
from repro.core.results import BandwidthSample, BandwidthStats
from repro.sim import Environment, Resource

topology = RingTopology()
NODES = st.sampled_from(topology.order)


@given(src=NODES, dst=NODES)
def test_path_lengths_complement(src, dst):
    if src == dst:
        return
    cw = topology.path(src, dst, CLOCKWISE)
    ccw = topology.path(src, dst, COUNTERCLOCKWISE)
    assert len(cw) + len(ccw) == len(topology)
    assert set(cw) | set(ccw) == set(range(len(topology)))
    assert set(cw).isdisjoint(ccw)


@given(src=NODES, dst=NODES)
def test_directions_by_distance_sorted_and_legal(src, dst):
    if src == dst:
        return
    directions = topology.directions_by_distance(src, dst)
    hops = [topology.hops(src, dst, d) for d in directions]
    assert hops == sorted(hops)
    assert all(h <= len(topology) // 2 for h in hops)


@given(seed=st.integers(min_value=0, max_value=10 ** 9))
def test_random_mapping_is_permutation(seed):
    mapping = SpeMapping.random(seed)
    assert sorted(mapping.physical_of) == list(range(8))
    nodes = {mapping.node(i) for i in range(8)}
    assert len(nodes) == 8


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=65536), min_size=1, max_size=30),
    aligns=st.lists(st.sampled_from([1, 2, 4, 8, 16, 64, 128]), min_size=30, max_size=30),
)
def test_local_store_allocations_never_overlap(sizes, aligns):
    ls = LocalStore()
    allocations = []
    for i, (size, align) in enumerate(zip(sizes, aligns, strict=False)):
        try:
            allocations.append(ls.alloc(size, name=f"a{i}", align=align))
        except LocalStoreError:
            break
    intervals = sorted((a.offset, a.end) for a in allocations)
    for (_start1, end1), (start2, _end2) in zip(intervals, intervals[1:], strict=False):
        assert end1 <= start2
    assert all(a.end <= ls.size for a in allocations)
    for a, align in zip(allocations, aligns, strict=False):
        assert a.offset % align == 0


@given(size=st.integers(min_value=-8, max_value=20000))
def test_dma_size_grammar(size):
    legal = size in (1, 2, 4, 8) or (size >= 16 and size % 16 == 0 and size <= 16384)
    try:
        validate_transfer(size, 0, 0)
        accepted = True
    except DmaError:
        accepted = False
    assert accepted == legal


@given(
    values=st.lists(
        st.floats(min_value=0.001, max_value=1000.0, allow_nan=False),
        min_size=1,
        max_size=50,
    )
)
def test_bandwidth_stats_are_order_statistics(values):
    samples = [BandwidthSample(gbps=v, nbytes=100, cycles=10) for v in values]
    stats = BandwidthStats.from_samples(samples)
    assert stats.minimum <= stats.median <= stats.maximum
    # fmean may differ from the extremes by a rounding ulp.
    eps = 1e-9 * max(abs(stats.maximum), 1.0)
    assert stats.minimum - eps <= stats.mean <= stats.maximum + eps
    assert stats.spread >= 0
    assert stats.n_samples == len(values)
    assert math.isclose(stats.mean, sum(values) / len(values), rel_tol=1e-9)


@given(delays=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=20))
def test_sequential_timeouts_sum(delays):
    env = Environment()
    log = []

    def proc(env):
        for delay in delays:
            yield env.timeout(delay)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [sum(delays)]


@given(
    capacity=st.integers(min_value=1, max_value=5),
    holds=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=15),
)
def test_resource_never_exceeds_capacity(capacity, holds):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    peak = []

    def user(env, hold):
        request = resource.request()
        yield request
        peak.append(resource.count)
        yield env.timeout(hold)
        resource.release(request)

    for hold in holds:
        env.process(user(env, hold))
    env.run()
    assert max(peak) <= capacity
    assert len(peak) == len(holds)
    assert resource.count == 0


@settings(max_examples=15, deadline=None)
@given(
    plan=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=1, max_value=8),
        ),
        min_size=1,
        max_size=6,
    )
)
def test_eib_conserves_bytes(plan):
    """Any set of concurrent transfers moves exactly its bytes, and the
    simulation always terminates."""
    chip = CellChip(config=CellConfig.paper_blade())
    total = 0
    for src, dst, kbytes in plan:
        if src == dst:
            continue
        nbytes = kbytes * 1024
        total += nbytes

        def mover(env, s=src, d=dst, n=nbytes):
            yield from chip.eib.transfer(f"SPE{s}", f"SPE{d}", n)

        chip.env.process(mover(chip.env))
    chip.run()
    assert chip.eib.bytes_moved == total


@settings(max_examples=20, deadline=None)
@given(
    fraction=st.floats(min_value=0.05, max_value=0.95),
    n=st.integers(min_value=50, max_value=400),
)
def test_memory_placement_tracks_fraction(fraction, n):
    import dataclasses

    base = CellConfig.paper_blade()
    config = base.replace(
        memory=dataclasses.replace(base.memory, local_placement_fraction=fraction)
    )
    system = MemorySystem(Environment(), config)
    local = sum(
        1 for _ in range(n) if system.assign_bank("SPE0") is system.local_bank
    )
    assert abs(local / n - fraction) <= 1.0 / n + 0.02
