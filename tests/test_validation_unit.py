"""Unit tests for the validation layer using synthetic results.

The paper-shape integration tests exercise validation against real
simulations; these tests pin down the *checking logic itself* with
hand-built tables, including the failure paths a healthy run never hits.
"""

import pytest

from repro.core.experiment import ExperimentResult
from repro.core.report import format_series_chart
from repro.core.results import BandwidthSample, BandwidthStats, SweepTable
from repro.core import validation
from repro.core.spe_pairs import SYNC_AFTER_ALL


def stats(*values):
    return BandwidthStats.from_samples(
        [BandwidthSample(gbps=v, nbytes=1024, cycles=10) for v in values]
    )


def memory_result(one=10.0, two=20.0, four=21.0, eight=19.0, copy_scale=1.1):
    result = ExperimentResult(name="synthetic-fig8", description="")
    for direction, factor in (("get", 1.0), ("put", 1.0), ("copy", copy_scale)):
        table = SweepTable(name=direction, axes=("n_spes", "element_bytes"))
        for n, value in ((1, one), (2, two), (4, four), (8, eight)):
            scaled = value * factor if n > 1 else value
            table.put((n, 16384), stats(scaled))
        result.tables[direction] = table
    return result


class TestCheckSpeMemory:
    def test_healthy_run_passes(self):
        checks = validation.check_spe_memory(memory_result())
        assert all(check.passed for check in checks)

    def test_missing_drop_at_8_fails(self):
        checks = validation.check_spe_memory(memory_result(eight=25.0))
        failed = {check.claim_id for check in checks if not check.passed}
        assert "fig8-drop-at-8" in failed

    def test_single_spe_too_fast_fails(self):
        checks = validation.check_spe_memory(memory_result(one=16.0))
        failed = {check.claim_id for check in checks if not check.passed}
        assert "fig8-one-spe" in failed


class TestCheckPairSync:
    def build(self, delayed_16k=31.0, delayed_1k=30.0, delayed_512=15.0,
              eager_4k=25.0, delayed_4k=31.0):
        result = ExperimentResult(name="synthetic-fig10", description="")
        table = SweepTable(name="sync", axes=("sync_every", "element_bytes"))
        table.put((SYNC_AFTER_ALL, 16384), stats(delayed_16k))
        table.put((SYNC_AFTER_ALL, 1024), stats(delayed_1k))
        table.put((SYNC_AFTER_ALL, 512), stats(delayed_512))
        table.put((SYNC_AFTER_ALL, 4096), stats(delayed_4k))
        table.put((1, 4096), stats(eager_4k))
        result.tables["sync"] = table
        return result

    def test_healthy_run_passes(self):
        checks = validation.check_pair_sync(self.build())
        assert all(check.passed for check in checks)

    def test_no_sync_benefit_fails(self):
        checks = validation.check_pair_sync(self.build(eager_4k=31.0))
        failed = {check.claim_id for check in checks if not check.passed}
        assert "fig10-sync-costs" in failed

    def test_no_small_element_degradation_fails(self):
        checks = validation.check_pair_sync(self.build(delayed_512=30.0))
        failed = {check.claim_id for check in checks if not check.passed}
        assert "fig10-degraded-512" in failed


class TestClaimCheckRendering:
    def test_str_marks_pass_and_fail(self):
        passing = validation.ClaimCheck(
            claim_id="a", description="d", observed=1.0,
            expected_low=0.0, expected_high=2.0, passed=True,
        )
        failing = validation.ClaimCheck(
            claim_id="b", description="d", observed=5.0,
            expected_low=0.0, expected_high=2.0, passed=False,
        )
        assert "[ok ]" in str(passing)
        assert "[FAIL]" in str(failing)
        summary = validation.summarize([passing, failing])
        assert "1/2 claims reproduced" in summary


class TestSeriesChart:
    def test_chart_renders_bars_and_scale(self):
        table = SweepTable(name="demo", axes=("n_spes", "element_bytes"))
        for element, value in ((128, 5.0), (16384, 30.0)):
            table.put((2, element), stats(value))
        chart = format_series_chart(
            table,
            axis="element_bytes",
            series_fixed=[("2 SPEs", {"n_spes": 2})],
            peak=33.6,
            width=30,
        )
        assert "full bar = 33.6" in chart
        assert "#" in chart
        # The 16 KiB bar is much longer than the 128 B bar.
        lines = [line for line in chart.splitlines() if "|" in line]
        assert lines[1].count("#") > 4 * lines[0].count("#")

    def test_chart_validates_inputs(self):
        table = SweepTable(name="demo", axes=("n_spes",))
        table.put((2,), stats(5.0))
        with pytest.raises(ValueError):
            format_series_chart(
                table, axis="n_spes", series_fixed=[("x", {})], peak=0.0
            )
        with pytest.raises(ValueError):
            format_series_chart(
                table, axis="n_spes", series_fixed=[("x", {"n_spes": 99})]
            )
