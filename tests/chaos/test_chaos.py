"""Chaos tests: the run-execution stack under crashes, hangs and rot.

Every scenario asserts the repo's standing discipline from the other
side: not "does the feature work" but "after the worst happens, is
every surviving byte identical to a clean serial run".
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import textwrap
import time

import pytest

import repro
from repro.core.cache import QUARANTINE_DIR, ResultCache
from repro.runtime.journal import SweepJournal
from repro.runtime.parallel import SweepExecutor
from repro.runtime.resilience import HostRetryPolicy

from tests.chaos.targets import chaos_target, flip_bytes
from tests.test_parallel_and_cache import make_spec

SEEDS = tuple(range(1000, 1006))


def clean_samples(specs):
    with SweepExecutor(jobs=1) as executor:
        return executor.samples(list(specs))


@pytest.fixture
def specs():
    return [make_spec(seed, n_elements=8, n_spes=1) for seed in SEEDS]


class TestWorkerLoss:
    def test_sigkilled_worker_is_redispatched_results_exact(self, specs, tmp_path):
        """A worker SIGKILLed mid-repetition (the OOM shape) is detected
        by the pid watch, the casualty re-dispatched, and the final
        samples are byte-for-byte the clean serial run's."""
        expected = clean_samples(specs)
        target = chaos_target(tmp_path, kill_seeds=(1002,))
        policy = HostRetryPolicy(timeout_s=60.0, retries=2)
        with SweepExecutor(jobs=2, policy=policy, target=target) as executor:
            got = executor.samples(list(specs))
        assert got == expected
        assert executor.retried >= 1

    def test_kill_without_retries_reports_structured_failure(self, specs, tmp_path):
        """retries=0 + partial_results: the sweep still returns every
        completed cell, with the casualty as a None hole and a
        SpecFailure naming the seed."""
        expected = clean_samples(specs)
        target = chaos_target(tmp_path, kill_seeds=(1001,), flaky=False)
        policy = HostRetryPolicy(timeout_s=30.0, retries=0)
        with SweepExecutor(jobs=2, policy=policy, target=target,
                           partial_results=True) as executor:
            got = executor.samples(list(specs))
        assert executor.failures, "the lost repetition must be reported"
        assert all(failure.seed == 1001 for failure in executor.failures)
        for index, seed in enumerate(SEEDS):
            if seed == 1001:
                assert got[index] is None
            else:
                assert got[index] == expected[index]


class TestHangs:
    def test_hung_worker_times_out_and_is_replaced(self, specs, tmp_path):
        """A worker that sleeps forever is cut off by the per-run
        timeout; the pool is rebuilt and the repetition retried."""
        expected = clean_samples(specs)
        target = chaos_target(tmp_path, hang_seeds=(1003,))
        policy = HostRetryPolicy(timeout_s=3.0, retries=2)
        start = time.monotonic()
        with SweepExecutor(jobs=2, policy=policy, target=target) as executor:
            got = executor.samples(list(specs))
        assert got == expected
        assert executor.retried >= 1
        # The hang was bounded by the timeout, not by HANG_S.
        assert time.monotonic() - start < 120


class TestCacheRot:
    def test_bit_flipped_cache_entries_self_heal(self, specs, tmp_path):
        """Bit-flip every cache entry: the warm run quarantines them
        all, re-simulates, and matches the cold run exactly."""
        cache_dir = str(tmp_path / "cache")
        with SweepExecutor(jobs=1, cache=ResultCache(cache_dir)) as cold:
            expected = cold.samples(list(specs))
        rng = random.Random(7)
        entries = [
            os.path.join(dirpath, name)
            for dirpath, _dirnames, names in os.walk(cache_dir)
            if QUARANTINE_DIR not in dirpath
            for name in names if name.endswith(".json")
        ]
        assert len(entries) == len(specs)
        for path in entries:
            flip_bytes(path, offset=rng.randrange(8, 40))
        warm_cache = ResultCache(cache_dir)
        with SweepExecutor(jobs=1, cache=warm_cache) as warm:
            got = warm.samples(list(specs))
        assert got == expected
        assert warm_cache.corrupt == len(specs)
        assert warm.simulated == len(specs)
        quarantined = os.listdir(os.path.join(cache_dir, QUARANTINE_DIR))
        assert len(quarantined) == len(specs)
        # And the store healed: a third run is all hits again.
        third_cache = ResultCache(cache_dir)
        with SweepExecutor(jobs=1, cache=third_cache) as third:
            assert third.samples(list(specs)) == expected
        assert third.simulated == 0 and third_cache.hits == len(specs)


class TestChaosStorm:
    def test_storm_then_resume_completes_byte_identical(self, specs, tmp_path):
        """The harness showpiece: seeded-random kills, hangs and errors
        with partial results and a journal; a second, calm run over the
        same journal completes the remainder.  Union of both runs ==
        the clean serial run, byte for byte."""
        expected = clean_samples(specs)
        rng = random.Random(20260808)
        victims = rng.sample(SEEDS, 3)
        target = chaos_target(
            tmp_path,
            kill_seeds=(victims[0],),
            hang_seeds=(victims[1],),
            raise_seeds=(victims[2],),
            flaky=False,  # misbehave every attempt: force real failures
        )
        journal_path = str(tmp_path / "journal.jsonl")
        policy = HostRetryPolicy(timeout_s=3.0, retries=1)
        with SweepExecutor(jobs=2, policy=policy, target=target,
                           partial_results=True,
                           journal=journal_path) as stormy:
            first = stormy.samples(list(specs))
        assert len(stormy.failures) == 3
        survivors = [sample for sample in first if sample is not None]
        assert len(survivors) == len(specs) - 3
        # Calm follow-up over the same journal: only the casualties run.
        with SweepExecutor(jobs=2, journal=journal_path) as calm:
            final = calm.samples(list(specs))
        assert final == expected
        assert calm.journal_hits == len(specs) - 3
        assert calm.simulated == 3


class TestCliResume:
    def test_reproduce_resume_after_sigkill_matches_clean(self, tmp_path):
        """SIGKILL the whole reproduce process mid-sweep; a --resume
        re-run must complete and write report files byte-identical to
        an uninterrupted run (the acceptance criterion)."""
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        driver = tmp_path / "driver.py"
        driver.write_text(textwrap.dedent(
            """
            import sys
            from repro import reproduce
            # Shrink the quick preset: enough cells that a 2 s SIGKILL
            # lands mid-sweep, small enough to finish fast.
            reproduce.PRESETS["quick"] = ((16384,), 2, 2 ** 20)
            sys.exit(reproduce.main(sys.argv[1:]))
            """
        ))
        env = {**os.environ, "PYTHONPATH": src}

        def run(outdir, *extra, check_done=True):
            proc = subprocess.run(
                [sys.executable, str(driver), "--quick", "--no-cache",
                 "--jobs", "1", "--outdir", str(outdir), *extra],
                env=env, cwd=str(tmp_path), capture_output=True, text=True,
                timeout=600,
            )
            if check_done:
                assert proc.returncode in (0, 1), proc.stderr
            return proc

        clean = run(tmp_path / "clean")

        interrupted = subprocess.Popen(
            [sys.executable, str(driver), "--quick", "--no-cache",
             "--jobs", "1", "--outdir", str(tmp_path / "resumed"),
             "--resume"],
            env=env, cwd=str(tmp_path),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        time.sleep(2.0)
        interrupted.send_signal(signal.SIGKILL)
        interrupted.wait(timeout=60)

        journal = tmp_path / "resumed" / "sweep-journal.jsonl"
        resumed = run(tmp_path / "resumed", "--resume")
        assert resumed.returncode == clean.returncode

        def tree(outdir):
            out = {}
            for dirpath, _dirnames, names in os.walk(outdir):
                for name in names:
                    if name == "sweep-journal.jsonl":
                        continue
                    path = os.path.join(dirpath, name)
                    with open(path, "rb") as handle:
                        out[os.path.relpath(path, outdir)] = handle.read()
            return out

        clean_tree = tree(tmp_path / "clean")
        assert clean_tree, "the clean run must have written reports"
        assert tree(tmp_path / "resumed") == clean_tree
        # The journal recorded completions as valid JSONL (a truncated
        # tail from the SIGKILL is legal and skipped on load).
        if journal.exists():
            replay = SweepJournal(str(journal))
            assert replay.loaded == len(replay)
            with open(journal) as handle:
                complete_lines = [
                    line for line in handle.read().splitlines() if line
                ]
            for line in complete_lines[:-1]:
                json.loads(line)
