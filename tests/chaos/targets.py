"""Picklable chaos targets: ``run_spec`` wrappers that misbehave on cue.

A :class:`~repro.runtime.parallel.SweepExecutor` accepts a ``target``
callable in place of :func:`~repro.core.experiment.run_spec`; these
wrappers are that hook.  They are module-level functions partially
applied with keyword arguments, so the pool can pickle them, and they
key their misbehaviour on the spec's seed:

* ``kill_seeds`` — the worker SIGKILLs itself (an OOM-killer stand-in);
* ``hang_seeds`` — the worker sleeps far past any test timeout;
* ``raise_seeds`` — the worker raises a RuntimeError;
* ``flaky`` (default True) — misbehave only on the *first* encounter of
  a seed, tracked by marker files in ``marker_dir`` (markers live on
  disk because the encounter happens in a different process each time);
  with ``flaky=False`` the seed misbehaves on every attempt, which is
  how the exhausted-retries paths are exercised.

The wrapper runs the real :func:`run_spec` for every seed it leaves
alone, so surviving samples are exactly the clean run's samples.
"""

from __future__ import annotations

import functools
import os
import signal
import time

from repro.core.experiment import run_spec

#: Longer than any executor timeout a test configures, shorter than CI's
#: per-test watchdog would tolerate leaking (the pool is terminated when
#: the hang is detected, which ends the sleep early).
HANG_S = 600.0


def chaos_run_spec(spec, marker_dir, kill_seeds=(), hang_seeds=(),
                   raise_seeds=(), flaky=True):
    first = True
    if flaky:
        marker = os.path.join(marker_dir, f"chaos-{spec.seed}")
        first = not os.path.exists(marker)
        if first:
            with open(marker, "w") as handle:
                handle.write(str(os.getpid()))
    armed = first or not flaky
    if armed and spec.seed in kill_seeds:
        os.kill(os.getpid(), signal.SIGKILL)
    if armed and spec.seed in hang_seeds:
        time.sleep(HANG_S)
    if armed and spec.seed in raise_seeds:
        raise RuntimeError(f"chaos: injected failure for seed {spec.seed}")
    return run_spec(spec)


def chaos_target(marker_dir, **kwargs):
    """A picklable executor ``target`` over :func:`chaos_run_spec`."""
    return functools.partial(chaos_run_spec, marker_dir=str(marker_dir), **kwargs)


def flip_bytes(path, offset=16, count=4):
    """Corrupt a file in place: overwrite ``count`` bytes at ``offset``
    (clamped into the file) with values that cannot be valid JSON."""
    size = os.path.getsize(path)
    offset = min(offset, max(0, size - count))
    with open(path, "r+b") as handle:
        handle.seek(offset)
        handle.write(b"\xff" * count)
