"""Chaos harness: crash, hang and corruption injection for the host
execution stack (sweep executor, journal, result cache).

Everything here is off-by-default tooling — the production modules
contain no chaos hooks; the tests inject misbehaviour through the
executor's documented ``target`` override and by corrupting on-disk
state directly.  The invariant every test asserts is the repo-wide
one: whatever survives the chaos is byte-identical to a clean serial
run.
"""
