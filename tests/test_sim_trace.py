"""Tests for the structured tracing subsystem (repro.sim.trace)."""

import json

import pytest

from repro.cell.chip import CellChip
from repro.cell.topology import SpeMapping
from repro.core.kernels import DmaWorkload, dma_stream_kernel
from repro.libspe import SpeContext
from repro.sim import (
    NULL_TRACE,
    Environment,
    TraceRecorder,
    TraceSummary,
    records_from_chrome,
    to_chrome_trace,
)
from repro.sim.trace import (
    BankActivate,
    BankTurnaround,
    EibGrant,
    EibRelease,
    EibTransfer,
    EibWait,
    MfcComplete,
    MfcEnqueue,
    MfcIssue,
    ProcessResume,
    ProcessTerminate,
)


def run_traced_chip(seed=7, n_elements=32):
    """A mixed workload exercising every record type: memory streams on
    SPE 0-1, an LS-to-LS couple on SPEs 2/3."""
    recorder = TraceRecorder()
    chip = CellChip(mapping=SpeMapping.random(seed, 8), trace=recorder)
    for logical in (0, 1):
        workload = DmaWorkload(
            direction="get", element_bytes=4096, n_elements=n_elements
        )
        SpeContext(chip, logical).load(dma_stream_kernel, workload, {}, None)
    workload = DmaWorkload(
        direction="copy",
        element_bytes=16384,
        n_elements=n_elements,
        partner_logical=3,
    )
    SpeContext(chip, 2).load(dma_stream_kernel, workload, {}, chip.spe(3))
    chip.run()
    return chip, recorder


class TestRecorder:
    def test_environment_defaults_to_null_trace(self):
        env = Environment()
        assert env.trace is NULL_TRACE
        assert not env.trace.enabled
        assert len(env.trace) == 0

    def test_untraced_chip_emits_nothing(self):
        chip = CellChip()
        assert chip.trace is NULL_TRACE

        def proc(env):
            yield env.timeout(5)

        chip.env.process(proc(chip.env))
        chip.run()
        assert chip.trace.records == []

    def test_ring_buffer_drops_oldest(self):
        recorder = TraceRecorder(capacity=3)
        for i in range(5):
            recorder.emit(ProcessResume(ts=i, proc_id=i, name="p"))
        assert len(recorder) == 3
        assert recorder.dropped == 2
        assert [r.ts for r in recorder.records] == [2, 3, 4]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_clear(self):
        recorder = TraceRecorder(capacity=2)
        for i in range(4):
            recorder.emit(ProcessResume(ts=i, proc_id=i, name="p"))
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.dropped == 0


class TestEmission:
    def test_every_record_type_fires_on_a_mixed_run(self):
        _chip, recorder = run_traced_chip()
        kinds = {type(record) for record in recorder.records}
        assert {
            ProcessResume,
            ProcessTerminate,
            EibGrant,
            EibWait,
            EibRelease,
            EibTransfer,
            MfcEnqueue,
            MfcIssue,
            MfcComplete,
            BankActivate,
            BankTurnaround,
        } <= kinds

    def test_process_records_carry_generator_names(self):
        env = Environment(trace=TraceRecorder())

        def worker(env):
            yield env.timeout(2)

        env.process(worker(env))
        env.run()
        resumes = [r for r in env.trace.records if isinstance(r, ProcessResume)]
        assert resumes and all(r.name == "worker" for r in resumes)
        ends = [r for r in env.trace.records if isinstance(r, ProcessTerminate)]
        assert [r.ok for r in ends] == [True]

    def test_failed_process_records_not_ok(self):
        env = Environment(trace=TraceRecorder())

        def bad(env):
            yield env.timeout(1)
            raise RuntimeError("boom")

        env.process(bad(env))
        with pytest.raises(RuntimeError):
            env.run()
        ends = [r for r in env.trace.records if isinstance(r, ProcessTerminate)]
        assert [r.ok for r in ends] == [False]


class TestSummary:
    def test_counters_reproduce_live_eib_counters_exactly(self):
        chip, recorder = run_traced_chip()
        counters = TraceSummary(recorder.records).counters()
        assert counters == {
            "grants": chip.eib.grants,
            "conflicts": chip.eib.conflicts,
            "wait_cycles": chip.eib.wait_cycles,
            "bytes_moved": chip.eib.bytes_moved,
        }
        assert counters["bytes_moved"] > 0

    def test_per_ring_totals_match_counters(self):
        _chip, recorder = run_traced_chip()
        summary = TraceSummary(recorder.records)
        per_ring = summary.per_ring()
        counters = summary.counters()
        assert sum(r["grants"] for r in per_ring.values()) == counters["grants"]
        assert (
            sum(r["conflicts"] for r in per_ring.values()) == counters["conflicts"]
        )

    def test_release_bytes_equal_transfer_bytes(self):
        # Chunks (releases) and whole transfers account the same bytes.
        _chip, recorder = run_traced_chip()
        summary = TraceSummary(recorder.records)
        released = sum(
            r.nbytes for r in recorder.records if isinstance(r, EibRelease)
        )
        assert released == summary.counters()["bytes_moved"]

    def test_per_flow_bytes_sum_to_bytes_moved(self):
        _chip, recorder = run_traced_chip()
        summary = TraceSummary(recorder.records)
        flows = summary.per_flow()
        assert (
            sum(row["bytes"] for row in flows.values())
            == summary.counters()["bytes_moved"]
        )

    def test_flow_timeline_buckets_sum_and_are_contiguous(self):
        _chip, recorder = run_traced_chip()
        summary = TraceSummary(recorder.records)
        interval = 10_000
        timelines = summary.flow_timeline(interval)
        flows = summary.per_flow()
        for flow_key, buckets in timelines.items():
            assert sum(b for _t, b in buckets) == flows[flow_key]["bytes"]
            times = [t for t, _b in buckets]
            assert times == list(
                range(times[0], times[-1] + interval, interval)
            )

    def test_flow_timeline_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            TraceSummary([]).flow_timeline(0)

    def test_bank_stats_match_live_bank_counters(self):
        chip, recorder = run_traced_chip()
        banks = TraceSummary(recorder.records).bank_stats()
        for bank in chip.memory.banks:
            if bank.commands_served:
                assert banks[bank.name]["commands"] == bank.commands_served
                assert banks[bank.name]["bytes"] == bank.bytes_served

    def test_mfc_stats_match_live_mfc_counters(self):
        chip, recorder = run_traced_chip()
        nodes = TraceSummary(recorder.records).mfc_stats()
        for spe in chip.spes:
            if spe.mfc.commands_completed:
                assert (
                    nodes[spe.node]["completed"] == spe.mfc.commands_completed
                )

    def test_empty_summary(self):
        summary = TraceSummary([])
        assert summary.duration == 0
        assert summary.counters() == {
            "grants": 0,
            "conflicts": 0,
            "wait_cycles": 0,
            "bytes_moved": 0,
        }
        assert summary.per_ring() == {}
        assert summary.per_flow() == {}


class TestChromeExport:
    def test_round_trip_preserves_records(self):
        _chip, recorder = run_traced_chip(n_elements=8)
        trace = to_chrome_trace(recorder.records, cpu_hz=2.1e9)
        assert records_from_chrome(trace) == recorder.records

    def test_json_serialisable_and_structured(self):
        _chip, recorder = run_traced_chip(n_elements=8)
        trace = to_chrome_trace(recorder.records, cpu_hz=2.1e9)
        encoded = json.dumps(trace)
        decoded = json.loads(encoded)
        events = decoded["traceEvents"]
        assert events, "no events exported"
        legal_phases = {"M", "i", "X", "b", "e"}
        for event in events:
            assert event["ph"] in legal_phases
            assert isinstance(event["pid"], int)
            if event["ph"] != "M":
                assert event["ts"] >= 0
        begins = [e for e in events if e["ph"] == "b"]
        ends = [e for e in events if e["ph"] == "e"]
        assert len(begins) == len(ends)
        # async pairs carry matching ids and categories
        assert {e["id"] for e in begins} == {e["id"] for e in ends}
        # round-trip survives JSON encoding too
        assert records_from_chrome(decoded) == recorder.records

    def test_metadata_rides_in_other_data(self):
        trace = to_chrome_trace([], cpu_hz=1e9, metadata={"counters": {"x": 1}})
        assert trace["otherData"]["counters"] == {"x": 1}
        assert trace["otherData"]["cpu_hz"] == 1e9

    def test_unknown_kind_rejected(self):
        trace = {"traceEvents": [{"ph": "i", "args": {"kind": "no.such"}}]}
        with pytest.raises(ValueError):
            records_from_chrome(trace)

    def test_non_trace_json_rejected(self):
        with pytest.raises(ValueError, match="traceEvents"):
            records_from_chrome({"hello": 1})


class TestDeterminism:
    def test_same_seed_runs_are_byte_identical(self):
        """Two runs of the same experiment with the same seed must
        produce identical counters AND identical trace record streams —
        the regression guard for any nondeterminism creeping into the
        kernel or the models."""
        chip_a, recorder_a = run_traced_chip(seed=11)
        chip_b, recorder_b = run_traced_chip(seed=11)
        assert chip_a.eib.bytes_moved == chip_b.eib.bytes_moved
        assert chip_a.eib.wait_cycles == chip_b.eib.wait_cycles
        assert chip_a.eib.grants == chip_b.eib.grants
        assert recorder_a.records == recorder_b.records

    def test_different_seed_runs_differ(self):
        # Placement changes the stream; guards against the determinism
        # test passing vacuously.
        _a, recorder_a = run_traced_chip(seed=11)
        _b, recorder_b = run_traced_chip(seed=12)
        assert recorder_a.records != recorder_b.records

    def test_tracing_does_not_change_results(self):
        """The recorder must be an observer: identical counters with
        tracing on and off."""

        def run(trace):
            recorder = TraceRecorder() if trace else None
            chip = CellChip(mapping=SpeMapping.random(5, 8), trace=recorder)
            workload = DmaWorkload(
                direction="copy",
                element_bytes=16384,
                n_elements=16,
                partner_logical=1,
            )
            SpeContext(chip, 0).load(dma_stream_kernel, workload, {}, chip.spe(1))
            chip.run()
            return (
                chip.env.now,
                chip.eib.grants,
                chip.eib.conflicts,
                chip.eib.wait_cycles,
                chip.eib.bytes_moved,
            )

        assert run(trace=True) == run(trace=False)
