"""Regression tests for DES-kernel event-lifecycle bugs.

Three silent-corruption bugs fixed together with the tracing subsystem:

* ``AnyOf([])`` deadlocked the yielding process instead of succeeding
  immediately (``AllOf([])`` already succeeded immediately);
* interrupting a process that yielded an *already-triggered* event
  resumed its generator twice — once with the Interrupt and once with
  the stale value — because the internal relay event was not tracked in
  ``_waiting_on``;
* a ``Container`` get/put larger than the capacity queued forever.
"""

import contextlib

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Container,
    Environment,
    Interrupt,
)


class TestEmptyConditions:
    def test_any_of_empty_succeeds_immediately(self):
        env = Environment()
        condition = env.any_of([])
        assert condition.triggered
        assert condition.ok
        assert condition.value == []

    def test_all_of_empty_still_succeeds_immediately(self):
        env = Environment()
        condition = env.all_of([])
        assert condition.triggered
        assert condition.value == []

    def test_process_yielding_empty_any_of_resumes_at_current_time(self):
        env = Environment()
        log = []

        def proc(env):
            yield env.timeout(7)
            values = yield env.any_of([])
            log.append((env.now, values))

        env.process(proc(env))
        env.run()
        assert log == [(7, [])]

    def test_empty_any_of_matches_empty_all_of(self):
        env = Environment()
        assert env.any_of([]).value == env.all_of([]).value == []

    def test_non_empty_any_of_unchanged(self):
        env = Environment()
        results = []

        def proc(env):
            values = yield AnyOf(env, [env.timeout(5, value="v")])
            results.append((env.now, values))

        env.process(proc(env))
        env.run()
        assert results == [(5, ["v"])]


class TestInterruptPretriggeredEvent:
    def test_exactly_one_interrupt_no_stale_resume(self):
        """Interrupting a process waiting on an already-triggered event
        must deliver exactly one Interrupt — the stale value of the
        original event must never be sent into the generator."""
        env = Environment()
        log = []

        def victim(env):
            event = env.event()
            event.succeed("stale")
            try:
                yield event
                log.append("resumed with stale value")
            except Interrupt as interrupt:
                log.append(("interrupted", interrupt.cause, env.now))
            yield env.timeout(5)
            log.append(("done", env.now))

        def interrupter(env, proc):
            proc.interrupt("wake")
            return
            yield  # pragma: no cover - makes this a generator

        proc = env.process(victim(env))
        env.process(interrupter(env, proc))
        env.run()
        assert log == [("interrupted", "wake", 0), ("done", 5)]

    def test_interrupted_process_can_wait_again_without_ghost_wakeup(self):
        """After the fix the detached relay must not fire later and
        corrupt a subsequent wait."""
        env = Environment()
        log = []

        def victim(env):
            event = env.event()
            event.succeed(123)
            with contextlib.suppress(Interrupt):
                yield event
            # The detached relay is still in the queue; this timeout must
            # be woken exactly once, by the clock.
            value = yield env.timeout(10, value="clock")
            log.append((env.now, value))

        def interrupter(env, proc):
            proc.interrupt()
            return
            yield  # pragma: no cover

        proc = env.process(victim(env))
        env.process(interrupter(env, proc))
        env.run()
        assert log == [(10, "clock")]

    def test_normal_pretriggered_wait_still_delivers_value(self):
        env = Environment()
        seen = []

        def proc(env):
            event = env.event()
            event.succeed("early")
            seen.append((yield event))

        env.process(proc(env))
        env.run()
        assert seen == ["early"]

    def test_interrupt_while_pending_wait_unchanged(self):
        env = Environment()
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                log.append((env.now, interrupt.cause))

        def interrupter(env, proc):
            yield env.timeout(3)
            proc.interrupt("早い")

        proc = env.process(sleeper(env))
        env.process(interrupter(env, proc))
        env.run()
        assert log == [(3, "早い")]


class TestContainerImpossibleRequests:
    def test_get_beyond_capacity_raises(self):
        env = Environment()
        container = Container(env, capacity=10, init=10)
        with pytest.raises(ValueError, match="exceeds capacity"):
            container.get(11)

    def test_put_beyond_capacity_raises(self):
        env = Environment()
        container = Container(env, capacity=10)
        with pytest.raises(ValueError, match="exceeds capacity"):
            container.put(10.5)

    def test_rejected_request_leaves_no_queued_waiter(self):
        env = Environment()
        container = Container(env, capacity=10, init=5)
        with pytest.raises(ValueError):
            container.get(11)
        # A subsequent legal get is served normally (nothing stuck ahead).
        event = container.get(5)
        assert event.triggered
        assert container.level == 0

    def test_boundary_amounts_still_block_and_serve(self):
        env = Environment()
        container = Container(env, capacity=10)
        got = container.get(10)   # legal: waits for a full container
        assert not got.triggered
        container.put(10)
        env.run()
        assert got.triggered
        assert container.level == 0
