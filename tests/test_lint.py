"""simlint: one positive and one negative fixture per rule, engine
behaviour (selection, classification, callable linting) and the CLI
contract (diagnostics format, exit codes)."""

import json

import pytest

from repro.analysis.lint import (
    LintError,
    RULES,
    Severity,
    lint_callable,
    lint_paths,
    lint_source,
    select_rules,
)
from repro.lint import main as lint_main


def rule_ids(findings):
    return [finding.rule for finding in findings]


def lint_only(source, rule_id):
    return lint_source(source, rules=select_rules([rule_id]))


# ---------------------------------------------------------------------------
# SL101: local-store data consumed before its GET landed
# ---------------------------------------------------------------------------

def test_sl101_fires_on_compute_before_wait():
    source = """
def program(spu):
    yield from spu.mfc_get(size=4096, tag=3)
    yield spu.compute(100)
    yield from spu.wait_tags([3])
"""
    findings = lint_only(source, "SL101")
    assert rule_ids(findings) == ["SL101"]
    assert "tag group(s) {3}" in findings[0].message


def test_sl101_clean_when_waited_first():
    source = """
def program(spu):
    yield from spu.mfc_get(size=4096, tag=3)
    yield from spu.wait_tags([3])
    yield spu.compute(100)
"""
    assert lint_only(source, "SL101") == []


def test_sl101_put_does_not_dirty_reads():
    # PUT reads the LS; computing while a PUT is in flight is fine.
    source = """
def program(spu):
    yield from spu.mfc_put(size=4096, tag=1)
    yield spu.compute(100)
    yield from spu.wait_tags([1])
"""
    assert lint_only(source, "SL101") == []


def test_sl101_branch_dirtiness_is_unioned():
    source = """
def program(spu, fast):
    if fast:
        yield from spu.mfc_get(size=4096, tag=0)
    else:
        yield from spu.wait_tags([0])
    yield spu.compute(10)
    yield from spu.wait_tags([0])
"""
    assert rule_ids(lint_only(source, "SL101")) == ["SL101"]


def test_sl101_unknown_wait_clears_everything():
    source = """
def program(spu, tags):
    yield from spu.mfc_get(size=4096, tag=0)
    yield from spu.wait_tags(tags)
    yield spu.compute(10)
"""
    assert lint_only(source, "SL101") == []


# ---------------------------------------------------------------------------
# SL102: program can return with DMA in flight
# ---------------------------------------------------------------------------

def test_sl102_fires_on_missing_final_wait():
    source = """
def program(spu, out):
    yield from spu.mfc_get(size=4096, tag=0)
    out["done"] = True
"""
    findings = lint_only(source, "SL102")
    assert rule_ids(findings) == ["SL102"]
    assert "'program'" in findings[0].message


def test_sl102_clean_with_final_wait():
    source = """
def program(spu, out):
    yield from spu.mfc_get(size=4096, tag=0)
    yield from spu.wait_tags([0])
"""
    assert lint_only(source, "SL102") == []


def test_sl102_helpers_exempt():
    # A leading-underscore helper's caller owns the synchronisation
    # (the shape of repro.core.kernels._elem_loop).
    source = """
def _issue(spu, n):
    for _ in range(n):
        yield from spu.mfc_get(size=4096, tag=0)
"""
    assert lint_only(source, "SL102") == []


# ---------------------------------------------------------------------------
# SL201: zero-time livelock loops
# ---------------------------------------------------------------------------

def test_sl201_fires_on_yieldless_while_true():
    source = """
def server(env):
    yield env.timeout(1)
    while True:
        env.poll()
"""
    findings = lint_only(source, "SL201")
    assert rule_ids(findings) == ["SL201"]
    assert "livelock" in findings[0].message


def test_sl201_fires_on_unchanging_test():
    source = """
def server(env, n):
    yield env.timeout(1)
    while n < 10:
        x = 1
"""
    assert rule_ids(lint_only(source, "SL201")) == ["SL201"]


def test_sl201_fires_on_infinite_for():
    source = """
import itertools

def server(env):
    yield env.timeout(1)
    for _ in itertools.count():
        pass
"""
    assert rule_ids(lint_only(source, "SL201")) == ["SL201"]


def test_sl201_clean_when_loop_yields_breaks_or_mutates():
    source = """
def server(env, n):
    while True:
        yield env.timeout(10)

def poller(env):
    yield env.timeout(1)
    while True:
        if env.done:
            break
        env.tick()

def counter(env, n):
    yield env.timeout(1)
    while n < 10:
        n += 1
"""
    assert lint_only(source, "SL201") == []


def test_sl201_ignores_plain_functions():
    # Not a generator: an ordinary busy loop is not a sim livelock.
    source = """
def spin(flag):
    while True:
        pass
"""
    assert lint_only(source, "SL201") == []


# ---------------------------------------------------------------------------
# SL301 / SL302: DMA legality and efficiency
# ---------------------------------------------------------------------------

def test_sl301_fires_on_illegal_constants():
    source = """
def program(spu):
    yield from spu.mfc_get(size=100, tag=0)
    yield from spu.mfc_get(size=4096, tag=0, local_offset=8)
    yield from spu.mfc_getl(element_size=20, n_elements=4, tag=0)
    yield from spu.mfc_putl(element_size=128, n_elements=4096, tag=0)
    yield from spu.wait_tags([0])
"""
    findings = lint_only(source, "SL301")
    assert rule_ids(findings) == ["SL301"] * 4


def test_sl301_clean_on_legal_and_unknown_sizes():
    source = """
def program(spu, nbytes):
    yield from spu.mfc_get(size=16384, tag=0)
    yield from spu.mfc_get(size=8, tag=0)
    yield from spu.mfc_get(size=nbytes, tag=0)
    yield from spu.wait_tags([0])
"""
    assert lint_only(source, "SL301") == []


def test_sl302_warns_on_sub_packet_transfers():
    source = """
def program(spu):
    yield from spu.mfc_get(size=64, tag=0)
    yield from spu.wait_tags([0])
"""
    findings = lint_only(source, "SL302")
    assert rule_ids(findings) == ["SL302"]
    assert findings[0].severity == Severity.WARNING


def test_sl302_silent_on_efficient_or_illegal_sizes():
    # 128 B is efficient; 100 B is illegal (SL301's finding, not SL302's).
    source = """
def program(spu):
    yield from spu.mfc_get(size=128, tag=0)
    yield from spu.mfc_get(size=100, tag=0)
    yield from spu.wait_tags([0])
"""
    assert lint_only(source, "SL302") == []


# ---------------------------------------------------------------------------
# SL401: kernel time is an integer
# ---------------------------------------------------------------------------

def test_sl401_fires_on_float_and_division_delays():
    source = """
def process(env, budget):
    yield env.timeout(10.5)
    yield env.timeout(budget / 2)
    yield spu.compute(3.0)
"""
    findings = lint_only(source, "SL401")
    assert rule_ids(findings) == ["SL401"] * 3


def test_sl401_clean_on_integer_delays():
    source = """
def process(env, budget):
    yield env.timeout(10)
    yield env.timeout(budget // 2)
"""
    assert lint_only(source, "SL401") == []


# ---------------------------------------------------------------------------
# SL501: nondeterminism in sim code
# ---------------------------------------------------------------------------

def test_sl501_fires_on_global_rng_and_wall_clock():
    source = """
import random
import time

def process(env):
    yield env.timeout(random.randint(1, 10))
    start = time.monotonic()
"""
    findings = lint_only(source, "SL501")
    assert rule_ids(findings) == ["SL501"] * 2
    assert any("random.randint" in f.message for f in findings)
    assert any("time.monotonic" in f.message for f in findings)


def test_sl501_seeded_rng_is_sanctioned():
    source = """
import random

def process(env, seed):
    rng = random.Random(seed)
    yield env.timeout(rng.randint(1, 10))
"""
    assert lint_only(source, "SL501") == []


def test_sl501_unseeded_factory_is_flagged():
    source = """
import random

def process(env):
    rng = random.Random()
    yield env.timeout(1)
"""
    assert rule_ids(lint_only(source, "SL501")) == ["SL501"]


def test_sl501_ignores_non_sim_functions():
    source = """
import random

def shuffle_cli_output(rows):
    random.shuffle(rows)
    return rows
"""
    assert lint_only(source, "SL501") == []


def test_sl501_tracks_import_aliases():
    source = """
from time import monotonic as clock

def process(env):
    yield env.timeout(1)
    t = clock()
"""
    assert rule_ids(lint_only(source, "SL501")) == ["SL501"]


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

def test_select_rules_prefix_and_name():
    assert {rule.id for rule in select_rules(["SL3"])} == {"SL301", "SL302"}
    assert [rule.id for rule in select_rules(["yieldless-loop"])] == ["SL201"]
    ignored = select_rules(None, ["SL302"])
    assert "SL302" not in {rule.id for rule in ignored}


def test_select_rules_rejects_unknown_prefix():
    with pytest.raises(LintError, match="matches no rule"):
        select_rules(["SL9"])


def test_lint_source_rejects_syntax_errors():
    with pytest.raises(LintError, match="broken.py"):
        lint_source("def broken(:\n", path="broken.py")


def test_findings_sorted_and_formatted():
    source = """
def program(spu):
    yield from spu.mfc_get(size=100, tag=0)
    yield from spu.mfc_get(size=64, tag=0)
"""
    findings = lint_source(source, path="fixture.py")
    assert [f.line for f in findings] == sorted(f.line for f in findings)
    rendered = findings[0].format()
    assert rendered.startswith("fixture.py:3:")
    assert "SL301" in rendered and "error" in rendered


def test_lint_callable_maps_lines_to_defining_file():
    def bad_process(env):
        yield env.timeout(1.5)

    findings = lint_callable(bad_process)
    assert rule_ids(findings) == ["SL401"]
    assert findings[0].path.endswith("test_lint.py")
    import inspect
    _lines, start = inspect.getsourcelines(bad_process)
    assert start < findings[0].line <= start + 2


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "good.py").write_text(
        "def program(spu):\n"
        "    yield from spu.mfc_get(size=4096, tag=0)\n"
        "    yield from spu.wait_tags([0])\n"
    )
    nested = tmp_path / "sub"
    nested.mkdir()
    (nested / "bad.py").write_text(
        "def program(spu):\n"
        "    yield from spu.mfc_get(size=100, tag=0)\n"
        "    yield from spu.wait_tags([0])\n"
    )
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("def broken(:\n")
    findings = lint_paths([str(tmp_path)])
    assert rule_ids(findings) == ["SL301"]
    assert findings[0].path.endswith("bad.py")


def test_lint_paths_rejects_missing_path():
    with pytest.raises(LintError, match="no such file"):
        lint_paths(["/nonexistent/simlint-fixture"])


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.py"
    path.write_text(
        "def program(spu):\n"
        "    yield from spu.mfc_get(size=64, tag=0)\n"
        "    yield spu.compute(10)\n"
        "    yield from spu.wait_tags([0])\n"
    )
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(
        "def program(spu):\n"
        "    yield from spu.mfc_get(size=4096, tag=0)\n"
        "    yield from spu.wait_tags([0])\n"
        "    yield spu.compute(10)\n"
    )
    return str(path)


def test_cli_exit_codes(racy_file, clean_file, capsys):
    assert lint_main([clean_file]) == 0
    assert lint_main([racy_file]) == 1
    out = capsys.readouterr().out
    assert "SL101" in out and "SL302" in out
    assert "error(s)" in out


def test_cli_min_severity_filters_warnings(racy_file, tmp_path, capsys):
    warning_only = tmp_path / "warn.py"
    warning_only.write_text(
        "def program(spu):\n"
        "    yield from spu.mfc_get(size=64, tag=0)\n"
        "    yield from spu.wait_tags([0])\n"
    )
    assert lint_main([str(warning_only)]) == 1
    assert lint_main(["--min-severity", "error", str(warning_only)]) == 0
    capsys.readouterr()


def test_cli_select_and_json(racy_file, capsys):
    assert lint_main(["--select", "SL3", "--format", "json", racy_file]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [entry["rule"] for entry in payload] == ["SL302"]
    assert payload[0]["severity"] == "warning"


def test_cli_usage_errors(racy_file, capsys):
    assert lint_main([]) == 2
    assert lint_main(["--select", "NOPE", racy_file]) == 2
    assert lint_main(["/nonexistent/simlint-fixture"]) == 2
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


# ---------------------------------------------------------------------------
# Dogfood: the shipped code must stay clean
# ---------------------------------------------------------------------------

def test_shipped_examples_and_kernels_are_clean():
    import os
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    targets = [
        os.path.join(root, "examples"),
        os.path.join(root, "src", "repro", "kernels"),
        os.path.join(root, "src", "repro", "core"),
    ]
    findings = lint_paths(targets)
    assert findings == [], "\n".join(f.format() for f in findings)


# ---------------------------------------------------------------------------
# Inline suppressions (appended: the baseline freezes line numbers above)
# ---------------------------------------------------------------------------

SUPPRESSED = """
def program(spu):
    yield from spu.mfc_get(size=64, tag=0)  # simlint: ignore[SL302] -- fixture
    yield from spu.wait_tags([0])
"""


def test_suppression_with_reason_drops_the_finding():
    assert lint_source(SUPPRESSED) == []


def test_suppression_without_reason_is_sl801():
    source = """
def program(spu):
    yield from spu.mfc_get(size=64, tag=0)  # simlint: ignore[SL302]
    yield from spu.wait_tags([0])
"""
    findings = lint_source(source)
    assert "SL801" in rule_ids(findings)
    # The directive is invalid, so the original finding survives too.
    assert "SL302" in rule_ids(findings)


def test_suppression_without_rules_is_sl801():
    source = """
def program(spu):
    yield from spu.mfc_get(size=4096, tag=0)  # simlint: ignore[] -- why
    yield from spu.wait_tags([0])
"""
    assert rule_ids(lint_source(source)) == ["SL801"]


def test_unused_suppression_is_sl802():
    source = """
def program(spu):
    yield from spu.mfc_get(size=4096, tag=0)  # simlint: ignore[SL302] -- stale
    yield from spu.wait_tags([0])
"""
    findings = lint_source(source)
    assert rule_ids(findings) == ["SL802"]
    assert findings[0].severity == Severity.WARNING
    assert "matches no finding" in findings[0].message


def test_unused_suppression_not_flagged_when_rule_unselected():
    # Under --select SL1, silence about SL302 is not staleness.
    findings = lint_source(SUPPRESSED, rules=select_rules(["SL1", "SL8"]))
    assert findings == []


def test_suppression_in_docstring_is_not_honoured():
    source = '''
def program(spu):
    """Documented directive: # simlint: ignore[SL302] -- quoted."""
    yield from spu.mfc_get(size=64, tag=0)
    yield from spu.wait_tags([0])
'''
    assert "SL302" in rule_ids(lint_source(source))


def test_suppression_covers_multiple_rules():
    source = """
def program(spu):
    yield from spu.mfc_get(size=64, tag=3)
    yield spu.compute(10)  # simlint: ignore[SL101,SL302] -- fixture
    yield from spu.wait_tags([3])
"""
    # SL101 anchors at the compute line and is covered; SL302 anchors at
    # the get line and is not.
    assert rule_ids(lint_source(source)) == ["SL302"]


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------

def test_baseline_round_trip_via_cli(racy_file, tmp_path, capsys):
    baseline = str(tmp_path / "baseline.json")
    assert lint_main(["--update-baseline", baseline, racy_file]) == 0
    # Every frozen finding is filtered: the run is clean.
    assert lint_main(["--baseline", baseline, racy_file]) == 0
    capsys.readouterr()


def test_baseline_keeps_new_findings(racy_file, tmp_path, capsys):
    from repro.analysis.lint import apply_baseline, load_baseline

    baseline = str(tmp_path / "baseline.json")
    assert lint_main(
        ["--select", "SL302", "--update-baseline", baseline, racy_file]
    ) == 0
    capsys.readouterr()
    findings = lint_paths([racy_file])
    survivors = apply_baseline(findings, load_baseline(baseline))
    assert "SL302" not in rule_ids(survivors)
    assert "SL101" in rule_ids(survivors)


def test_malformed_baseline_is_a_usage_error(racy_file, tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert lint_main(["--baseline", str(bad), racy_file]) == 2
    bad.write_text('{"findings": [{"rule": "SL101"}]}')
    assert lint_main(["--baseline", str(bad), racy_file]) == 2
    bad.write_text('{"findings": "nope"}')
    assert lint_main(["--baseline", str(bad), racy_file]) == 2
    capsys.readouterr()


# ---------------------------------------------------------------------------
# Ordering and dedup
# ---------------------------------------------------------------------------

def test_dedup_collapses_identical_fingerprints():
    from repro.analysis.lint.engine import _dedup_sorted
    from repro.analysis.lint.findings import Finding

    def finding(path, line, col, rule, message):
        return Finding(
            rule=rule, name="x", severity=Severity.ERROR,
            path=path, line=line, col=col, message=message,
        )

    duplicated = [
        finding("b.py", 3, 0, "SL101", "again"),
        finding("a.py", 9, 4, "SL301", "later line"),
        finding("b.py", 3, 0, "SL101", "again"),
        finding("a.py", 2, 0, "SL302", "earlier line"),
    ]
    deduped = _dedup_sorted(duplicated)
    assert [(f.path, f.line, f.rule) for f in deduped] == [
        ("a.py", 2, "SL302"), ("a.py", 9, "SL301"), ("b.py", 3, "SL101"),
    ]


def test_dedup_survivor_is_deterministic():
    from repro.analysis.lint.engine import _dedup_sorted
    from repro.analysis.lint.findings import Finding

    def finding(message):
        return Finding(
            rule="SL101", name="x", severity=Severity.ERROR,
            path="a.py", line=1, col=0, message=message,
        )

    forward = _dedup_sorted([finding("aaa"), finding("bbb")])
    backward = _dedup_sorted([finding("bbb"), finding("aaa")])
    assert [f.message for f in forward] == [f.message for f in backward]


# ---------------------------------------------------------------------------
# Output formats and --explain
# ---------------------------------------------------------------------------

def test_cli_format_github_annotations(racy_file, capsys):
    assert lint_main(["--format", "github", racy_file]) == 1
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line]
    assert lines, out
    for line in lines:
        assert line.startswith("::error ") or line.startswith("::warning ")
        assert "file=" in line and "line=" in line and "col=" in line
        assert "title=simlint SL" in line
    assert any("::error " in line and "SL101" in line for line in lines)


def test_cli_format_github_prints_nothing_when_clean(clean_file, capsys):
    assert lint_main(["--format", "github", clean_file]) == 0
    assert capsys.readouterr().out == ""


def test_cli_explain_prints_hazard_steps(tmp_path, capsys):
    overlap = tmp_path / "overlap.py"
    overlap.write_text(
        "def program(spu, out):\n"
        "    spu.mfc_get(4096, tag=0, local_offset=0)\n"
        "    spu.mfc_get(4096, tag=1, local_offset=2048)\n"
        "    spu.wait_tags([0, 1])\n"
    )
    assert lint_main(["--explain", "SL601", str(overlap)]) == 1
    out = capsys.readouterr().out
    assert "SL601" in out
    assert "step 1:" in out and "step 2:" in out
    assert f"{overlap}:2" in out and f"{overlap}:3" in out


def test_cli_explain_unknown_rule_is_usage_error(racy_file, capsys):
    assert lint_main(["--explain", "SL999", racy_file]) == 2
    capsys.readouterr()


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------

def test_cache_cold_then_warm_smoke(tmp_path):
    import time

    from repro.analysis.lint import LintCache
    from repro.analysis.lint.cache import catalog_version

    target = tmp_path / "kernel.py"
    target.write_text(
        "def program(spu):\n"
        "    yield from spu.mfc_get(size=64, tag=0)\n"
        "    yield spu.compute(10)\n"
        "    yield from spu.wait_tags([0])\n"
    )
    cache = LintCache(root=str(tmp_path / "cache"))
    t0 = time.perf_counter()
    cold = lint_paths([str(target)], cache=cache)
    cold_elapsed = time.perf_counter() - t0
    assert cache.misses == 1 and cache.hits == 0

    t0 = time.perf_counter()
    warm = lint_paths([str(target)], cache=cache)
    warm_elapsed = time.perf_counter() - t0
    assert cache.hits == 1
    assert [f.fingerprint for f in warm] == [f.fingerprint for f in cold]
    assert [f.message for f in warm] == [f.message for f in cold]
    # The warm hit skips parsing and every rule: it must not be an
    # order-of-magnitude slower than the cold run (generous bound so a
    # loaded CI box cannot flake this).
    assert warm_elapsed < max(cold_elapsed * 2.0, 0.25), (
        cold_elapsed, warm_elapsed
    )
    # The cache is keyed by the live catalog version.
    assert (tmp_path / "cache" / catalog_version()).is_dir()


def test_cache_invalidates_on_content_change(tmp_path):
    from repro.analysis.lint import LintCache

    target = tmp_path / "kernel.py"
    target.write_text(
        "def program(spu):\n"
        "    yield from spu.mfc_get(size=4096, tag=0)\n"
        "    yield from spu.wait_tags([0])\n"
    )
    cache = LintCache(root=str(tmp_path / "cache"))
    assert lint_paths([str(target)], cache=cache) == []
    target.write_text(
        "def program(spu):\n"
        "    yield from spu.mfc_get(size=64, tag=0)\n"
        "    yield from spu.wait_tags([0])\n"
    )
    findings = lint_paths([str(target)], cache=cache)
    assert "SL302" in rule_ids(findings)
    assert cache.misses == 2


def test_cache_is_keyed_by_rule_selection(tmp_path):
    from repro.analysis.lint import LintCache

    target = tmp_path / "kernel.py"
    target.write_text(
        "def program(spu):\n"
        "    yield from spu.mfc_get(size=64, tag=0)\n"
        "    yield spu.compute(10)\n"
        "    yield from spu.wait_tags([0])\n"
    )
    cache = LintCache(root=str(tmp_path / "cache"))
    all_rules = lint_paths([str(target)], cache=cache)
    narrowed = lint_paths(
        [str(target)], rules=select_rules(["SL302"]), cache=cache
    )
    assert rule_ids(narrowed) == ["SL302"]
    assert len(all_rules) > len(narrowed)


def test_cache_get_reanchors_findings_to_the_queried_path(tmp_path):
    from repro.analysis.lint import LintCache

    source = (
        "def program(spu):\n"
        "    yield from spu.mfc_get(size=64, tag=0)\n"
        "    yield from spu.wait_tags([0])\n"
    )
    first = tmp_path / "a.py"
    second = tmp_path / "b.py"
    first.write_text(source)
    second.write_text(source)
    cache = LintCache(root=str(tmp_path / "cache"))
    lint_paths([str(first)], cache=cache)
    findings = lint_paths([str(second)], cache=cache)
    assert cache.hits == 1  # same content, same rules: shared entry
    assert findings[0].path == str(second)


# ---------------------------------------------------------------------------
# lint_callable carries dataflow steps with real line numbers
# ---------------------------------------------------------------------------

def test_lint_callable_offsets_explain_steps():
    import inspect

    from repro.reproduce import racy_pair_program

    findings = [
        f for f in lint_callable(
            racy_pair_program, rules=select_rules(["SL601"])
        )
    ]
    assert rule_ids(findings) == ["SL601"]
    _lines, start = inspect.getsourcelines(racy_pair_program)
    finding = findings[0]
    assert finding.line >= start
    assert finding.steps
    for line, note in finding.steps:
        assert line >= start
        assert note
