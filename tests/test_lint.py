"""simlint: one positive and one negative fixture per rule, engine
behaviour (selection, classification, callable linting) and the CLI
contract (diagnostics format, exit codes)."""

import json

import pytest

from repro.analysis.lint import (
    LintError,
    RULES,
    Severity,
    lint_callable,
    lint_paths,
    lint_source,
    select_rules,
)
from repro.lint import main as lint_main


def rule_ids(findings):
    return [finding.rule for finding in findings]


def lint_only(source, rule_id):
    return lint_source(source, rules=select_rules([rule_id]))


# ---------------------------------------------------------------------------
# SL101: local-store data consumed before its GET landed
# ---------------------------------------------------------------------------

def test_sl101_fires_on_compute_before_wait():
    source = """
def program(spu):
    yield from spu.mfc_get(size=4096, tag=3)
    yield spu.compute(100)
    yield from spu.wait_tags([3])
"""
    findings = lint_only(source, "SL101")
    assert rule_ids(findings) == ["SL101"]
    assert "tag group(s) {3}" in findings[0].message


def test_sl101_clean_when_waited_first():
    source = """
def program(spu):
    yield from spu.mfc_get(size=4096, tag=3)
    yield from spu.wait_tags([3])
    yield spu.compute(100)
"""
    assert lint_only(source, "SL101") == []


def test_sl101_put_does_not_dirty_reads():
    # PUT reads the LS; computing while a PUT is in flight is fine.
    source = """
def program(spu):
    yield from spu.mfc_put(size=4096, tag=1)
    yield spu.compute(100)
    yield from spu.wait_tags([1])
"""
    assert lint_only(source, "SL101") == []


def test_sl101_branch_dirtiness_is_unioned():
    source = """
def program(spu, fast):
    if fast:
        yield from spu.mfc_get(size=4096, tag=0)
    else:
        yield from spu.wait_tags([0])
    yield spu.compute(10)
    yield from spu.wait_tags([0])
"""
    assert rule_ids(lint_only(source, "SL101")) == ["SL101"]


def test_sl101_unknown_wait_clears_everything():
    source = """
def program(spu, tags):
    yield from spu.mfc_get(size=4096, tag=0)
    yield from spu.wait_tags(tags)
    yield spu.compute(10)
"""
    assert lint_only(source, "SL101") == []


# ---------------------------------------------------------------------------
# SL102: program can return with DMA in flight
# ---------------------------------------------------------------------------

def test_sl102_fires_on_missing_final_wait():
    source = """
def program(spu, out):
    yield from spu.mfc_get(size=4096, tag=0)
    out["done"] = True
"""
    findings = lint_only(source, "SL102")
    assert rule_ids(findings) == ["SL102"]
    assert "'program'" in findings[0].message


def test_sl102_clean_with_final_wait():
    source = """
def program(spu, out):
    yield from spu.mfc_get(size=4096, tag=0)
    yield from spu.wait_tags([0])
"""
    assert lint_only(source, "SL102") == []


def test_sl102_helpers_exempt():
    # A leading-underscore helper's caller owns the synchronisation
    # (the shape of repro.core.kernels._elem_loop).
    source = """
def _issue(spu, n):
    for _ in range(n):
        yield from spu.mfc_get(size=4096, tag=0)
"""
    assert lint_only(source, "SL102") == []


# ---------------------------------------------------------------------------
# SL201: zero-time livelock loops
# ---------------------------------------------------------------------------

def test_sl201_fires_on_yieldless_while_true():
    source = """
def server(env):
    yield env.timeout(1)
    while True:
        env.poll()
"""
    findings = lint_only(source, "SL201")
    assert rule_ids(findings) == ["SL201"]
    assert "livelock" in findings[0].message


def test_sl201_fires_on_unchanging_test():
    source = """
def server(env, n):
    yield env.timeout(1)
    while n < 10:
        x = 1
"""
    assert rule_ids(lint_only(source, "SL201")) == ["SL201"]


def test_sl201_fires_on_infinite_for():
    source = """
import itertools

def server(env):
    yield env.timeout(1)
    for _ in itertools.count():
        pass
"""
    assert rule_ids(lint_only(source, "SL201")) == ["SL201"]


def test_sl201_clean_when_loop_yields_breaks_or_mutates():
    source = """
def server(env, n):
    while True:
        yield env.timeout(10)

def poller(env):
    yield env.timeout(1)
    while True:
        if env.done:
            break
        env.tick()

def counter(env, n):
    yield env.timeout(1)
    while n < 10:
        n += 1
"""
    assert lint_only(source, "SL201") == []


def test_sl201_ignores_plain_functions():
    # Not a generator: an ordinary busy loop is not a sim livelock.
    source = """
def spin(flag):
    while True:
        pass
"""
    assert lint_only(source, "SL201") == []


# ---------------------------------------------------------------------------
# SL301 / SL302: DMA legality and efficiency
# ---------------------------------------------------------------------------

def test_sl301_fires_on_illegal_constants():
    source = """
def program(spu):
    yield from spu.mfc_get(size=100, tag=0)
    yield from spu.mfc_get(size=4096, tag=0, local_offset=8)
    yield from spu.mfc_getl(element_size=20, n_elements=4, tag=0)
    yield from spu.mfc_putl(element_size=128, n_elements=4096, tag=0)
    yield from spu.wait_tags([0])
"""
    findings = lint_only(source, "SL301")
    assert rule_ids(findings) == ["SL301"] * 4


def test_sl301_clean_on_legal_and_unknown_sizes():
    source = """
def program(spu, nbytes):
    yield from spu.mfc_get(size=16384, tag=0)
    yield from spu.mfc_get(size=8, tag=0)
    yield from spu.mfc_get(size=nbytes, tag=0)
    yield from spu.wait_tags([0])
"""
    assert lint_only(source, "SL301") == []


def test_sl302_warns_on_sub_packet_transfers():
    source = """
def program(spu):
    yield from spu.mfc_get(size=64, tag=0)
    yield from spu.wait_tags([0])
"""
    findings = lint_only(source, "SL302")
    assert rule_ids(findings) == ["SL302"]
    assert findings[0].severity == Severity.WARNING


def test_sl302_silent_on_efficient_or_illegal_sizes():
    # 128 B is efficient; 100 B is illegal (SL301's finding, not SL302's).
    source = """
def program(spu):
    yield from spu.mfc_get(size=128, tag=0)
    yield from spu.mfc_get(size=100, tag=0)
    yield from spu.wait_tags([0])
"""
    assert lint_only(source, "SL302") == []


# ---------------------------------------------------------------------------
# SL401: kernel time is an integer
# ---------------------------------------------------------------------------

def test_sl401_fires_on_float_and_division_delays():
    source = """
def process(env, budget):
    yield env.timeout(10.5)
    yield env.timeout(budget / 2)
    yield spu.compute(3.0)
"""
    findings = lint_only(source, "SL401")
    assert rule_ids(findings) == ["SL401"] * 3


def test_sl401_clean_on_integer_delays():
    source = """
def process(env, budget):
    yield env.timeout(10)
    yield env.timeout(budget // 2)
"""
    assert lint_only(source, "SL401") == []


# ---------------------------------------------------------------------------
# SL501: nondeterminism in sim code
# ---------------------------------------------------------------------------

def test_sl501_fires_on_global_rng_and_wall_clock():
    source = """
import random
import time

def process(env):
    yield env.timeout(random.randint(1, 10))
    start = time.monotonic()
"""
    findings = lint_only(source, "SL501")
    assert rule_ids(findings) == ["SL501"] * 2
    assert any("random.randint" in f.message for f in findings)
    assert any("time.monotonic" in f.message for f in findings)


def test_sl501_seeded_rng_is_sanctioned():
    source = """
import random

def process(env, seed):
    rng = random.Random(seed)
    yield env.timeout(rng.randint(1, 10))
"""
    assert lint_only(source, "SL501") == []


def test_sl501_unseeded_factory_is_flagged():
    source = """
import random

def process(env):
    rng = random.Random()
    yield env.timeout(1)
"""
    assert rule_ids(lint_only(source, "SL501")) == ["SL501"]


def test_sl501_ignores_non_sim_functions():
    source = """
import random

def shuffle_cli_output(rows):
    random.shuffle(rows)
    return rows
"""
    assert lint_only(source, "SL501") == []


def test_sl501_tracks_import_aliases():
    source = """
from time import monotonic as clock

def process(env):
    yield env.timeout(1)
    t = clock()
"""
    assert rule_ids(lint_only(source, "SL501")) == ["SL501"]


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

def test_select_rules_prefix_and_name():
    assert {rule.id for rule in select_rules(["SL3"])} == {"SL301", "SL302"}
    assert [rule.id for rule in select_rules(["yieldless-loop"])] == ["SL201"]
    ignored = select_rules(None, ["SL302"])
    assert "SL302" not in {rule.id for rule in ignored}


def test_select_rules_rejects_unknown_prefix():
    with pytest.raises(LintError, match="matches no rule"):
        select_rules(["SL9"])


def test_lint_source_rejects_syntax_errors():
    with pytest.raises(LintError, match="broken.py"):
        lint_source("def broken(:\n", path="broken.py")


def test_findings_sorted_and_formatted():
    source = """
def program(spu):
    yield from spu.mfc_get(size=100, tag=0)
    yield from spu.mfc_get(size=64, tag=0)
"""
    findings = lint_source(source, path="fixture.py")
    assert [f.line for f in findings] == sorted(f.line for f in findings)
    rendered = findings[0].format()
    assert rendered.startswith("fixture.py:3:")
    assert "SL301" in rendered and "error" in rendered


def test_lint_callable_maps_lines_to_defining_file():
    def bad_process(env):
        yield env.timeout(1.5)

    findings = lint_callable(bad_process)
    assert rule_ids(findings) == ["SL401"]
    assert findings[0].path.endswith("test_lint.py")
    import inspect
    _lines, start = inspect.getsourcelines(bad_process)
    assert start < findings[0].line <= start + 2


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "good.py").write_text(
        "def program(spu):\n"
        "    yield from spu.mfc_get(size=4096, tag=0)\n"
        "    yield from spu.wait_tags([0])\n"
    )
    nested = tmp_path / "sub"
    nested.mkdir()
    (nested / "bad.py").write_text(
        "def program(spu):\n"
        "    yield from spu.mfc_get(size=100, tag=0)\n"
        "    yield from spu.wait_tags([0])\n"
    )
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("def broken(:\n")
    findings = lint_paths([str(tmp_path)])
    assert rule_ids(findings) == ["SL301"]
    assert findings[0].path.endswith("bad.py")


def test_lint_paths_rejects_missing_path():
    with pytest.raises(LintError, match="no such file"):
        lint_paths(["/nonexistent/simlint-fixture"])


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.py"
    path.write_text(
        "def program(spu):\n"
        "    yield from spu.mfc_get(size=64, tag=0)\n"
        "    yield spu.compute(10)\n"
        "    yield from spu.wait_tags([0])\n"
    )
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(
        "def program(spu):\n"
        "    yield from spu.mfc_get(size=4096, tag=0)\n"
        "    yield from spu.wait_tags([0])\n"
        "    yield spu.compute(10)\n"
    )
    return str(path)


def test_cli_exit_codes(racy_file, clean_file, capsys):
    assert lint_main([clean_file]) == 0
    assert lint_main([racy_file]) == 1
    out = capsys.readouterr().out
    assert "SL101" in out and "SL302" in out
    assert "error(s)" in out


def test_cli_min_severity_filters_warnings(racy_file, tmp_path, capsys):
    warning_only = tmp_path / "warn.py"
    warning_only.write_text(
        "def program(spu):\n"
        "    yield from spu.mfc_get(size=64, tag=0)\n"
        "    yield from spu.wait_tags([0])\n"
    )
    assert lint_main([str(warning_only)]) == 1
    assert lint_main(["--min-severity", "error", str(warning_only)]) == 0
    capsys.readouterr()


def test_cli_select_and_json(racy_file, capsys):
    assert lint_main(["--select", "SL3", "--format", "json", racy_file]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [entry["rule"] for entry in payload] == ["SL302"]
    assert payload[0]["severity"] == "warning"


def test_cli_usage_errors(racy_file, capsys):
    assert lint_main([]) == 2
    assert lint_main(["--select", "NOPE", racy_file]) == 2
    assert lint_main(["/nonexistent/simlint-fixture"]) == 2
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


# ---------------------------------------------------------------------------
# Dogfood: the shipped code must stay clean
# ---------------------------------------------------------------------------

def test_shipped_examples_and_kernels_are_clean():
    import os
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    targets = [
        os.path.join(root, "examples"),
        os.path.join(root, "src", "repro", "kernels"),
        os.path.join(root, "src", "repro", "core"),
    ]
    findings = lint_paths(targets)
    assert findings == [], "\n".join(f.format() for f in findings)
