"""Tests for the CellSs-style task-offload runtime."""

import pytest

from repro.cell import ConfigError
from repro.runtime import (
    OffloadRuntime,
    Task,
    TaskGraph,
    chain,
    fan_out_fan_in,
    wavefront,
)


class TestTask:
    def test_input_bytes_aggregates_deps(self):
        a = Task("a", flops=10, output_bytes=1024)
        b = Task("b", flops=10, output_bytes=2048, external_input_bytes=512,
                 depends_on=(a,))
        assert b.input_bytes == 1024 + 512

    def test_validation(self):
        with pytest.raises(ConfigError):
            Task("bad", flops=-1, output_bytes=1024)
        with pytest.raises(ConfigError):
            Task("bad", flops=1, output_bytes=100)  # not quadword multiple
        with pytest.raises(ConfigError):
            Task("bad", flops=1, output_bytes=1024, external_input_bytes=-1)


class TestTaskGraph:
    def test_rejects_missing_dependency(self):
        a = Task("a", flops=1, output_bytes=16)
        b = Task("b", flops=1, output_bytes=16, depends_on=(a,))
        with pytest.raises(ConfigError):
            TaskGraph([b])

    def test_rejects_cycles(self):
        a = Task("a", flops=1, output_bytes=16)
        b = Task("b", flops=1, output_bytes=16, depends_on=(a,))
        a.depends_on = (b,)
        with pytest.raises(ConfigError):
            TaskGraph([a, b])

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            TaskGraph([])

    def test_critical_path(self):
        graph = chain(4, flops_per_stage=100.0)
        assert graph.total_flops == 400.0
        assert graph.critical_path_flops == 400.0
        fan = fan_out_fan_in(width=4, flops_per_task=100.0)
        assert fan.total_flops == 600.0
        assert fan.critical_path_flops == 300.0


class TestFactories:
    def test_chain_shape(self):
        graph = chain(5)
        assert len(graph) == 5
        assert graph.tasks[0].external_input_bytes > 0
        assert graph.tasks[4].depends_on == (graph.tasks[3],)

    def test_fan_shape(self):
        graph = fan_out_fan_in(width=3)
        assert len(graph) == 5
        sink = graph.tasks[-1]
        assert len(sink.depends_on) == 3

    def test_wavefront_shape(self):
        graph = wavefront(width=3, steps=2)
        assert len(graph) == 6
        middle = next(t for t in graph.tasks if t.name == "cell(1,1)")
        assert len(middle.depends_on) == 3  # three neighbours below

    def test_factory_validation(self):
        with pytest.raises(ConfigError):
            chain(0)
        with pytest.raises(ConfigError):
            fan_out_fan_in(0)
        with pytest.raises(ConfigError):
            wavefront(0, 1)


class TestOffloadRuntime:
    def test_runs_all_tasks(self):
        stats = OffloadRuntime(wavefront(4, 4), n_spes=4).run()
        assert stats.n_tasks == 16
        assert sum(stats.tasks_per_spe.values()) == 16
        assert stats.makespan_cycles > 0
        assert stats.gflops > 0

    def test_forwarding_reduces_memory_traffic(self):
        graph = wavefront(width=8, steps=6)
        memory = OffloadRuntime(graph, n_spes=8, policy="memory").run()
        forward = OffloadRuntime(graph, n_spes=8, policy="forward").run()
        assert forward.memory_read_bytes < memory.memory_read_bytes
        assert forward.forwarded_bytes > 0
        assert memory.forwarded_bytes == 0

    def test_forwarding_speeds_up_dependent_graphs(self):
        graph = wavefront(width=8, steps=6)
        memory = OffloadRuntime(graph, n_spes=8, policy="memory").run()
        forward = OffloadRuntime(graph, n_spes=8, policy="forward").run()
        assert forward.makespan_cycles < memory.makespan_cycles

    def test_chain_stays_local(self):
        """A pure pipeline ends up on one SPE, consuming from its own LS."""
        stats = OffloadRuntime(chain(16), n_spes=4, policy="forward").run()
        assert stats.ls_hit_bytes > 0
        busy = [spe for spe, count in stats.tasks_per_spe.items() if count]
        assert len(busy) == 1

    def test_write_through_always_reaches_memory(self):
        graph = chain(8)
        stats = OffloadRuntime(graph, n_spes=2, policy="forward").run()
        assert stats.memory_write_bytes == sum(
            task.output_bytes for task in graph.tasks
        )

    def test_validation(self):
        graph = chain(2)
        with pytest.raises(ConfigError):
            OffloadRuntime(graph, policy="teleport")
        with pytest.raises(ConfigError):
            OffloadRuntime(graph, n_spes=0)

    def test_uncacheable_output_falls_back_to_memory(self):
        big = Task("big", flops=100.0, output_bytes=32768,
                   external_input_bytes=16384)
        consumer = Task("consumer", flops=100.0, output_bytes=16384,
                        depends_on=(big,))
        runtime = OffloadRuntime(
            TaskGraph([big, consumer]),
            n_spes=2,
            policy="forward",
            ls_cache_bytes=16384,  # smaller than big's output
        )
        stats = runtime.run()
        # The consumer had to read the big block from memory.
        assert stats.memory_read_bytes >= 16384 + 32768
        assert stats.forwarded_bytes == 0

    def test_deterministic_given_seed(self):
        graph = wavefront(4, 4)
        first = OffloadRuntime(graph, n_spes=4, seed=5).run()
        second = OffloadRuntime(graph, n_spes=4, seed=5).run()
        assert first.makespan_cycles == second.makespan_cycles
