"""Edge-case tests for the DES kernel and EIB model that the main suites
don't reach: condition failure propagation, interrupts during resource
waits, routing extremes, utilisation accounting."""

import pytest

from repro.cell import CellChip, CellConfig
from repro.cell.topology import CLOCKWISE, COUNTERCLOCKWISE, RingTopology
from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    Resource,
    SimulationError,
    Store,
)


class TestConditionFailures:
    def test_all_of_fails_when_component_fails(self):
        env = Environment()
        caught = []

        def failer(env, event):
            yield env.timeout(3)
            event.fail(RuntimeError("component broke"))

        def waiter(env, pending):
            try:
                yield AllOf(env, pending)
            except RuntimeError as exc:
                caught.append(str(exc))

        event = env.event()
        env.process(failer(env, event))
        env.process(waiter(env, [env.timeout(10), event]))
        env.run()
        assert caught == ["component broke"]

    def test_any_of_with_pre_triggered_event(self):
        env = Environment()
        results = []

        def proc(env):
            done = env.event()
            done.succeed("already")
            values = yield AnyOf(env, [done, env.timeout(100)])
            results.append((env.now, values))

        env.process(proc(env))
        env.run()
        assert results[0][0] == 0
        assert "already" in results[0][1]

    def test_condition_rejects_cross_environment_events(self):
        env_a, env_b = Environment(), Environment()
        with pytest.raises(SimulationError):
            AllOf(env_a, [env_a.event(), env_b.event()])


class TestInterruptsAndResources:
    def test_interrupt_while_waiting_on_resource(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        log = []

        def holder(env):
            request = resource.request()
            yield request
            yield env.timeout(100)
            resource.release(request)

        def impatient(env):
            request = resource.request()
            try:
                yield request
            except Interrupt:
                resource.cancel(request)
                log.append(("gave up", env.now))

        def interrupter(env, victim):
            yield env.timeout(10)
            victim.interrupt()

        env.process(holder(env))
        victim = env.process(impatient(env))
        env.process(interrupter(env, victim))
        env.run()
        assert log == [("gave up", 10)]
        # The cancelled request must not be granted later.
        assert resource.count == 0

    def test_store_interleaved_producers_consumers(self):
        env = Environment()
        store = Store(env, capacity=2)
        consumed = []

        def producer(env, base):
            for i in range(3):
                yield store.put(base + i)
                yield env.timeout(1)

        def consumer(env):
            for _ in range(6):
                item = yield store.get()
                consumed.append(item)
                yield env.timeout(2)

        env.process(producer(env, 0))
        env.process(producer(env, 100))
        env.process(consumer(env))
        env.run()
        assert sorted(consumed) == [0, 1, 2, 100, 101, 102]


class TestRoutingExtremes:
    def test_halfway_transfer_uses_either_direction(self):
        topology = RingTopology()
        src = topology.order[0]
        dst = topology.order[6]
        directions = topology.directions_by_distance(src, dst)
        assert set(directions) == {CLOCKWISE, COUNTERCLOCKWISE}

    def test_six_hop_transfer_completes(self):
        chip = CellChip(config=CellConfig.paper_blade())
        # PPE (index 0) to IOIF0 (index 6): exactly six hops both ways.
        done = []

        def mover(env):
            yield from chip.eib.transfer("PPE", "IOIF0", 2048)
            done.append(env.now)

        chip.env.process(mover(chip.env))
        chip.run()
        assert done and done[0] > 0

    def test_all_rings_used_under_parallel_disjoint_load(self):
        chip = CellChip(config=CellConfig.paper_blade())
        flows = [("SPE0", "SPE2"), ("SPE1", "SPE3"), ("SPE4", "SPE6"), ("SPE5", "SPE7")]

        def mover(env, src, dst):
            yield from chip.eib.transfer(src, dst, 65536)

        for src, dst in flows:
            chip.env.process(mover(chip.env, src, dst))
        chip.run()
        used = [name for name, util in chip.eib.utilization().items() if util > 0]
        assert len(used) >= 2  # the load spreads beyond a single ring


class TestEnvironmentMisc:
    def test_run_with_no_events_returns_immediately(self):
        env = Environment()
        env.run()
        assert env.now == 0

    def test_run_until_past_all_events_sets_now_to_horizon(self):
        env = Environment()
        env.timeout(5)
        env.run(until=50)
        assert env.now == 50

    def test_failed_event_nobody_waits_on_is_raised_at_run_end(self):
        env = Environment()

        def failer(env):
            yield env.timeout(1)
            env.event().fail(ValueError("orphaned"))

        env.process(failer(env))
        with pytest.raises(ValueError, match="orphaned"):
            env.run()

    def test_event_value_before_trigger_raises(self):
        env = Environment()
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value
        with pytest.raises(SimulationError):
            _ = event.ok

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")
