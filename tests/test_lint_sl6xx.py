"""Seeded hazard fixtures for the SL6xx dataflow rules: one true
positive and near-miss clean programs per rule, interprocedural cases,
and the --explain path output."""

from repro.analysis.lint import lint_source, select_rules


def rule_ids(findings):
    return [finding.rule for finding in findings]


def lint_only(source, *prefixes):
    return lint_source(source, rules=select_rules(list(prefixes)))


# ---------------------------------------------------------------------------
# SL601: local-store buffer overlap
# ---------------------------------------------------------------------------

OVERLAP = """
def program(spu, out):
    spu.mfc_get(4096, tag=0, local_offset=0)
    spu.mfc_get(4096, tag=1, local_offset=2048)
    spu.wait_tags([0, 1])
"""


def test_sl601_fires_on_overlapping_inflight_gets():
    findings = lint_only(OVERLAP, "SL601")
    assert rule_ids(findings) == ["SL601"]
    assert "[0, 4096)" in findings[0].message
    assert "[2048, 6144)" in findings[0].message


def test_sl601_explain_steps_trace_both_issues():
    finding = lint_only(OVERLAP, "SL601")[0]
    assert [line for line, _note in finding.steps] == [3, 4]
    assert "still in flight" in finding.steps[0][1]


def test_sl601_clean_when_ranges_are_disjoint():
    source = """
def program(spu, out):
    spu.mfc_get(4096, tag=0, local_offset=0)
    spu.mfc_get(4096, tag=1, local_offset=4096)
    spu.wait_tags([0, 1])
"""
    assert lint_only(source, "SL601") == []


def test_sl601_clean_when_wait_orders_the_pair():
    source = """
def program(spu, out):
    spu.mfc_get(4096, tag=0, local_offset=0)
    spu.wait_tags([0])
    spu.mfc_get(4096, tag=1, local_offset=0)
    spu.wait_tags([1])
"""
    assert lint_only(source, "SL601") == []


def test_sl601_clean_when_fenced_on_the_same_tag_group():
    source = """
def program(spu, out):
    spu.mfc_get(4096, tag=0, local_offset=0)
    spu.mfc_getf(4096, tag=0, local_offset=0)
    spu.wait_tags([0])
"""
    assert lint_only(source, "SL601") == []


def test_sl601_fires_when_fence_is_on_another_tag_group():
    source = """
def program(spu, out):
    spu.mfc_get(4096, tag=0, local_offset=0)
    spu.mfc_getf(4096, tag=7, local_offset=0)
    spu.wait_tags([0, 7])
"""
    assert rule_ids(lint_only(source, "SL601")) == ["SL601"]


def test_sl601_clean_on_barrier():
    source = """
def program(spu, out):
    spu.mfc_get(4096, tag=0, local_offset=0)
    spu.mfc_getb(4096, tag=7, local_offset=0)
    spu.wait_tags([0, 7])
"""
    assert lint_only(source, "SL601") == []


def test_sl601_silent_when_offsets_are_unknown():
    # Imprecision must be silence: window.offset() is opaque.
    source = """
def program(spu, out, window):
    spu.mfc_get(4096, tag=0, local_offset=window.offset(0))
    spu.mfc_get(4096, tag=1, local_offset=window.offset(1))
    spu.wait_tags([0, 1])
"""
    assert lint_only(source, "SL601") == []


def test_sl601_put_put_overlap_is_not_a_race():
    # Both PUTs read the local store; no writer, no race.
    source = """
def program(spu, out):
    spu.mfc_put(4096, tag=0, local_offset=0)
    spu.mfc_put(4096, tag=1, local_offset=0)
    spu.wait_tags([0, 1])
"""
    assert lint_only(source, "SL601") == []


def test_sl601_sees_constants_propagated_through_locals():
    source = """
def program(spu, out):
    half = 8192
    base = half // 2
    spu.mfc_get(4096, tag=0, local_offset=base)
    spu.mfc_get(4096, tag=1, local_offset=base + 1024)
    spu.wait_tags([0, 1])
"""
    findings = lint_only(source, "SL601")
    assert rule_ids(findings) == ["SL601"]
    assert "[4096, 8192)" in findings[0].message


def test_sl601_threads_module_helper_summaries():
    # The overlapping issue happens inside a module-local helper: the
    # caller's analysis must fold the helper's effects in.
    source = """
def _fill(spu, base):
    spu.mfc_get(4096, tag=1, local_offset=base)

def program(spu, out):
    spu.mfc_get(4096, tag=0, local_offset=0)
    _fill(spu, 2048)
    spu.wait_tags([0, 1])
"""
    findings = lint_only(source, "SL601")
    assert rule_ids(findings) == ["SL601"]
    # Anchored at the helper's issue line (same module).
    assert findings[0].line == 3


def test_sl601_helper_wait_clears_state_interprocedurally():
    source = """
def _drain(spu):
    spu.wait_tags([0])

def program(spu, out):
    spu.mfc_get(4096, tag=0, local_offset=0)
    _drain(spu)
    spu.mfc_get(4096, tag=1, local_offset=0)
    spu.wait_tags([1])
"""
    assert lint_only(source, "SL601") == []


def test_sl601_unknown_call_receiving_spu_silences_the_analysis():
    # An unresolvable callee that gets the SPU handle may have waited:
    # the analysis must drop its claims rather than guess.
    source = """
def program(spu, out, mystery):
    spu.mfc_get(4096, tag=0, local_offset=0)
    mystery(spu)
    spu.mfc_get(4096, tag=1, local_offset=0)
    spu.wait_tags([0, 1])
"""
    assert lint_only(source, "SL601") == []


def test_sl601_branch_local_hazard_is_found_on_that_path():
    source = """
def program(spu, out, flag):
    spu.mfc_get(4096, tag=0, local_offset=0)
    if flag:
        spu.mfc_get(4096, tag=1, local_offset=1024)
    spu.wait_tags([0, 1])
"""
    findings = lint_only(source, "SL601")
    assert rule_ids(findings) == ["SL601"]
    assert findings[0].line == 5


# ---------------------------------------------------------------------------
# SL602: tag-group lifecycle
# ---------------------------------------------------------------------------

def test_sl602_dead_wait_on_never_issued_tag():
    source = """
def program(spu, out):
    spu.mfc_get(4096, tag=0, local_offset=0)
    spu.wait_tags([0, 3])
"""
    findings = lint_only(source, "SL602")
    assert rule_ids(findings) == ["SL602"]
    assert "tag group 3" in findings[0].message


def test_sl602_clean_when_tag_issued_on_some_path():
    source = """
def program(spu, out, flag):
    if flag:
        spu.mfc_get(4096, tag=3, local_offset=0)
    spu.wait_tags([3])
"""
    assert lint_only(source, "SL602") == []


def test_sl602_dead_wait_silent_without_any_issue():
    # A wait-only function synchronises its caller's transfers; the
    # intraprocedural view cannot call that dead.
    source = """
def program(spu, out):
    spu.wait_tags([3])
"""
    assert lint_only(source, "SL602") == []


def test_sl602_dead_wait_silent_when_tags_are_unknown():
    source = """
def program(spu, out, tag):
    spu.mfc_get(4096, tag=tag, local_offset=0)
    spu.wait_tags([3])
"""
    assert lint_only(source, "SL602") == []


def test_sl602_direction_mix_on_one_tag_group():
    source = """
def program(spu, out):
    spu.mfc_get(4096, tag=0, local_offset=0)
    spu.mfc_put(4096, tag=0, local_offset=8192)
    spu.wait_tags([0])
"""
    findings = lint_only(source, "SL602")
    assert rule_ids(findings) == ["SL602"]
    assert "conflates" in findings[0].message


def test_sl602_clean_when_directions_use_separate_groups():
    source = """
def program(spu, out):
    spu.mfc_get(4096, tag=0, local_offset=0)
    spu.mfc_put(4096, tag=2, local_offset=8192)
    spu.wait_tags([0, 2])
"""
    assert lint_only(source, "SL602") == []


def test_sl602_clean_when_wait_separates_directions():
    source = """
def program(spu, out):
    spu.mfc_get(4096, tag=0, local_offset=0)
    spu.wait_tags([0])
    spu.mfc_put(4096, tag=0, local_offset=8192)
    spu.wait_tags([0])
"""
    assert lint_only(source, "SL602") == []


def test_sl602_wait_at_loop_top_for_previous_iteration_is_clean():
    # The classic delayed-sync idiom: wait at the top of iteration i for
    # the command issued at the bottom of iteration i-1.  Judging before
    # the back edge has delivered that issue would call this dead.
    source = """
def program(spu, out):
    for i in range(8):
        spu.wait_tags([0])
        spu.mfc_get(4096, tag=0, local_offset=0)
    spu.wait_tags([0])
"""
    assert lint_only(source, "SL602") == []


# ---------------------------------------------------------------------------
# SL603: double-buffer phase violations
# ---------------------------------------------------------------------------

ROTATION = """
def program(spu, out):
    for i in range(64):
        spu.mfc_get(4096, tag=i % 2, local_offset=(i % 2) * 4096)
    spu.wait_tags([0, 1])
"""


def test_sl603_fires_on_unwaited_rotation():
    findings = lint_only(ROTATION, "SL603")
    assert rule_ids(findings) == ["SL603"]
    assert "2 window(s)" in findings[0].message
    assert "64 iterations" in findings[0].message


def test_sl603_explain_names_loop_and_rotation():
    finding = lint_only(ROTATION, "SL603")[0]
    assert [line for line, _note in finding.steps] == [3, 4]


def test_sl603_clean_with_wait_in_the_loop_body():
    source = """
def program(spu, out):
    for i in range(64):
        spu.mfc_get(4096, tag=i % 2, local_offset=(i % 2) * 4096)
        spu.wait_tags([i % 2])
"""
    assert lint_only(source, "SL603") == []


def test_sl603_clean_when_trip_count_fits_the_window():
    source = """
def program(spu, out):
    for i in range(2):
        spu.mfc_get(4096, tag=i % 2, local_offset=(i % 2) * 4096)
    spu.wait_tags([0, 1])
"""
    assert lint_only(source, "SL603") == []


def test_sl603_silent_when_window_count_is_unknown():
    source = """
def program(spu, out, nbuf):
    for i in range(64):
        spu.mfc_get(4096, tag=0, local_offset=(i % nbuf) * 4096)
    spu.wait_tags([0])
"""
    assert lint_only(source, "SL603") == []


def test_sl603_uses_module_constants_for_the_window_count():
    source = """
NBUF = 2

def program(spu, out):
    for i in range(64):
        spu.mfc_get(4096, tag=0, local_offset=(i % NBUF) * 4096)
    spu.wait_tags([0])
"""
    assert rule_ids(lint_only(source, "SL603")) == ["SL603"]


def test_sl603_helper_wait_in_body_counts_as_coverage():
    source = """
def _sync(spu, tag):
    spu.wait_tags([tag])

def program(spu, out):
    for i in range(64):
        spu.mfc_get(4096, tag=0, local_offset=(i % 2) * 4096)
        _sync(spu, 0)
"""
    assert lint_only(source, "SL603") == []


def test_sl603_constant_modulo_is_indexing_not_rotation():
    # 7 % 4 is a constant offset, not per-iteration rotation.
    source = """
def program(spu, out):
    for i in range(64):
        spu.mfc_get(4096, tag=0, local_offset=(7 % 4) * 4096)
        spu.wait_tags([0])
"""
    assert lint_only(source, "SL603") == []


# ---------------------------------------------------------------------------
# Cross-cutting behaviour
# ---------------------------------------------------------------------------

def test_helpers_are_not_analysed_standalone():
    # The helper alone looks racy, but its caller owns the sync context;
    # only non-helper entry points are judged directly.
    source = """
def _racy_looking(spu, base):
    spu.mfc_get(4096, tag=0, local_offset=base)
    spu.mfc_get(4096, tag=1, local_offset=base)
"""
    assert lint_only(source, "SL6") == []


def test_all_three_rules_coexist_in_one_function():
    source = """
def program(spu, out):
    spu.mfc_get(4096, tag=0, local_offset=0)
    spu.mfc_put(4096, tag=0, local_offset=2048)
    for i in range(64):
        spu.mfc_get(4096, tag=4, local_offset=(i % 2) * 16384)
    spu.wait_tags([0, 4, 9])
"""
    findings = lint_only(source, "SL6")
    assert sorted(set(rule_ids(findings))) == ["SL601", "SL602", "SL603"]
