"""Gates for the coalescing fast engine (:mod:`repro.sim.engine_fast`).

The contract under test: for any spec, ``run_spec(spec, engine="fast")``
returns the *same bytes* as the reference engine — same gbps, nbytes,
cycles, seed — because the fast engine replays the reference heap
schedule minus provably-inert slots.  The reference engine is the
oracle; every mismatch here is a fast-engine bug by definition.
"""

import pytest

from repro.cell.chip import CellChip
from repro.cell.config import CellConfig
from repro.cell.dma import coalesce_bursts, uniform_bursts
from repro.core.experiment import RunSpec, run_spec
from repro.core.kernels import DmaWorkload
from repro.runtime.parallel import SweepExecutor
from repro.sim.core import SimulationError
from repro.sim.engine_fast import ENGINES, FastEnvironment, resolve_engine
from repro.sim.faults import FaultEngine
from repro.sim.sanitizer import DmaSanitizer
from repro.sim.trace import TraceRecorder


def spec_for(
    direction,
    mode="elem",
    n_spes=2,
    element_bytes=16384,
    n_elements=24,
    sync_every=None,
    unrolled=True,
    partner_logical=None,
    seed=1000,
):
    workload = DmaWorkload(
        direction=direction,
        element_bytes=element_bytes,
        n_elements=n_elements,
        mode=mode,
        sync_every=sync_every,
        partner_logical=partner_logical,
    )
    return RunSpec(
        config=CellConfig.paper_blade(),
        seed=seed,
        assignments=tuple((logical, workload) for logical in range(n_spes)),
        unrolled=unrolled,
    )


class TestResolveEngine:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine must be one of"):
            resolve_engine("turbo")

    def test_reference_passes_through(self):
        assert resolve_engine("reference") == "reference"

    def test_fast_without_observers_stays_fast(self):
        assert resolve_engine("fast") == "fast"

    def test_enabled_observer_downgrades_to_reference(self):
        # A freshly constructed recorder/engine/sanitizer is enabled
        # (the shared NULL_* singletons are the disabled ones).
        assert resolve_engine("fast", trace=TraceRecorder()) == "reference"
        faults = FaultEngine({"ecc_retry": 0.5}, seed=1)
        assert resolve_engine("fast", faults=faults) == "reference"
        assert resolve_engine("fast", sanitizer=DmaSanitizer()) == "reference"

    def test_downgrade_warns_once_on_stderr(self, capsys):
        # The downgrade must be announced — once per process, on stderr
        # — so nobody mistakes an observed run for a fast-engine
        # benchmark.  Later downgrades stay silent (a sweep resolves
        # the engine thousands of times).
        import repro.sim.engine_fast as engine_fast

        engine_fast._downgrade_warned = False
        assert resolve_engine("fast", trace=TraceRecorder()) == "reference"
        assert resolve_engine("fast", trace=TraceRecorder()) == "reference"
        assert (
            resolve_engine("fast", sanitizer=DmaSanitizer()) == "reference"
        )
        err = capsys.readouterr().err
        assert err.count("downgraded to 'reference'") == 1
        assert "trace" in err

    def test_no_warning_without_downgrade(self, capsys):
        import repro.sim.engine_fast as engine_fast

        engine_fast._downgrade_warned = False
        assert resolve_engine("fast") == "fast"
        assert resolve_engine("reference", trace=TraceRecorder()) == "reference"
        assert capsys.readouterr().err == ""

    def test_chip_applies_the_downgrade(self):
        # CellChip(engine="fast") with an enabled observer silently runs
        # the reference engine — same results, per-event resolution.
        faults = FaultEngine({"ecc_retry": 0.5}, seed=1)
        chip = CellChip(engine="fast", faults=faults)
        assert chip.engine == "reference"
        assert not isinstance(chip.env, FastEnvironment)

    def test_fast_environment_refuses_enabled_observers(self):
        faults = FaultEngine({"ecc_retry": 0.5}, seed=1)
        with pytest.raises(SimulationError, match="unobserved"):
            FastEnvironment(faults=faults)


class TestUniformBursts:
    @pytest.mark.parametrize("element_size", [16, 128, 1000, 2048, 4096, 16384])
    @pytest.mark.parametrize("n_elements", [1, 2, 7, 24, 100])
    def test_matches_generic_fold(self, element_size, n_elements):
        quantum = 2048
        assert uniform_bursts(element_size, n_elements, quantum) == (
            coalesce_bursts([element_size] * n_elements, quantum)
        )


class TestByteIdentity:
    """run_spec(spec, engine="fast") == run_spec(spec), across shapes."""

    CASES = [
        spec_for("get"),
        spec_for("put"),
        spec_for("copy"),
        spec_for("get", mode="list"),
        spec_for("put", mode="list"),
        spec_for("copy", mode="list"),
        # single SPE: long quiet stretches, maximal inline coalescing
        spec_for("copy", n_spes=1, n_elements=48, seed=7),
        # full blade under contention
        spec_for("copy", n_spes=8, n_elements=16, seed=2),
        # periodic tag synchronisation
        spec_for("get", n_spes=4, n_elements=32, sync_every=8, seed=3),
        # rolled issue loop
        spec_for("put", n_spes=2, unrolled=False, seed=5),
        # small transfers: the <128 B inefficiency penalty path
        spec_for("get", n_spes=3, element_bytes=64, n_elements=24, seed=6),
        # LS-to-LS: partner SPE instead of main memory
        spec_for("copy", n_spes=1, element_bytes=8192, partner_logical=1,
                 seed=16),
        spec_for("get", n_spes=1, mode="list", element_bytes=8192,
                 partner_logical=1, seed=14),
    ]

    @pytest.mark.parametrize(
        "spec",
        CASES,
        ids=lambda spec: "{}-{}-{}spe-{}B{}{}{}".format(
            spec.assignments[0][1].direction,
            spec.assignments[0][1].mode,
            len(spec.assignments),
            spec.assignments[0][1].element_bytes,
            "-sync" if spec.assignments[0][1].sync_every else "",
            "-rolled" if not spec.unrolled else "",
            "-ls" if spec.assignments[0][1].partner_logical is not None else "",
        ),
    )
    def test_fast_equals_reference(self, spec):
        assert run_spec(spec, engine="fast") == run_spec(spec)


class TestExecutorEngine:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine must be one of"):
            SweepExecutor(jobs=1, engine="turbo")

    def test_engines_are_the_public_tuple(self):
        assert ENGINES == ("reference", "fast")

    def test_fast_executor_samples_match_reference(self):
        specs = [spec_for("copy", seed=seed) for seed in (1000, 1001)]
        with SweepExecutor(jobs=1) as reference:
            expected = reference.samples(list(specs))
        with SweepExecutor(jobs=1, engine="fast") as fast:
            got = fast.samples(list(specs))
        assert got == expected
