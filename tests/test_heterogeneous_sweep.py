"""Heterogeneous sweeps through the fast engine.

The fast engine's exactness gate (tests/test_engine_fast.py) covers the
pinned shapes one by one; these tests drive *mixed* sweeps — different
shapes, SPE counts, directions, modes and sync cadences in one
executor pass — where some repetitions trigger the steady-state
fast-forward and others make it bail, and assert the whole batch stays
byte-identical to the reference engine, including through the
crash-safe journal replay path.
"""

from __future__ import annotations

import pytest

from repro.cell.config import CellConfig
from repro.core.experiment import RunSpec, run_spec, run_spec_report
from repro.core.kernels import DmaWorkload
from repro.runtime.journal import SweepJournal
from repro.runtime.parallel import SweepExecutor


def _spec(assignments, seed=1000, unrolled=True):
    return RunSpec(
        config=CellConfig.paper_blade(),
        seed=seed,
        assignments=tuple(assignments),
        unrolled=unrolled,
    )


def _storm(seed, n_elements=64):
    workload = DmaWorkload("copy", 4096, n_elements)
    return _spec(
        [(logical, workload) for logical in range(8)], seed=seed
    )


#: The mixed sweep: periodic single streams (the fast-forward fires),
#: the 8-SPE storm (aperiodic — the capture budget makes it bail),
#: sync-cadenced, list-mode, LS-to-LS pair and two-kernel shapes.
HETEROGENEOUS = [
    _spec([(0, DmaWorkload("get", 4096, 256))]),
    _spec([(0, DmaWorkload("put", 4096, 256))], seed=1001),
    _spec([(0, DmaWorkload("copy", 4096, 192))], seed=1002),
    _spec([(0, DmaWorkload("get", 4096, 256, sync_every=8))], seed=1003),
    _spec([(0, DmaWorkload("get", 4096, 128, mode="list"))], seed=1004),
    _spec([(0, DmaWorkload("get", 4096, 256, partner_logical=1))], seed=1005),
    _spec(
        [
            (0, DmaWorkload("get", 4096, 192)),
            (1, DmaWorkload("put", 8192, 96)),
        ],
        seed=1006,
    ),
    _spec([(0, DmaWorkload("get", 16384, 128))], seed=1007),
    _spec([(0, DmaWorkload("get", 128, 512))], seed=1008),
    _storm(1009),
]


def test_mixed_shapes_are_byte_identical():
    """Every heterogeneous repetition: fast == reference, sample for
    sample."""
    for spec in HETEROGENEOUS:
        assert run_spec(spec, "fast") == run_spec(spec, "reference"), (
            f"fast engine diverged on {spec.assignments}"
        )


def test_fastforward_fires_and_bails_across_the_mix():
    """The mix must exercise both fast-forward outcomes: the periodic
    streams warp, the chaotic storm gives up within its capture
    budget."""
    fired = 0
    bailed = 0
    for spec in HETEROGENEOUS:
        report = run_spec_report(spec, "fast")
        if report.windows_warped:
            fired += 1
            assert report.events_elided > 0
            assert report.cycles_warped > 0
        else:
            bailed += 1
            assert report.events_elided == 0
    assert fired >= 3, "expected the periodic shapes to warp"
    assert bailed >= 1, "expected at least the storm to bail"


def test_storm_bails_within_budget():
    """The aperiodic storm never warps — and its report says so."""
    report = run_spec_report(_storm(1000), "fast")
    assert report.windows_warped == 0
    assert report.events_elided == 0
    assert report.events_popped == report.events_modeled


def test_executor_sweep_matches_reference_engine():
    """One SweepExecutor pass over the whole mix, fast vs reference."""
    with SweepExecutor(jobs=1, cache=None, engine="fast") as fast:
        fast_samples = fast.samples(list(HETEROGENEOUS))
        assert fast.events_elided > 0  # some repetition warped
        assert fast.windows_warped > 0
        popped = fast.events_popped
    with SweepExecutor(jobs=1, cache=None, engine="reference") as ref:
        ref_samples = ref.samples(list(HETEROGENEOUS))
        assert ref.events_elided == 0
        assert ref.events_popped > popped  # coalescing + warps pop less
    assert fast_samples == ref_samples


def test_journal_replay_is_byte_identical_across_engines(tmp_path):
    """A fast-engine sweep journaled and replayed serves the exact
    samples a reference sweep produces — the --resume contract."""
    path = str(tmp_path / "journal.jsonl")
    with SweepJournal(path) as journal:
        with SweepExecutor(
            jobs=1, cache=None, engine="fast", journal=journal
        ) as executor:
            first = executor.samples(list(HETEROGENEOUS))
            assert executor.simulated == len(HETEROGENEOUS)
    # Replay: everything served from the journal, nothing simulated.
    with SweepJournal(path) as journal:
        with SweepExecutor(
            jobs=1, cache=None, engine="reference", journal=journal
        ) as executor:
            replayed = executor.samples(list(HETEROGENEOUS))
            assert executor.simulated == 0
            assert executor.journal_hits == len(HETEROGENEOUS)
            # Journal hits run no engine, so no event accounting.
            assert executor.events_popped == 0
    assert replayed == first
    assert first == [run_spec(spec, "reference") for spec in HETEROGENEOUS]


@pytest.mark.parametrize("sync_every", [1, 4, 32])
def test_sync_cadences_stay_identical(sync_every):
    """Sync boundaries interact with the warp margin (the fingerprint
    carries _since_sync only under a cadence) — every cadence must stay
    exact."""
    spec = _spec(
        [(0, DmaWorkload("get", 4096, 192, sync_every=sync_every))]
    )
    assert run_spec(spec, "fast") == run_spec(spec, "reference")


def test_unrolled_and_rolled_loops_stay_identical():
    """The warp must respect the kernel's loop structure flag."""
    for unrolled in (True, False):
        spec = _spec(
            [(0, DmaWorkload("get", 4096, 256))], unrolled=unrolled
        )
        assert run_spec(spec, "fast") == run_spec(spec, "reference")
