"""Unit tests for the fault-tolerant executor surface: argument
validation, retry policy, the partial-results contract, and the
jobs-resolution rules shared with the CLI."""

import pytest

from repro import reproduce
from repro.core.experiment import ExperimentResult
from repro.core.results import SweepTable
from repro.runtime.parallel import SweepExecutor, default_jobs
from repro.runtime.resilience import (
    HostRetryPolicy,
    SpecFailure,
    SweepError,
    SweepFailureReport,
)

from tests.test_parallel_and_cache import make_spec


class TestArgumentValidation:
    @pytest.mark.parametrize("bad", [0, -2, 2.5, "3", True, False])
    def test_jobs_must_be_a_positive_integer(self, bad):
        with pytest.raises(ValueError, match="jobs must be a positive integer"):
            SweepExecutor(jobs=bad)

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "4", True])
    def test_maxtasksperchild_must_be_a_positive_integer(self, bad):
        with pytest.raises(ValueError, match="maxtasksperchild"):
            SweepExecutor(jobs=1, maxtasksperchild=bad)

    def test_policy_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError, match="timeout_s"):
            HostRetryPolicy(timeout_s=0)
        with pytest.raises(ValueError, match="timeout_s"):
            HostRetryPolicy(timeout_s=-1.0)

    def test_policy_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            HostRetryPolicy(retries=-1)

    def test_policy_rejects_shrinking_backoff(self):
        with pytest.raises(ValueError, match="backoff"):
            HostRetryPolicy(backoff=0.5)

    def test_policy_backoff_schedule(self):
        policy = HostRetryPolicy(timeout_s=10.0, retries=3, backoff=2.0)
        assert policy.timeout_for(0) == 10.0
        assert policy.timeout_for(1) == 20.0
        assert policy.timeout_for(2) == 40.0
        assert HostRetryPolicy().timeout_for(5) is None


class TestResolveJobs:
    def test_none_defaults_to_machine(self):
        assert reproduce.resolve_jobs(None) == default_jobs()

    def test_nonpositive_rejected(self):
        for bad in (0, -1):
            with pytest.raises(ValueError, match="positive integer"):
                reproduce.resolve_jobs(bad)

    def test_over_ask_is_clamped_with_warning(self, capsys):
        available = default_jobs()
        assert reproduce.resolve_jobs(available + 7) == available
        out = capsys.readouterr().out
        assert "warning" in out and "clamping" in out

    def test_in_range_passes_through(self):
        assert reproduce.resolve_jobs(1) == 1


def _flaky_target(counts):
    """Fails each seed's first attempt; counts attempts per seed."""

    def target(spec):
        counts[spec.seed] = counts.get(spec.seed, 0) + 1
        if counts[spec.seed] == 1:
            raise RuntimeError(f"flaky: first attempt for seed {spec.seed}")
        from repro.core.experiment import run_spec

        return run_spec(spec)

    return target


def _always_fail(spec):
    raise RuntimeError(f"doomed: seed {spec.seed}")


class TestSerialRetries:
    def test_inline_retry_recovers_flaky_specs(self):
        specs = [make_spec(seed, n_elements=4, n_spes=1) for seed in (1, 2)]
        with SweepExecutor(jobs=1) as clean:
            expected = clean.samples(list(specs))
        counts = {}
        with SweepExecutor(jobs=1, target=_flaky_target(counts)) as executor:
            got = executor.samples(list(specs))
        assert got == expected
        assert executor.retried == 2
        assert "retried=2" in executor.describe()

    def test_exhausted_retries_reraise_the_worker_exception(self):
        specs = [make_spec(1, n_elements=4, n_spes=1)]
        policy = HostRetryPolicy(retries=1)
        with SweepExecutor(jobs=1, policy=policy, target=_always_fail) as executor, \
                pytest.raises(RuntimeError, match="doomed: seed 1"):
            executor.samples(list(specs))
        assert executor.retried == 1

    def test_partial_mode_yields_holes_and_failures(self):
        specs = [make_spec(seed, n_elements=4, n_spes=1) for seed in (1, 2, 3)]
        with SweepExecutor(jobs=1) as clean:
            expected = clean.samples(list(specs))

        def fail_middle(spec):
            if spec.seed == 2:
                raise RuntimeError("chaos: seed 2 always fails")
            from repro.core.experiment import run_spec

            return run_spec(spec)

        policy = HostRetryPolicy(retries=1)
        with SweepExecutor(jobs=1, policy=policy, target=fail_middle,
                           partial_results=True) as executor:
            got = executor.samples(list(specs))
        assert got[0] == expected[0] and got[2] == expected[2]
        assert got[1] is None
        assert len(executor.failures) == 1
        failure = executor.failures[0]
        assert failure.seed == 2 and failure.attempts == 2
        assert "chaos" in failure.cause
        assert "incomplete: 1 repetition(s) failed" in executor.describe()


class TestPartialRun:
    def test_all_failed_cell_is_dropped_with_note(self):
        """run() reduces cells over the survivors; a cell whose every
        repetition failed is dropped and the table notes it."""

        class _Exp:
            executor = None

            def run(self):
                table = SweepTable(name="t", axes=("k",))
                table.put((0,), self.executor.stats(
                    [make_spec(1, n_elements=4, n_spes=1)]
                ))
                table.put((1,), self.executor.stats(
                    [make_spec(2, n_elements=4, n_spes=1)]
                ))
                return ExperimentResult(
                    name="partial", description="", tables={"t": table}
                )

        def fail_seed_two(spec):
            if spec.seed == 2:
                raise RuntimeError("chaos")
            from repro.core.experiment import run_spec

            return run_spec(spec)

        policy = HostRetryPolicy(retries=0)
        with SweepExecutor(jobs=1, policy=policy, target=fail_seed_two,
                           partial_results=True) as executor:
            result = executor.run(_Exp())
        table = result.tables["t"]
        assert (0,) in table.cells
        assert (1,) not in table.cells
        assert any("cell dropped" in note for note in result.notes)
        assert executor.failures


class TestFailureReport:
    def test_report_summary_names_every_failure(self):
        report = SweepFailureReport(
            failures=[
                SpecFailure(index=3, seed=1003, attempts=3,
                            cause="timeout after 2.0s", error=None),
                SpecFailure(index=5, seed=1005, attempts=1,
                            cause="worker lost", error=None),
            ],
            total=10,
            completed=8,
        )
        text = report.summary()
        assert "8/10" in text
        assert "1003" in text and "1005" in text
        assert "timeout" in text and "worker lost" in text

    def test_sweep_error_carries_the_report(self):
        report = SweepFailureReport(failures=[], total=1, completed=1)
        error = SweepError(report)
        assert error.report is report
