"""Interval domain, abstract evaluation, and interprocedural summaries."""

import ast

from repro.analysis.lint import (
    TOP,
    Interval,
    ModuleModel,
    analyze_intervals,
    build_cfg,
    eval_expr,
)
from repro.analysis.lint.dataflow import (
    join_env,
    range_bounds,
    range_trip_count,
    transfer_stmt,
    widen_env,
)
from repro.analysis.lint.summaries import IssueEffect, WaitEffect


def interval_of(source_expr, env=None, module=None):
    return eval_expr(
        ast.parse(source_expr, mode="eval").body, env or {}, module
    )


def model_of(source):
    return ModuleModel(ast.parse(source))


# ---------------------------------------------------------------------------
# Interval lattice
# ---------------------------------------------------------------------------

def test_join_takes_the_hull():
    assert Interval.const(3).join(Interval.const(7)) == Interval(3, 7)
    assert Interval(0, 5).join(Interval(2, 9)) == Interval(0, 9)


def test_join_with_top_is_top():
    assert Interval.const(3).join(TOP).is_top
    assert TOP.join(Interval.const(3)).is_top


def test_widen_sends_moving_bounds_to_infinity():
    old, new = Interval(0, 4), Interval(0, 8)
    widened = old.widen(new)
    assert widened.lo == 0 and widened.hi is None
    # A stable bound survives widening.
    assert Interval(0, 4).widen(Interval(0, 4)) == Interval(0, 4)
    assert Interval(0, 4).widen(Interval(-2, 4)).lo is None


def test_arithmetic_on_constants_is_exact():
    two, three = Interval.const(2), Interval.const(3)
    assert two.add(three) == Interval.const(5)
    assert two.sub(three) == Interval.const(-1)
    assert two.mul(three) == Interval.const(6)
    assert Interval.const(7).floordiv(two) == Interval.const(3)
    assert Interval.const(7).mod(three) == Interval.const(1)


def test_mod_by_positive_constant_bounds_to_modulus():
    assert Interval(0, None).mod(Interval.const(4)) == Interval(0, 3)
    # Already inside [0, k): stays as-is (keeps singleton precision).
    assert Interval(1, 2).mod(Interval.const(4)) == Interval(1, 2)
    # Unknown modulus: everything is possible.
    assert Interval.const(5).mod(TOP).is_top


def test_mul_by_nonnegative_constant_scales_partial_bounds():
    assert Interval(0, None).mul(Interval.const(4)) == Interval(0, None)
    assert Interval(0, 3).mul(Interval.const(128)) == Interval(0, 384)


def test_interval_env_join_and_widen():
    joined = join_env({"a": Interval.const(1)}, {"a": Interval.const(5)})
    assert joined["a"] == Interval(1, 5)
    # A variable bound on only one path is unknown at the join.
    one_sided = join_env({"a": Interval.const(1)}, {})
    assert one_sided["a"].is_top
    widened = widen_env(
        {"a": Interval(0, 4)}, {"a": Interval(0, 8)}
    )
    assert widened["a"] == Interval(0, None)


# ---------------------------------------------------------------------------
# Abstract expression evaluation
# ---------------------------------------------------------------------------

def test_eval_constants_and_arithmetic():
    assert interval_of("16384 // 2") == Interval.const(8192)
    assert interval_of("-(4 * 3)") == Interval.const(-12)
    assert interval_of("1 << 10") == Interval.const(1024)


def test_eval_names_come_from_env_then_module_constants():
    module = model_of("NBUF = 2\n")
    assert interval_of("NBUF", module=module) == Interval.const(2)
    assert interval_of(
        "NBUF", env={"NBUF": Interval.const(9)}, module=module
    ) == Interval.const(9)
    assert interval_of("mystery", module=module).is_top


def test_eval_module_constant_tuple_subscripts():
    module = model_of("TAGS = (3, 5)\n")
    assert interval_of("TAGS[0]", module=module) == Interval.const(3)
    assert interval_of("TAGS[1]", module=module) == Interval.const(5)
    # Unknown index: join of all elements.
    assert interval_of(
        "TAGS[i]", env={"i": TOP}, module=module
    ) == Interval(3, 5)


def test_eval_ifexp_joins_and_builtins_fold():
    assert interval_of("4 if x else 6", env={"x": TOP}) == Interval(4, 6)
    assert interval_of("min(4, 9)") == Interval.const(4)
    assert interval_of("max(4, 9)") == Interval.const(9)
    assert interval_of("abs(-5)") == Interval.const(5)
    assert interval_of("len(data)", env={}).lo == 0


def test_eval_unknown_calls_are_top():
    assert interval_of("window.offset(3)").is_top
    assert interval_of("helper(1)").is_top  # no module model


# ---------------------------------------------------------------------------
# Loop helpers
# ---------------------------------------------------------------------------

def iterator_of(source):
    loop = ast.parse(source).body[0]
    assert isinstance(loop, ast.For)
    return loop.iter


def test_range_bounds_cover_start_stop_step():
    assert range_bounds(iterator_of("for i in range(8): pass"), {}) == \
        Interval(0, 7)
    assert range_bounds(iterator_of("for i in range(2, 8): pass"), {}) == \
        Interval(2, 7)
    assert range_bounds(iterator_of("for i in range(8, 0, -2): pass"), {}) \
        == Interval(1, 8)
    assert range_bounds(iterator_of("for i in items: pass"), {}) is None


def test_range_trip_count_exact_and_bounded():
    assert range_trip_count(iterator_of("for i in range(8): pass"), {}) == \
        Interval.const(8)
    assert range_trip_count(iterator_of("for i in range(2, 8, 2): pass"),
                            {}) == Interval.const(3)
    bounded = range_trip_count(
        iterator_of("for i in range(n): pass"), {"n": Interval(4, 16)}
    )
    assert bounded == Interval(4, 16)
    assert range_trip_count(
        iterator_of("for i in range(n): pass"), {"n": TOP}
    ) is None or range_trip_count(
        iterator_of("for i in range(n): pass"), {"n": TOP}
    ).lo is None


def test_transfer_stmt_assign_augassign_tuple():
    env = {}
    module = None
    transfer_stmt(ast.parse("x = 4").body[0], env, module)
    assert env["x"] == Interval.const(4)
    transfer_stmt(ast.parse("x += 2").body[0], env, module)
    assert env["x"] == Interval.const(6)
    transfer_stmt(ast.parse("a, b = 1, x").body[0], env, module)
    assert env["a"] == Interval.const(1)
    assert env["b"] == Interval.const(6)
    transfer_stmt(ast.parse("del x").body[0], env, module)
    assert "x" not in env


# ---------------------------------------------------------------------------
# Fixpoint over a CFG
# ---------------------------------------------------------------------------

def fixpoint_envs(source):
    tree = ast.parse(source)
    fn = tree.body[0]
    cfg = build_cfg(fn)
    return cfg, analyze_intervals(cfg, module=ModuleModel(tree))


def test_fixpoint_propagates_constants_through_branches():
    cfg, envs = fixpoint_envs(
        "def f(x):\n"
        "    a = 4\n"
        "    if x:\n"
        "        b = a * 2\n"
        "    else:\n"
        "        b = a * 4\n"
        "    c = b\n"
    )
    exit_env = envs[cfg.exit]
    assert exit_env["a"] == Interval.const(4)
    assert exit_env["b"] == Interval(8, 16)
    assert exit_env["c"] == Interval(8, 16)


def test_fixpoint_binds_for_targets_to_range_bounds():
    cfg, envs = fixpoint_envs(
        "def f():\n"
        "    for i in range(8):\n"
        "        j = i * 2\n"
    )
    body = next(
        b for b in cfg.blocks.values() if any(
            s.lineno == 3 for s in b.stmts
        )
    )
    env = envs[body.id]
    assert env["i"] == Interval(0, 7)


def test_fixpoint_widens_a_counting_loop_instead_of_diverging():
    cfg, envs = fixpoint_envs(
        "def f(x):\n"
        "    n = 0\n"
        "    while x:\n"
        "        n = n + 1\n"
        "    y = n\n"
    )
    exit_env = envs[cfg.exit]
    # n grows unboundedly: widening must send the upper bound to +inf
    # while the stable lower bound (0) survives.
    assert exit_env["n"].lo == 0
    assert exit_env["n"].hi is None


# ---------------------------------------------------------------------------
# Interprocedural summaries
# ---------------------------------------------------------------------------

def test_return_interval_binds_call_arguments():
    module = model_of(
        "def double(x):\n"
        "    return x * 2\n"
    )
    call = ast.parse("double(8)", mode="eval").body
    assert module.return_interval("double", call, {}) == Interval.const(16)


def test_return_interval_joins_branches_and_uses_defaults():
    module = model_of(
        "def pick(flag, fallback=6):\n"
        "    if flag:\n"
        "        return 4\n"
        "    return fallback\n"
    )
    call = ast.parse("pick(f)", mode="eval").body
    assert module.return_interval("pick", call, {}) == Interval(4, 6)
    call2 = ast.parse("pick(f, fallback=10)", mode="eval").body
    assert module.return_interval("pick", call2, {}) == Interval(4, 10)


def test_return_interval_threads_through_eval_expr():
    module = model_of(
        "HALF = 8192\n"
        "def window(i):\n"
        "    return (i % 2) * HALF\n"
    )
    value = interval_of(
        "window(i)", env={"i": Interval(0, 63)}, module=module
    )
    assert value == Interval(0, 8192)


def test_recursion_and_depth_cap_return_top():
    module = model_of(
        "def a(x):\n"
        "    return a(x)\n"
    )
    call = ast.parse("a(1)", mode="eval").body
    assert module.return_interval("a", call, {}).is_top


def test_dma_effects_linearise_a_helper_body():
    module = model_of(
        "def _fill(spu, base):\n"
        "    spu.mfc_get(4096, tag=1, local_offset=base)\n"
        "    spu.wait_tags([1])\n"
    )
    call = ast.parse("_fill(spu, 8192)", mode="eval").body
    effects = module.dma_effects("_fill", call, {})
    assert [type(e) for e in effects] == [IssueEffect, WaitEffect]
    issue, wait = effects
    assert issue.kind == "get"
    assert issue.local == Interval.const(8192)
    assert issue.tag == Interval.const(1)
    assert wait.tags == (1,)


def test_dma_effects_mark_branch_and_loop_context():
    module = model_of(
        "def _maybe(spu, flag):\n"
        "    if flag:\n"
        "        spu.mfc_get(4096, tag=0)\n"
        "    for _ in range(4):\n"
        "        spu.mfc_put(4096, tag=2)\n"
    )
    call = ast.parse("_maybe(spu, f)", mode="eval").body
    effects = module.dma_effects("_maybe", call, {})
    conditional_get = next(e for e in effects if e.kind == "get")
    repeated_put = next(e for e in effects if e.kind == "put")
    assert conditional_get.conditional
    assert repeated_put.repeated


def test_dma_effects_give_up_on_unknown_spu_escapes():
    module = model_of(
        "def _laundered(spu):\n"
        "    mystery(spu)\n"
    )
    call = ast.parse("_laundered(spu)", mode="eval").body
    assert module.dma_effects("_laundered", call, {}) is None


def test_dma_effects_expand_nested_helpers():
    module = model_of(
        "def _inner(spu, off):\n"
        "    spu.mfc_get(2048, tag=0, local_offset=off)\n"
        "def _outer(spu):\n"
        "    _inner(spu, 4096)\n"
    )
    call = ast.parse("_outer(spu)", mode="eval").body
    effects = module.dma_effects("_outer", call, {})
    assert len(effects) == 1
    assert effects[0].local == Interval.const(4096)


def test_module_constants_collect_ints_and_tuples():
    module = model_of(
        "NBUF = 2\n"
        "NEG = -3\n"
        "TAGS = (0, 1)\n"
        "NAME = 'x'\n"
        "MIXED = (1, 'a')\n"
    )
    assert module.constant_interval("NBUF") == Interval.const(2)
    assert module.constant_interval("NEG") == Interval.const(-3)
    assert module.constant_tuple("TAGS") == (0, 1)
    assert module.constant_interval("NAME").is_top
    assert module.constant_tuple("MIXED") is None
