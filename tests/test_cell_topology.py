"""Unit tests for the EIB ring topology and the SPE mapping."""

import pytest

from repro.cell import ConfigError, RingTopology, SpeMapping
from repro.cell.topology import (
    CLOCKWISE,
    COUNTERCLOCKWISE,
)


def test_default_order_has_twelve_unique_elements():
    topology = RingTopology()
    assert len(topology) == 12
    assert len(set(topology.order)) == 12
    assert "MIC" in topology
    assert "PPE" in topology
    assert topology.spe_nodes() == [f"SPE{i}" for i in range(8)]


def test_hops_both_directions_sum_to_ring_size():
    topology = RingTopology()
    for src in topology.order:
        for dst in topology.order:
            if src == dst:
                continue
            cw = topology.hops(src, dst, CLOCKWISE)
            ccw = topology.hops(src, dst, COUNTERCLOCKWISE)
            assert cw + ccw == len(topology)


def test_path_length_equals_hops():
    topology = RingTopology()
    assert len(topology.path("PPE", "MIC", COUNTERCLOCKWISE)) == topology.hops(
        "PPE", "MIC", COUNTERCLOCKWISE
    )


def test_adjacent_path_is_single_span():
    topology = RingTopology()
    # PPE is index 0, MIC index 11: one hop counterclockwise.
    assert topology.path("PPE", "MIC", COUNTERCLOCKWISE) == (11,)
    assert topology.path("MIC", "PPE", CLOCKWISE) == (11,)


def test_paths_in_opposite_directions_cover_disjoint_spans():
    topology = RingTopology()
    cw = set(topology.path("PPE", "IOIF0", CLOCKWISE))
    ccw = set(topology.path("PPE", "IOIF0", COUNTERCLOCKWISE))
    assert cw | ccw == set(range(12))
    assert cw & ccw == set()


def test_directions_ordered_shortest_first():
    topology = RingTopology()
    directions = topology.directions_by_distance("PPE", "SPE1")
    assert directions[0] == CLOCKWISE  # 1 hop CW vs 11 CCW
    # The halfway case offers both directions.
    src, dst = topology.order[0], topology.order[6]
    assert len(topology.directions_by_distance(src, dst)) == 2


def test_self_transfer_rejected():
    topology = RingTopology()
    with pytest.raises(ConfigError):
        topology.path("MIC", "MIC", CLOCKWISE)


def test_unknown_node_rejected():
    topology = RingTopology()
    with pytest.raises(ConfigError):
        topology.index("SPE9")


def test_bad_direction_rejected():
    topology = RingTopology()
    with pytest.raises(ConfigError):
        topology.hops("PPE", "MIC", 2)


def test_duplicate_order_rejected():
    with pytest.raises(ConfigError):
        RingTopology(("A", "B", "A"))


def test_tiny_ring_rejected():
    with pytest.raises(ConfigError):
        RingTopology(("A", "B"))


class TestSpeMapping:
    def test_identity(self):
        mapping = SpeMapping.identity(8)
        assert mapping.node(0) == "SPE0"
        assert mapping.node(7) == "SPE7"

    def test_random_is_seed_deterministic(self):
        assert SpeMapping.random(7).physical_of == SpeMapping.random(7).physical_of

    def test_random_is_a_permutation(self):
        for seed in range(20):
            mapping = SpeMapping.random(seed)
            assert sorted(mapping.physical_of) == list(range(8))

    def test_different_seeds_differ_somewhere(self):
        mappings = {SpeMapping.random(seed).physical_of for seed in range(10)}
        assert len(mappings) > 1

    def test_non_permutation_rejected(self):
        with pytest.raises(ConfigError):
            SpeMapping((0, 0, 1, 2, 3, 4, 5, 6))

    def test_out_of_range_logical_rejected(self):
        mapping = SpeMapping.identity(8)
        with pytest.raises(ConfigError):
            mapping.node(8)

    def test_len(self):
        assert len(SpeMapping.identity(4)) == 4
