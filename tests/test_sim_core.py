"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(5)
        log.append(env.now)
        yield env.timeout(7)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [5, 12]


def test_timeout_value_is_delivered():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(3, value="hello")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_simultaneous_events_fire_fifo():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(10)
        order.append(name)

    for name in ["a", "b", "c"]:
        env.process(proc(env, name))
    env.run()
    assert order == ["a", "b", "c"]


def test_process_return_value_becomes_event_value():
    env = Environment()

    def child(env):
        yield env.timeout(4)
        return 42

    def parent(env, results):
        value = yield env.process(child(env))
        results.append(value)

    results = []
    env.process(parent(env, results))
    env.run()
    assert results == [42]


def test_waiting_on_already_triggered_event():
    env = Environment()
    results = []

    def proc(env):
        event = env.event()
        event.succeed("early")
        value = yield event
        results.append((env.now, value))

    env.process(proc(env))
    env.run()
    assert results == [(0, "early")]


def test_event_cannot_trigger_twice():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_run_until_time_stops_clock_there():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(10)

    env.process(proc(env))
    env.run(until=35)
    assert env.now == 35


def test_run_until_event_returns_its_value():
    env = Environment()
    done = env.event()

    def proc(env):
        yield env.timeout(9)
        done.succeed("finished")

    env.process(proc(env))
    assert env.run(until=done) == "finished"
    assert env.now == 9


def test_run_until_event_that_never_fires_raises():
    env = Environment()
    done = env.event()
    with pytest.raises(SimulationError):
        env.run(until=done)


def test_failed_event_raises_in_waiter():
    env = Environment()
    caught = []

    def failer(env, event):
        yield env.timeout(1)
        event.fail(ValueError("boom"))

    def waiter(env, event):
        try:
            yield event
        except ValueError as exc:
            caught.append(str(exc))

    event = env.event()
    env.process(failer(env, event))
    env.process(waiter(env, event))
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_propagates():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_yielding_non_event_is_an_error():
    env = Environment()

    def bad(env):
        yield 17

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_interrupt_wakes_process_with_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def interrupter(env, victim):
        yield env.timeout(5)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(5, "wake up")]


def test_interrupting_dead_process_is_an_error():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_all_of_waits_for_every_event():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(5, value="a")
        t2 = env.timeout(10, value="b")
        values = yield AllOf(env, [t1, t2])
        results.append((env.now, sorted(values)))

    env.process(proc(env))
    env.run()
    assert results == [(10, ["a", "b"])]


def test_any_of_fires_on_first_event():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(5, value="fast")
        t2 = env.timeout(50, value="slow")
        values = yield AnyOf(env, [t1, t2])
        results.append((env.now, values))

    env.process(proc(env))
    env.run()
    assert results[0][0] == 5
    assert "fast" in results[0][1]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7


def test_deterministic_replay():
    """Two identical simulations produce identical traces."""

    def build_and_run():
        env = Environment()
        trace = []

        def worker(env, name, period):
            for _ in range(5):
                yield env.timeout(period)
                trace.append((env.now, name))

        env.process(worker(env, "x", 3))
        env.process(worker(env, "y", 4))
        env.run()
        return trace

    assert build_and_run() == build_and_run()
