"""Unit tests for the local store allocator and the mailboxes."""

import pytest

from repro.cell.config import LocalStoreConfig
from repro.cell.errors import LocalStoreError, MailboxError
from repro.cell.local_store import LocalStore
from repro.cell.mailbox import Mailbox, MailboxPair
from repro.sim import Environment


class TestLocalStore:
    def test_alloc_and_lookup(self):
        ls = LocalStore()
        buffer = ls.alloc(16384, name="dma_in")
        assert buffer.offset == 0
        assert buffer.end == 16384
        assert ls.get("dma_in") is buffer
        assert "dma_in" in ls

    def test_alignment_respected(self):
        ls = LocalStore()
        ls.alloc(100, name="odd")
        aligned = ls.alloc(64, name="vec", align=128)
        assert aligned.offset % 128 == 0

    def test_capacity_enforced(self):
        ls = LocalStore()
        ls.alloc(200 * 1024, name="big")
        with pytest.raises(LocalStoreError):
            ls.alloc(100 * 1024, name="too_much")

    def test_exact_fill_allowed(self):
        ls = LocalStore()
        ls.alloc(ls.size, name="everything")
        assert ls.remaining == 0

    def test_duplicate_name_rejected(self):
        ls = LocalStore()
        ls.alloc(16, name="x")
        with pytest.raises(LocalStoreError):
            ls.alloc(16, name="x")

    def test_anonymous_names_unique(self):
        ls = LocalStore()
        a = ls.alloc(16)
        b = ls.alloc(16)
        assert a.name != b.name

    def test_reset_releases_everything(self):
        ls = LocalStore()
        ls.alloc(1024, name="x")
        ls.reset()
        assert ls.used == 0
        assert "x" not in ls
        ls.alloc(1024, name="x")

    def test_invalid_requests(self):
        ls = LocalStore()
        with pytest.raises(LocalStoreError):
            ls.alloc(0)
        with pytest.raises(LocalStoreError):
            ls.alloc(16, align=3)
        with pytest.raises(LocalStoreError):
            ls.get("missing")

    def test_custom_config_size(self):
        ls = LocalStore(LocalStoreConfig(size_bytes=4096))
        assert ls.size == 4096


class TestMailbox:
    def test_write_then_read(self):
        env = Environment()
        box = Mailbox(env, depth=4)
        box.write(42)
        event = box.read()
        assert event.triggered and event.value == 42

    def test_depth_blocks_writers(self):
        env = Environment()
        box = Mailbox(env, depth=1)
        log = []

        def writer(env):
            yield box.write(1)
            yield box.write(2)
            log.append(env.now)

        def reader(env):
            yield env.timeout(10)
            message = yield box.read()
            log.append(("read", message, env.now))

        env.process(writer(env))
        env.process(reader(env))
        env.run()
        assert ("read", 1, 10) in log
        assert 10 in log  # second write completed when space appeared

    def test_blocking_read_waits_for_message(self):
        env = Environment()
        box = Mailbox(env, depth=4)
        got = []

        def reader(env):
            message = yield box.read()
            got.append((env.now, message))

        def writer(env):
            yield env.timeout(33)
            yield box.write(7)

        env.process(reader(env))
        env.process(writer(env))
        env.run()
        assert got == [(33, 7)]

    def test_try_operations(self):
        env = Environment()
        box = Mailbox(env, depth=1)
        assert box.try_read() is None
        assert box.try_write(5)
        assert not box.try_write(6)
        assert box.try_read() == 5

    def test_message_range_enforced(self):
        env = Environment()
        box = Mailbox(env, depth=1)
        with pytest.raises(MailboxError):
            box.write(-1)
        with pytest.raises(MailboxError):
            box.write(2 ** 32)
        with pytest.raises(MailboxError):
            box.write("hello")

    def test_depth_validation(self):
        with pytest.raises(MailboxError):
            Mailbox(Environment(), depth=0)

    def test_pair_has_architectural_depths(self):
        pair = MailboxPair(Environment(), "SPE3")
        assert pair.inbound.depth == 4
        assert pair.outbound.depth == 1
        assert pair.inbound.name == "SPE3.in"
