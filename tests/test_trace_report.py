"""End-to-end tests for the ``repro.trace_report`` CLI."""

import json

from repro import trace_report
from repro.cell.chip import CellChip
from repro.cell.topology import SpeMapping
from repro.core.kernels import DmaWorkload, dma_stream_kernel
from repro.libspe import SpeContext
from repro.sim import TraceRecorder, TraceSummary, write_chrome_trace


def write_showcase_trace(path, tamper_counters=False):
    recorder = TraceRecorder()
    chip = CellChip(mapping=SpeMapping.random(3, 8), trace=recorder)
    workload = DmaWorkload(direction="get", element_bytes=4096, n_elements=24)
    SpeContext(chip, 0).load(dma_stream_kernel, workload, {}, None)
    workload = DmaWorkload(
        direction="copy", element_bytes=16384, n_elements=24, partner_logical=2
    )
    SpeContext(chip, 1).load(dma_stream_kernel, workload, {}, chip.spe(2))
    chip.run()
    counters = {
        "grants": chip.eib.grants,
        "conflicts": chip.eib.conflicts,
        "wait_cycles": chip.eib.wait_cycles,
        "bytes_moved": chip.eib.bytes_moved,
    }
    if tamper_counters:
        counters["bytes_moved"] += 1
    write_chrome_trace(
        str(path),
        recorder.records,
        cpu_hz=chip.config.clock.cpu_hz,
        metadata={"counters": counters},
    )
    return chip, recorder


def test_report_reproduces_counters_and_exits_zero(tmp_path, capsys):
    path = tmp_path / "trace.json"
    chip, _recorder = write_showcase_trace(path)
    assert trace_report.main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "reproduced exactly from the trace stream" in out
    assert f"bytes_moved: {chip.eib.bytes_moved}" in out
    assert "== per ring ==" in out
    assert "== per flow ==" in out
    assert "== memory banks ==" in out
    assert "== MFC queues ==" in out
    assert "== saturation claims ==" in out


def test_report_flags_counter_mismatch(tmp_path, capsys):
    path = tmp_path / "trace.json"
    write_showcase_trace(path, tamper_counters=True)
    assert trace_report.main([str(path)]) == 1
    assert "MISMATCH" in capsys.readouterr().out


def test_interval_flag_prints_timeline(tmp_path, capsys):
    path = tmp_path / "trace.json"
    write_showcase_trace(path)
    assert trace_report.main([str(path), "--interval", "50000"]) == 0
    assert "== flow timeline (bytes per 50000 cycles) ==" in capsys.readouterr().out


def test_report_handles_trace_without_metadata(tmp_path, capsys):
    path = tmp_path / "bare.json"
    _chip, recorder = write_showcase_trace(tmp_path / "full.json")
    write_chrome_trace(str(path), recorder.records, cpu_hz=3.2e9)
    assert trace_report.main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "reproduced exactly" not in out  # nothing to check against
    assert "== EIB counters ==" in out


def test_render_report_is_pure(tmp_path):
    _chip, recorder = write_showcase_trace(tmp_path / "trace.json")
    summary = TraceSummary(recorder.records)
    text_a = trace_report.render_report(summary, cpu_hz=2.1e9)
    text_b = trace_report.render_report(summary, cpu_hz=2.1e9)
    assert text_a == text_b


def test_written_file_is_plain_json(tmp_path):
    path = tmp_path / "trace.json"
    write_showcase_trace(path)
    with open(path) as handle:
        decoded = json.load(handle)
    assert "traceEvents" in decoded
    assert decoded["otherData"]["counters"]["bytes_moved"] > 0
