"""Unit tests for the EIB model: timing, ports, rings, arbitration."""

import math

import pytest

from repro.cell import CellChip, ConfigError
from repro.cell.eib import HOP_LATENCY_CYCLES, Ring
from repro.cell.topology import CLOCKWISE, SpeMapping


def run_transfer(chip, src, dst, nbytes):
    done = {}

    def mover(env):
        start = env.now
        yield from chip.eib.transfer(src, dst, nbytes)
        done["cycles"] = env.now - start

    chip.env.process(mover(chip.env))
    chip.run()
    return done["cycles"]


def expected_single_grant_cycles(config, src, dst, chunk, hops):
    rate = min(
        config.node_rate_bytes_per_cpu_cycle(src),
        config.node_rate_bytes_per_cpu_cycle(dst),
    )
    return (
        config.eib.arbitration_cycles
        + hops * HOP_LATENCY_CYCLES
        + math.ceil(chunk / rate)
    )


def test_single_quantum_transfer_timing(chip):
    # SPE0 (index 10) to MIC (index 11): one hop clockwise.
    cycles = run_transfer(chip, "SPE0", "MIC", 2048)
    assert cycles == expected_single_grant_cycles(chip.config, "SPE0", "MIC", 2048, 1)


def test_transfer_splits_into_grant_quanta(chip):
    quantum = chip.config.eib.grant_quantum_bytes
    one = run_transfer(chip, "SPE0", "MIC", quantum)
    chip2 = CellChip(config=chip.config)
    four = run_transfer(chip2, "SPE0", "MIC", 4 * quantum)
    assert four == 4 * one


def test_ioif_transfers_run_at_seven_gbps(chip):
    nbytes = 7_000_000
    cycles = run_transfer(chip, "MIC", "IOIF0", nbytes)
    gbps = chip.config.clock.gbps(nbytes, cycles)
    assert gbps == pytest.approx(7.0, rel=0.05)


def test_distance_adds_latency(config):
    near = run_transfer(CellChip(config=config), "SPE0", "MIC", 2048)
    far = run_transfer(CellChip(config=config), "SPE1", "IOIF0", 2048)
    assert far > near


def test_out_port_is_exclusive(chip):
    """Two transfers from the same source serialize on its on-ramp."""
    done = []

    def mover(env, dst):
        yield from chip.eib.transfer("SPE0", dst, 2048)
        done.append((dst, env.now))

    chip.env.process(mover(chip.env, "SPE1"))
    chip.env.process(mover(chip.env, "SPE2"))
    chip.run()
    finish_times = sorted(t for _dst, t in done)
    single = expected_single_grant_cycles(chip.config, "SPE0", "SPE1", 2048, 1)
    # The second transfer cannot start before the first releases the port.
    assert finish_times[1] >= finish_times[0] + single - HOP_LATENCY_CYCLES * 6


def test_disjoint_transfers_run_concurrently(chip):
    """Transfers with disjoint ports and spans overlap fully."""
    done = {}

    def mover(env, name, src, dst):
        yield from chip.eib.transfer(src, dst, 2048)
        done[name] = env.now

    chip.env.process(mover(chip.env, "a", "SPE0", "MIC"))
    chip.env.process(mover(chip.env, "b", "SPE2", "SPE4"))
    chip.run()
    assert done["a"] == expected_single_grant_cycles(chip.config, "SPE0", "MIC", 2048, 1)
    hops_b = chip.topology.hops(
        "SPE2", "SPE4", chip.topology.directions_by_distance("SPE2", "SPE4")[0]
    )
    assert done["b"] == expected_single_grant_cycles(
        chip.config, "SPE2", "SPE4", 2048, hops_b
    )


def test_conflicts_are_counted(chip):
    def mover(env, dst):
        yield from chip.eib.transfer("SPE0", dst, 4096)

    chip.env.process(mover(chip.env, "SPE1"))
    chip.env.process(mover(chip.env, "SPE2"))
    chip.run()
    assert chip.eib.conflicts > 0
    assert 0 < chip.eib.conflict_fraction < 1
    assert chip.eib.wait_cycles > 0


def test_bytes_moved_accounting(chip):
    def mover(env):
        yield from chip.eib.transfer("SPE0", "SPE1", 6144)

    chip.env.process(mover(chip.env))
    chip.run()
    assert chip.eib.bytes_moved == 6144


def test_ring_utilization_reported(chip):
    def mover(env):
        yield from chip.eib.transfer("SPE0", "MIC", 16384)

    chip.env.process(mover(chip.env))
    chip.run()
    utilization = chip.eib.utilization()
    assert len(utilization) == 4
    assert max(utilization.values()) > 0.5


def test_invalid_transfers_rejected(chip):
    with pytest.raises(ConfigError):
        list(chip.eib.transfer("SPE0", "SPE0", 128))
    with pytest.raises(ConfigError):
        gen = chip.eib.transfer("SPE0", "SPE1", 0)
        next(gen)


class TestRing:
    def test_ring_respects_max_transfers(self):
        ring = Ring("cw0", CLOCKWISE, max_transfers=2)
        ring.add(frozenset({0}))
        ring.add(frozenset({5}))
        assert not ring.can_accept(frozenset({9}))

    def test_ring_rejects_overlap(self):
        ring = Ring("cw0", CLOCKWISE, max_transfers=3)
        ring.add(frozenset({2, 3, 4}))
        assert not ring.can_accept(frozenset({4, 5}))
        assert ring.can_accept(frozenset({6, 7}))

    def test_ring_remove_restores_capacity(self):
        ring = Ring("cw0", CLOCKWISE, max_transfers=1)
        spans = frozenset({1, 2})
        ring.add(spans)
        ring.remove(spans)
        assert ring.can_accept(frozenset({2, 3}))
        assert ring.active_transfers == 0

    def test_double_add_of_overlap_raises(self):
        ring = Ring("cw0", CLOCKWISE, max_transfers=3)
        ring.add(frozenset({1}))
        with pytest.raises(ConfigError):
            ring.add(frozenset({1}))


def test_memory_side_transfers_skip_retry_penalty(config):
    """Grants touching MIC keep zero penalty even under contention."""
    chip = CellChip(config=config, mapping=SpeMapping.identity(8))
    finish = {}

    def mover(env, name, src, dst, nbytes):
        yield from chip.eib.transfer(src, dst, nbytes)
        finish[name] = env.now

    # Eight SPEs all pulling from MIC: heavy port contention, but the
    # backlog penalty must not apply (the banks model memory overheads).
    for i in range(8):
        chip.env.process(mover(chip.env, f"spe{i}", "MIC", f"SPE{i}", 16384))
    chip.run()
    total = 8 * 16384
    gbps = chip.config.clock.gbps(total, max(finish.values()))
    # Pure port serialisation of 16.8 GB/s minus per-grant overheads.
    assert gbps > 13.0
