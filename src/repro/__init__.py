"""repro: a reproduction of "Performance Analysis of Cell Broadband
Engine for High Memory Bandwidth Applications" (ISPASS 2007).

The original is a measurement study on real Cell BE hardware.  This
package substitutes a calibrated discrete-event model of the chip's
communication fabric (:mod:`repro.cell`), a libspe-shaped programming
API (:mod:`repro.libspe`), the paper's complete microbenchmark suite
(:mod:`repro.core`) and the analysis that turns measurements into the
paper's programming guidelines (:mod:`repro.analysis`).

Quick start::

    from repro import CellChip, SpeContext

    chip = CellChip()

    def spu_main(spu, partner, out):
        start = spu.read_decrementer()
        for _ in range(128):
            yield from spu.mfc_get(size=16384, tag=0, remote_spe=partner)
        yield from spu.wait_tags([0])
        out["gbps"] = chip.config.clock.gbps(
            128 * 16384, spu.read_decrementer() - start
        )

    out = {}
    SpeContext(chip, 0).load(spu_main, chip.spe(1), out)
    chip.run()
    print(out["gbps"])  # ~16 GB/s: one EIB transfer, almost peak
"""

from repro.cell import CellChip, CellConfig, SpeMapping
from repro.core import (
    CouplesExperiment,
    CycleExperiment,
    PairDistanceExperiment,
    PairSyncExperiment,
    PpeBandwidthExperiment,
    SpeLocalStoreExperiment,
    SpeMemoryExperiment,
)
from repro.libspe import SpeContext

__version__ = "1.0.0"

__all__ = [
    "CellChip",
    "CellConfig",
    "CouplesExperiment",
    "CycleExperiment",
    "PairDistanceExperiment",
    "PairSyncExperiment",
    "PpeBandwidthExperiment",
    "SpeContext",
    "SpeLocalStoreExperiment",
    "SpeMapping",
    "SpeMemoryExperiment",
    "__version__",
]
