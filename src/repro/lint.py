"""simlint CLI: static analysis for SPU programs and sim processes.

Checks the rule catalog in :mod:`repro.analysis.lint` over files or
directories and prints ``path:line:col: severity RULE [name] message``
diagnostics.  Exit status is non-zero when any finding is reported, so a
clean run gates CI the same way the test suite does::

    python -m repro.lint examples src/repro/kernels
    python -m repro.lint --select SL2,SL5 src
    python -m repro.lint --list-rules
    python -m repro.lint --format json examples
    python -m repro.lint --format github src        # CI annotations
    python -m repro.lint --explain SL601 examples   # show hazard paths
    python -m repro.lint --baseline lint-baseline.json src
    python -m repro.lint --update-baseline lint-baseline.json src

``--min-severity error`` reports (and fails on) errors only;
``--select``/``--ignore`` take rule-id prefixes (``SL3`` covers SL301
and SL302) or rule names (``yieldless-loop``).  Results are cached per
file content under ``.repro-cache/lint/`` (``--no-cache`` disables).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.lint import (
    RULES,
    Finding,
    LintCache,
    LintError,
    Severity,
    apply_baseline,
    lint_paths,
    load_baseline,
    select_rules,
    write_baseline,
)


def parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule-id prefixes or names to run",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule-id prefixes or names to skip",
    )
    parser.add_argument(
        "--min-severity", default="warning", choices=["warning", "error"],
        help="report findings at or above this severity (default: warning)",
    )
    parser.add_argument(
        "--format", default="text", choices=["text", "json", "github"],
        dest="output_format", help="diagnostic output format",
    )
    parser.add_argument(
        "--explain", default=None, metavar="RULE",
        help="print the offending path (file:line steps) for findings "
        "of this rule id",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppress findings recorded in this baseline file; only "
        "new findings fail the run",
    )
    parser.add_argument(
        "--update-baseline", default=None, metavar="FILE",
        help="write the current findings to FILE as the new baseline "
        "and exit 0",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the content-hash result cache",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser.parse_args(argv)


def _split(arg: str | None) -> list[str] | None:
    if arg is None:
        return None
    return [part.strip() for part in arg.split(",") if part.strip()]


def list_rules() -> str:
    return "\n".join(
        f"{rule.id}  {rule.name:<22} {str(rule.severity):<7} {rule.summary}"
        for rule in sorted(RULES.values(), key=lambda rule: rule.id)
    )


def render(
    findings: list[Finding], output_format: str, explain: str | None = None
) -> str:
    if output_format == "json":
        return json.dumps([f.to_json() for f in findings], indent=2)
    if output_format == "github":
        return "\n".join(f.format_github() for f in findings)
    lines: list[str] = []
    for finding in findings:
        lines.append(finding.format())
        if explain is not None and finding.rule == explain and finding.steps:
            lines.extend(finding.explain())
    errors = sum(1 for f in findings if f.severity >= Severity.ERROR)
    warnings = len(findings) - errors
    lines.append(
        f"{len(findings)} finding(s): {errors} error(s), {warnings} warning(s)"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    if not args.paths:
        print("error: no paths given (or use --list-rules)", file=sys.stderr)
        return 2
    if args.explain is not None and args.explain not in RULES:
        print(f"error: --explain {args.explain!r}: unknown rule",
              file=sys.stderr)
        return 2
    threshold = Severity.parse(args.min_severity)
    try:
        rules = select_rules(_split(args.select), _split(args.ignore))
        cache = None if args.no_cache else LintCache()
        findings = lint_paths(args.paths, rules=rules, cache=cache)
        if args.update_baseline is not None:
            findings = [f for f in findings if f.severity >= threshold]
            write_baseline(args.update_baseline, findings)
            print(
                f"baseline: froze {len(findings)} finding(s) into "
                f"{args.update_baseline}"
            )
            return 0
        if args.baseline is not None:
            findings = apply_baseline(findings, load_baseline(args.baseline))
    except LintError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    findings = [f for f in findings if f.severity >= threshold]
    if findings or args.output_format == "text":
        print(render(findings, args.output_format, args.explain))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
