"""simlint CLI: static analysis for SPU programs and sim processes.

Checks the rule catalog in :mod:`repro.analysis.lint` over files or
directories and prints ``path:line:col: severity RULE [name] message``
diagnostics.  Exit status is non-zero when any finding is reported, so a
clean run gates CI the same way the test suite does::

    python -m repro.lint examples src/repro/kernels
    python -m repro.lint --select SL2,SL5 src
    python -m repro.lint --list-rules
    python -m repro.lint --format json examples

``--min-severity error`` reports (and fails on) errors only;
``--select``/``--ignore`` take rule-id prefixes (``SL3`` covers SL301
and SL302) or rule names (``yieldless-loop``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.lint import (
    RULES,
    Finding,
    LintError,
    Severity,
    lint_paths,
    select_rules,
)


def parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule-id prefixes or names to run",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule-id prefixes or names to skip",
    )
    parser.add_argument(
        "--min-severity", default="warning", choices=["warning", "error"],
        help="report findings at or above this severity (default: warning)",
    )
    parser.add_argument(
        "--format", default="text", choices=["text", "json"],
        dest="output_format", help="diagnostic output format",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser.parse_args(argv)


def _split(arg: str | None) -> list[str] | None:
    if arg is None:
        return None
    return [part.strip() for part in arg.split(",") if part.strip()]


def list_rules() -> str:
    return "\n".join(
        f"{rule.id}  {rule.name:<22} {str(rule.severity):<7} {rule.summary}"
        for rule in RULES.values()
    )


def render(findings: list[Finding], output_format: str) -> str:
    if output_format == "json":
        return json.dumps([f.to_json() for f in findings], indent=2)
    lines = [finding.format() for finding in findings]
    errors = sum(1 for f in findings if f.severity >= Severity.ERROR)
    warnings = len(findings) - errors
    lines.append(
        f"{len(findings)} finding(s): {errors} error(s), {warnings} warning(s)"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    if not args.paths:
        print("error: no paths given (or use --list-rules)", file=sys.stderr)
        return 2
    threshold = Severity.parse(args.min_severity)
    try:
        rules = select_rules(_split(args.select), _split(args.ignore))
        findings = lint_paths(args.paths, rules=rules)
    except LintError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    findings = [f for f in findings if f.severity >= threshold]
    if findings or args.output_format == "text":
        print(render(findings, args.output_format))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
