"""Ablations: re-run an experiment under perturbed machine parameters.

The model earns its keep by showing *which mechanism produces which
measurement*.  An :class:`AblationStudy` sweeps one configuration knob
(e.g. rings per direction, grant quantum, MFC queue depth, the memory
turnaround fraction) and reports how a chosen metric responds.  The
ablation benchmarks in ``benchmarks/`` are built on this.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.cell.config import CellConfig
from repro.cell.errors import ConfigError


@dataclass(frozen=True)
class AblationPoint:
    """One knob setting and the metric it produced."""

    parameter: str
    value: object
    metric: float


def perturb(config: CellConfig, parameter: str, value) -> CellConfig:
    """A config copy with ``section.field`` (dotted) replaced."""
    if "." not in parameter:
        raise ConfigError(
            f"parameter must be 'section.field' (e.g. 'eib.grant_quantum_bytes'), "
            f"got {parameter!r}"
        )
    section_name, field_name = parameter.split(".", 1)
    if not hasattr(config, section_name):
        raise ConfigError(f"config has no section {section_name!r}")
    section = getattr(config, section_name)
    if not hasattr(section, field_name):
        raise ConfigError(f"section {section_name!r} has no field {field_name!r}")
    new_section = dataclasses.replace(section, **{field_name: value})
    return config.replace(**{section_name: new_section})


class AblationStudy:
    """Sweep one dotted config parameter and collect a metric.

    ``metric`` receives the perturbed :class:`CellConfig` and returns a
    number (typically: build an experiment with that config, run it,
    read one cell of a table).
    """

    def __init__(
        self,
        parameter: str,
        values: Sequence,
        metric: Callable[[CellConfig], float],
        base_config: CellConfig = None,
    ):
        if not values:
            raise ConfigError("ablation over an empty value list")
        self.parameter = parameter
        self.values = list(values)
        self.metric = metric
        self.base_config = base_config or CellConfig.paper_blade()

    def run(self) -> list[AblationPoint]:
        points = []
        for value in self.values:
            config = perturb(self.base_config, self.parameter, value)
            points.append(
                AblationPoint(
                    parameter=self.parameter,
                    value=value,
                    metric=self.metric(config),
                )
            )
        return points

    @staticmethod
    def format(points: list[AblationPoint], unit: str = "GB/s") -> str:
        lines = [f"ablation of {points[0].parameter}"]
        for point in points:
            lines.append(f"  {point.value!r:>12} -> {point.metric:8.2f} {unit}")
        return "\n".join(lines)
