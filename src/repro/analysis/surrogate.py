"""O(1) analytic bandwidth surrogate, fitted from simulation sweeps.

The paper's bandwidth curves are smooth, near-linear functions of
transfer size, hop count and contention level — the regime where
Treibig & Hager's bandwidth-limited-loop model fits
``cycles = α·size + β·overhead + γ`` with R² > 0.99.  This module fits
exactly that model to :func:`~repro.core.experiment.run_spec` results,
so that most "what bandwidth does config X get" queries are answered by
a dot product instead of a discrete-event simulation.

**Path families.**  A :class:`~repro.core.experiment.RunSpec` is
classified by everything discrete that shapes its bandwidth: the
machine config, the canonical transfer pattern (memory streams, one
pair, couples, a cycle), direction, command mode, sync policy, and the
*physical* route fingerprint its placement seed induces (which SPE
positions talk to which targets — the model's equivalent of "by hop
count and bank").  Within one family the only remaining inputs are
continuous (element size, command count), which is what makes a linear
law accurate; placements with a different route structure are different
families, never averaged together.

**Piecewise fits.**  Within a family, ``cycles`` is *piecewise* linear
in (bytes, commands): issue-bound below some element size, transfer-
bound above it.  The fitter therefore segments the element-size axis
adaptively — fit the whole range, and if the mean absolute percentage
error exceeds the gate, split at the median element size and recurse.
Each surviving segment is one fitted piece with its own coefficients
and validity box.

**Validated domain.**  A query is served only inside the fitted hull:
its family must exist, its element size must fall in a surviving
piece (pieces trained on fewer than :data:`MIN_INTERP_ELEMS` distinct
element sizes only serve *exactly* those sizes — interpolation is
allowed only where the fit was cross-validated across sizes), and its
(bytes, commands) must lie inside the piece's trained box.  Everything
else is out of domain and falls back to the simulator
(:class:`~repro.runtime.parallel.SweepExecutor` wires this up), and the
fallback's result can be fed back into the training set
(:meth:`SurrogateModel.observe`) so the domain grows where queries
actually land.

**Quality gates.**  Fitting holds out every
:data:`HOLDOUT_EVERY`-th point per family; pieces must reach
R² ≥ ``min_r2`` and MAPE ≤ ``max_mape`` on their held-out points (and
in sample) or they are dropped — a dropped piece costs simulator
fallbacks, never wrong numbers.  The :class:`FitReport` carries the
per-family statistics.

Everything here is deterministic pure Python: the least-squares solve
is Gauss–Jordan elimination on the normal equations, the holdout split
is by sorted position, and the persisted JSON (see
:class:`~repro.analysis.surrogate_store.SurrogateStore`) is
byte-identical for identical training sweeps.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.cell.config import CellConfig
from repro.cell.topology import RingTopology, SpeMapping
from repro.core.experiment import RunSpec
from repro.core.results import BandwidthSample

#: Names of the fitted basis, in coefficient order:
#: ``cycles = γ·1 + α·bytes + β·commands``.
FEATURE_NAMES: tuple[str, ...] = ("intercept", "bytes", "commands")

#: Default holdout: every 4th point per family is held out of the fit
#: and used only to validate it.
HOLDOUT_EVERY = 4

#: Families below this many points are fitted without a holdout split
#: (their domain is tiny anyway; determinism makes in-sample honest).
MIN_HOLDOUT_POINTS = 5

#: A piece may interpolate between element sizes only when it was
#: trained on at least this many distinct sizes; below that it serves
#: exactly the trained sizes.
MIN_INTERP_ELEMS = 3

#: Default quality gates (see the module docstring).
MIN_R2 = 0.99
MAX_MAPE = 0.02

#: Pivots below this (relative to the column scale) are treated as a
#: rank deficiency: the column's coefficient is pinned to zero.
_PIVOT_EPS = 1e-12

#: Node label for main-memory targets in route fingerprints.
_MEM = "MEM"

# -- signature extraction (shared by fit and predict, so memoised) -----------

_topology = RingTopology()
_config_digests: dict[CellConfig, str] = {}
_mapping_nodes: dict[tuple[int, int], tuple[str, ...]] = {}
_hops: dict[tuple[str, str], int] = {}

#: Memo caps: predict-heavy servers sweep many seeds; bound the caches.
_MEMO_CAP = 200_000


def _config_digest(config: CellConfig) -> str:
    digest = _config_digests.get(config)
    if digest is None:
        blob = json.dumps(asdict(config), sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(blob.encode()).hexdigest()[:12]
        if len(_config_digests) > 64:
            _config_digests.clear()
        _config_digests[config] = digest
    return digest


def _nodes_for(seed: int, n_spes: int) -> tuple[str, ...]:
    key = (seed, n_spes)
    nodes = _mapping_nodes.get(key)
    if nodes is None:
        mapping = SpeMapping.random(seed, n_spes)
        nodes = tuple(mapping.node(logical) for logical in range(n_spes))
        if len(_mapping_nodes) > _MEMO_CAP:
            _mapping_nodes.clear()
        _mapping_nodes[key] = nodes
    return nodes


def _min_hops(src: str, dst: str) -> int:
    key = (src, dst)
    hops = _hops.get(key)
    if hops is None:
        direction = _topology.directions_by_distance(src, dst)[0]
        hops = _topology.hops(src, dst, direction)
        _hops[key] = hops
    return hops


@dataclass(frozen=True)
class PathSignature:
    """One spec's family key plus its continuous coordinates."""

    key: str
    label: str
    element_bytes: int
    total_bytes: int
    total_commands: int


def _shape_kind(assignments: tuple) -> str:
    """Human label of the transfer pattern (reporting only; the route
    fingerprint is what actually keys the family)."""
    partners = [workload.partner_logical for _, workload in assignments]
    if all(partner is None for partner in partners):
        return "mem"
    if any(partner is None for partner in partners):
        return "mixed"
    if len(assignments) == 1:
        return "pair"
    initiators = {logical for logical, _ in assignments}
    if initiators.isdisjoint(partners):
        return "couples"
    if initiators == set(partners):
        return "cycle"
    return "spe-mesh"


def signature(spec: RunSpec) -> PathSignature | None:
    """Classify a spec into a path family, or None when the spec's
    shape is outside the surrogate's vocabulary (heterogeneous
    workloads across SPEs) — such specs always simulate."""
    assignments = spec.assignments
    if not assignments:
        return None
    first = assignments[0][1]
    for _, workload in assignments[1:]:
        if (
            workload.direction != first.direction
            or workload.element_bytes != first.element_bytes
            or workload.n_elements != first.n_elements
            or workload.mode != first.mode
            or workload.sync_every != first.sync_every
        ):
            return None
    nodes = _nodes_for(spec.seed, spec.config.n_spes)
    routes = []
    hop_counts = []
    for logical, workload in assignments:
        if not 0 <= logical < len(nodes):
            return None
        src = nodes[logical]
        if workload.partner_logical is None:
            dst = _MEM
            hop_counts.append(_min_hops(src, "MIC"))
        else:
            if not 0 <= workload.partner_logical < len(nodes):
                return None
            dst = nodes[workload.partner_logical]
            hop_counts.append(_min_hops(src, dst))
        routes.append(f"{src}>{dst}")
    routes.sort()
    kind = _shape_kind(assignments)
    sync = "end" if first.sync_every is None else str(first.sync_every)
    label = (
        f"{kind}:{first.direction}:{first.mode}:n{len(assignments)}"
        f":sync={sync}:hops={min(hop_counts)}-{max(hop_counts)}"
    )
    key = (
        f"{label}|{','.join(routes)}"
        f"|cfg={_config_digest(spec.config)}|u={int(spec.unrolled)}"
    )
    per_element = 2 if first.direction == "copy" else 1
    total_commands = per_element * first.n_elements * len(assignments)
    total_bytes = sum(workload.total_bytes for _, workload in assignments)
    return PathSignature(
        key=key,
        label=label,
        element_bytes=first.element_bytes,
        total_bytes=total_bytes,
        total_commands=total_commands,
    )


# -- deterministic least squares ---------------------------------------------


def _lstsq(rows: list[list[float]], ys: list[float]) -> list[float]:
    """Least-squares coefficients via the normal equations, solved by
    Gauss–Jordan elimination with partial pivoting.  Rank-deficient
    columns (constant features, single points) get coefficient 0 —
    deterministically, so identical inputs give identical bytes out."""
    n = len(rows[0])
    normal = [
        [sum(row[i] * row[j] for row in rows) for j in range(n)]
        + [sum(row[i] * y for row, y in zip(rows, ys))]
        for i in range(n)
    ]
    scale = max(
        (abs(value) for equation in normal for value in equation[:-1]),
        default=0.0,
    )
    threshold = _PIVOT_EPS * max(scale, 1.0)
    for col in range(n):
        pivot_row = max(range(col, n), key=lambda r: abs(normal[r][col]))
        normal[col], normal[pivot_row] = normal[pivot_row], normal[col]
        pivot = normal[col][col]
        if abs(pivot) <= threshold:
            continue
        for row in range(n):
            if row != col and normal[row][col]:
                factor = normal[row][col] / pivot
                normal[row] = [
                    a - factor * b for a, b in zip(normal[row], normal[col])
                ]
    return [
        normal[i][n] / normal[i][i] if abs(normal[i][i]) > threshold else 0.0
        for i in range(n)
    ]


def _features(total_bytes: int, total_commands: int) -> list[float]:
    return [1.0, float(total_bytes), float(total_commands)]


def _evaluate(
    coef: list[float], points: list[tuple[int, int, int, int]], tol: float
) -> tuple[float, float]:
    """(r2, mape) of a coefficient vector over (elem, bytes, commands,
    cycles) points.

    ``tol`` is the accuracy gate (``max_mape``).  When the target's own
    relative spread is within ``tol`` — a near-constant family, e.g.
    one transfer shape repeated across placement seeds — textbook R²
    degenerates (there is no signal to explain, only seed noise, so
    ``1 - residual/total`` collapses toward 0 for an arbitrarily
    accurate fit).  Such families score R² = 1 when every prediction is
    within ``tol`` of its point, 0 otherwise; the MAPE gate still
    bounds the served error either way.
    """
    errors = []
    residual = 0.0
    total = 0.0
    mean = sum(cycles for *_, cycles in points) / len(points)
    for _, total_bytes, total_commands, cycles in points:
        predicted = (
            coef[0] + coef[1] * total_bytes + coef[2] * total_commands
        )
        errors.append(abs(predicted - cycles) / cycles)
        residual += (predicted - cycles) ** 2
        total += (cycles - mean) ** 2
    mape = sum(errors) / len(errors)
    if total <= len(points) * (tol * mean) ** 2:
        r2 = 1.0 if max(errors) <= tol else 0.0
    else:
        r2 = 1.0 - residual / total
    return r2, mape


# -- fitted pieces and per-family models -------------------------------------


@dataclass
class PathPiece:
    """One element-size segment of a family's piecewise-linear law."""

    coef: tuple[float, float, float]
    elem_lo: int
    elem_hi: int
    #: Exact trained element sizes; None once the piece is allowed to
    #: interpolate (trained and validated across >= MIN_INTERP_ELEMS).
    exact_elems: tuple[int, ...] | None
    bytes_lo: int
    bytes_hi: int
    commands_lo: int
    commands_hi: int
    n_train: int
    n_holdout: int
    r2: float
    mape: float

    def in_domain(
        self, element_bytes: int, total_bytes: int, total_commands: int
    ) -> bool:
        if self.exact_elems is not None:
            if element_bytes not in self.exact_elems:
                return False
        elif not self.elem_lo <= element_bytes <= self.elem_hi:
            return False
        return (
            self.bytes_lo <= total_bytes <= self.bytes_hi
            and self.commands_lo <= total_commands <= self.commands_hi
        )

    def predict_cycles(self, total_bytes: int, total_commands: int) -> int:
        cycles = (
            self.coef[0]
            + self.coef[1] * total_bytes
            + self.coef[2] * total_commands
        )
        return max(1, round(cycles))


@dataclass
class PathModel:
    """Every surviving piece of one path family, plus its fit stats."""

    key: str
    label: str
    pieces: list[PathPiece] = field(default_factory=list)
    n_train: int = 0
    n_holdout: int = 0
    r2: float = 0.0
    mape: float = 1.0

    def piece_for(
        self, element_bytes: int, total_bytes: int, total_commands: int
    ) -> PathPiece | None:
        for piece in self.pieces:
            if piece.in_domain(element_bytes, total_bytes, total_commands):
                return piece
        return None


@dataclass
class FitReport:
    """Per-family fit quality, for the reproduce footer and the docs'
    "which paths are analytic now" story."""

    entries: list[PathModel] = field(default_factory=list)
    dropped: list[tuple[str, str]] = field(default_factory=list)
    n_points: int = 0

    @property
    def n_paths(self) -> int:
        return len(self.entries)

    def worst_mape(self) -> float:
        return max((entry.mape for entry in self.entries), default=0.0)

    def summary(self) -> str:
        fitted = len(self.entries)
        lines = [
            f"surrogate fit: {fitted} path(s) from {self.n_points} sweep "
            f"point(s); {len(self.dropped)} path(s) rejected by quality gates"
        ]
        by_label: dict[str, list[PathModel]] = {}
        for entry in self.entries:
            by_label.setdefault(entry.label, []).append(entry)
        for label in sorted(by_label):
            group = by_label[label]
            r2 = min(entry.r2 for entry in group)
            mape = max(entry.mape for entry in group)
            points = sum(entry.n_train + entry.n_holdout for entry in group)
            lines.append(
                f"  {label}: {len(group)} placement variant(s), "
                f"{points} point(s), R^2 >= {r2:.4f}, MAPE <= {100 * mape:.2f}%"
            )
        return "\n".join(lines)


def _fit_piece(
    points: list[tuple[int, int, int, int]], tol: float
) -> tuple[tuple[float, float, float], float, float]:
    rows = [_features(b, c) for _, b, c, _ in points]
    ys = [float(cycles) for *_, cycles in points]
    coef = _lstsq(rows, ys)
    r2, mape = _evaluate(coef, points, tol)
    return (coef[0], coef[1], coef[2]), r2, mape


def _segment(
    points: list[tuple[int, int, int, int]], min_r2: float, max_mape: float
) -> list[list[tuple[int, int, int, int]]]:
    """Split a family's training points into element-size segments until
    each fits within BOTH quality gates (or cannot be split further).
    Gating on MAPE alone is not enough: a family whose cycle counts vary
    only a few percent across sizes can pass the 2% MAPE gate with a
    near-flat fit that explains none of the variance (R² ~ 0.5) — it
    must still be split until each piece is locally linear."""
    _, r2, mape = _fit_piece(points, max_mape)
    elems = sorted({elem for elem, *_ in points})
    if (mape <= max_mape and r2 >= min_r2) or len(elems) < 2:
        return [points]
    cut = elems[len(elems) // 2]
    low = [point for point in points if point[0] < cut]
    high = [point for point in points if point[0] >= cut]
    return _segment(low, min_r2, max_mape) + _segment(high, min_r2, max_mape)


def _fit_family(
    key: str,
    label: str,
    points: list[tuple[int, int, int, int]],
    min_r2: float,
    max_mape: float,
) -> PathModel | None:
    """Fit one family: holdout split, adaptive segmentation, per-piece
    gates, family-level statistics.  None when nothing survives."""
    points = sorted(points)
    if len(points) >= MIN_HOLDOUT_POINTS:
        holdout = points[HOLDOUT_EVERY - 1 :: HOLDOUT_EVERY]
        train = [
            point
            for index, point in enumerate(points)
            if index % HOLDOUT_EVERY != HOLDOUT_EVERY - 1
        ]
    else:
        holdout = []
        train = points
    model = PathModel(key=key, label=label)
    held_points: list[tuple[int, int, int, int]] = []
    held_coefs: list[tuple[float, float, float]] = []
    for segment in _segment(train, min_r2, max_mape):
        coef, r2, mape = _fit_piece(segment, max_mape)
        if mape > max_mape or r2 < min_r2:
            continue
        elems = sorted({elem for elem, *_ in segment})
        piece = PathPiece(
            coef=coef,
            elem_lo=elems[0],
            elem_hi=elems[-1],
            exact_elems=(
                tuple(elems) if len(elems) < MIN_INTERP_ELEMS else None
            ),
            bytes_lo=min(b for _, b, _, _ in segment),
            bytes_hi=max(b for _, b, _, _ in segment),
            commands_lo=min(c for _, _, c, _ in segment),
            commands_hi=max(c for _, _, c, _ in segment),
            n_train=len(segment),
            n_holdout=0,
            r2=r2,
            mape=mape,
        )
        held = [
            point
            for point in holdout
            if piece.in_domain(point[0], point[1], point[2])
        ]
        if held:
            held_r2, held_mape = _evaluate(list(coef), held, max_mape)
            if held_mape > max_mape or held_r2 < min_r2:
                continue
            piece.n_holdout = len(held)
            piece.r2 = held_r2
            piece.mape = held_mape
            held_points.extend(held)
            held_coefs.extend([coef] * len(held))
        model.pieces.append(piece)
        model.n_train += piece.n_train
    if not model.pieces:
        return None
    model.n_holdout = len(held_points)
    if held_points:
        errors = []
        residual = 0.0
        mean = sum(cycles for *_, cycles in held_points) / len(held_points)
        total = 0.0
        for coef, (_, b, c, cycles) in zip(held_coefs, held_points):
            predicted = coef[0] + coef[1] * b + coef[2] * c
            errors.append(abs(predicted - cycles) / cycles)
            residual += (predicted - cycles) ** 2
            total += (cycles - mean) ** 2
        model.mape = sum(errors) / len(errors)
        if total <= len(held_points) * (max_mape * mean) ** 2:
            # Same degenerate-variance rule as _evaluate: no signal to
            # explain, so R² is the pointwise-accuracy verdict.
            model.r2 = 1.0 if max(errors) <= max_mape else 0.0
        else:
            model.r2 = 1.0 - residual / total
    else:
        # No holdout (tiny family): report the in-sample piece stats.
        model.mape = max(piece.mape for piece in model.pieces)
        model.r2 = min(piece.r2 for piece in model.pieces)
    return model


# -- the model ----------------------------------------------------------------


class SurrogateModel:
    """Per-path analytic bandwidth models with a validated domain.

    Build one with :meth:`fit` (from a training sweep's specs and
    samples) or load a persisted one through
    :class:`~repro.analysis.surrogate_store.SurrogateStore`.  Serve
    queries with :meth:`predict` / :meth:`predict_many`; feed simulated
    out-of-domain results back with :meth:`observe` and :meth:`refit`.
    """

    def __init__(
        self,
        code_version: str,
        paths: dict[str, PathModel],
        points: dict[str, list[list[int]]],
        labels: dict[str, str],
        report: FitReport,
        min_r2: float = MIN_R2,
        max_mape: float = MAX_MAPE,
    ):
        self.code_version = code_version
        self.paths = paths
        self.points = points
        self.labels = labels
        self.report = report
        self.min_r2 = min_r2
        self.max_mape = max_mape
        #: Observations appended since the last (re)fit.
        self.pending = 0

    # -- fitting -------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        specs: list[RunSpec],
        samples: list[BandwidthSample | None],
        code_version: str | None = None,
        min_r2: float = MIN_R2,
        max_mape: float = MAX_MAPE,
    ) -> SurrogateModel:
        """Fit from a training sweep: one (spec, sample) pair per
        completed repetition (None samples — failed repetitions — are
        skipped)."""
        if code_version is None:
            from repro.core.cache import repro_code_version

            code_version = repro_code_version()
        points: dict[str, list[list[int]]] = {}
        labels: dict[str, str] = {}
        for spec, sample in zip(specs, samples):
            if sample is None:
                continue
            sig = signature(spec)
            if sig is None:
                continue
            labels[sig.key] = sig.label
            points.setdefault(sig.key, []).append(
                [
                    sig.element_bytes,
                    sig.total_bytes,
                    sig.total_commands,
                    sample.cycles,
                ]
            )
        model = cls(
            code_version=code_version,
            paths={},
            points=points,
            labels=labels,
            report=FitReport(),
            min_r2=min_r2,
            max_mape=max_mape,
        )
        model.refit()
        return model

    def refit(self) -> None:
        """(Re)fit every family from the accumulated training points —
        called after :meth:`observe` grew the training set."""
        self.paths = {}
        report = FitReport()
        report.n_points = sum(len(rows) for rows in self.points.values())
        for key in sorted(self.points):
            rows = [
                (row[0], row[1], row[2], row[3])
                for row in sorted(self.points[key])
            ]
            label = self.labels.get(key, key)
            fitted = _fit_family(key, label, rows, self.min_r2, self.max_mape)
            if fitted is None:
                report.dropped.append((key, "quality gates"))
                continue
            self.paths[key] = fitted
            report.entries.append(fitted)
        self.report = report
        self.pending = 0

    def observe(self, spec: RunSpec, sample: BandwidthSample) -> None:
        """Add one simulated repetition to the training set (it takes
        effect at the next :meth:`refit`)."""
        sig = signature(spec)
        if sig is None:
            return
        self.labels[sig.key] = sig.label
        self.points.setdefault(sig.key, []).append(
            [sig.element_bytes, sig.total_bytes, sig.total_commands, sample.cycles]
        )
        self.pending += 1

    # -- serving -------------------------------------------------------------

    def predict(self, spec: RunSpec) -> BandwidthSample | None:
        """The surrogate's answer for a spec, or None when the spec is
        outside the fitted, validated domain (callers must then fall
        back to :func:`~repro.core.experiment.run_spec`)."""
        sig = signature(spec)
        if sig is None:
            return None
        path = self.paths.get(sig.key)
        if path is None:
            return None
        piece = path.piece_for(
            sig.element_bytes, sig.total_bytes, sig.total_commands
        )
        if piece is None:
            return None
        cycles = piece.predict_cycles(sig.total_bytes, sig.total_commands)
        return BandwidthSample(
            gbps=spec.config.clock.gbps(sig.total_bytes, cycles),
            nbytes=sig.total_bytes,
            cycles=cycles,
            seed=spec.seed,
        )

    def predict_many(
        self, specs: list[RunSpec]
    ) -> list[BandwidthSample | None]:
        """Batched :meth:`predict`: signatures are computed once per
        spec and the per-path coefficient lookups are hoisted out of
        the loop, so large query batches amortise everything but the
        dot product itself."""
        out: list[BandwidthSample | None] = [None] * len(specs)
        paths = self.paths
        last_key: str | None = None
        last_path: PathModel | None = None
        for index, spec in enumerate(specs):
            sig = signature(spec)
            if sig is None:
                continue
            if sig.key != last_key:
                last_key = sig.key
                last_path = paths.get(sig.key)
            if last_path is None:
                continue
            piece = last_path.piece_for(
                sig.element_bytes, sig.total_bytes, sig.total_commands
            )
            if piece is None:
                continue
            cycles = piece.predict_cycles(sig.total_bytes, sig.total_commands)
            out[index] = BandwidthSample(
                gbps=spec.config.clock.gbps(sig.total_bytes, cycles),
                nbytes=sig.total_bytes,
                cycles=cycles,
                seed=spec.seed,
            )
        return out

    def in_domain(self, spec: RunSpec) -> bool:
        """Whether :meth:`predict` would serve this spec."""
        sig = signature(spec)
        if sig is None:
            return False
        path = self.paths.get(sig.key)
        return path is not None and (
            path.piece_for(sig.element_bytes, sig.total_bytes, sig.total_commands)
            is not None
        )

    @property
    def n_paths(self) -> int:
        return len(self.paths)

    def describe(self) -> str:
        return (
            f"{len(self.paths)} fitted path(s), "
            f"{sum(len(rows) for rows in self.points.values())} training "
            f"point(s), code version {self.code_version[:12]}"
        )

    # -- persistence (see SurrogateStore) ------------------------------------

    def to_payload(self) -> dict:
        """The versioned JSON payload.  Pure function of the training
        set and gates: same sweep, same bytes."""
        return {
            "format": 1,
            "code_version": self.code_version,
            "gates": {"min_r2": self.min_r2, "max_mape": self.max_mape},
            "labels": {key: self.labels[key] for key in sorted(self.labels)},
            "points": {
                key: sorted(self.points[key]) for key in sorted(self.points)
            },
        }

    @classmethod
    def from_payload(cls, payload: object) -> SurrogateModel | None:
        """Rebuild a model from a payload, or None when the payload is
        not a valid format-1 model (corrupt files read as "no model",
        which triggers a refit — never a crash)."""
        if not isinstance(payload, dict) or payload.get("format") != 1:
            return None
        code_version = payload.get("code_version")
        points = payload.get("points")
        labels = payload.get("labels")
        gates = payload.get("gates")
        if (
            not isinstance(code_version, str)
            or not isinstance(points, dict)
            or not isinstance(labels, dict)
            or not isinstance(gates, dict)
        ):
            return None
        clean: dict[str, list[list[int]]] = {}
        for key, rows in points.items():
            if not isinstance(key, str) or not isinstance(rows, list):
                return None
            clean_rows = []
            for row in rows:
                if (
                    not isinstance(row, list)
                    or len(row) != 4
                    or not all(
                        isinstance(value, int) and not isinstance(value, bool)
                        for value in row
                    )
                ):
                    return None
                clean_rows.append(list(row))
            clean[key] = clean_rows
        min_r2 = gates.get("min_r2")
        max_mape = gates.get("max_mape")
        if not isinstance(min_r2, (int, float)) or not isinstance(
            max_mape, (int, float)
        ):
            return None
        model = cls(
            code_version=code_version,
            paths={},
            points=clean,
            labels={str(k): str(v) for k, v in labels.items()},
            report=FitReport(),
            min_r2=float(min_r2),
            max_mape=float(max_mape),
        )
        model.refit()
        return model
