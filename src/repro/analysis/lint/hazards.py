"""SL6xx: static DMA-hazard proofs over the CFG + interval dataflow.

The three checkers here are the static shadow of the runtime
``DmaSanitizer``:

* **SL601** — local-store buffer overlap: two transfers whose
  ``[local_offset, local_offset + size)`` intervals *provably* intersect
  are concurrently in flight on the same MFC, at least one of them a GET
  (GETs write the local store), and no fence/barrier/``wait_tags``
  happens-before edge orders them on the hazard path.
* **SL602** — tag-group lifecycle errors: a ``wait_tags`` on a tag group
  that no path ever issued a command on (dead wait), and a tag group
  carrying GETs and PUTs concurrently in flight (the paper's guideline
  puts writes on their own tag group; mixed groups make "quiet" mean two
  different things).
* **SL603** — double-buffer phase violations: rotation arithmetic
  ``base + (i % K) * stride`` inside a loop that provably runs more than
  ``K`` iterations with no wait in the body — iteration ``i + K`` reuses
  the window of iteration ``i`` while its transfer may still be in
  flight.

All three fire on *provable* facts only (singleton intervals, converged
fixpoint states); anything the dataflow cannot pin down is silence, not
noise.  The fixpoint runs to convergence first and findings are recorded
on one final stable pass — a wait at the top of a loop legitimately
waiting on the previous iteration's issue at the bottom is only judged
once the back edge has delivered that issue.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace

from repro.analysis.lint.cfg import CFG, build_cfg
from repro.analysis.lint.dataflow import (
    TOP,
    WIDEN_AFTER,
    Env,
    Interval,
    bind_for_target,
    eval_expr,
    join_env,
    range_trip_count,
    transfer_stmt,
    widen_env,
)
from repro.analysis.lint.summaries import (
    UNKNOWN_EFFECTS,
    IssueEffect,
    ModuleModel,
    WaitEffect,
)

__all__ = [
    "Step",
    "RawFinding",
    "check_function",
]

#: Fixpoint pass cap (widening guarantees convergence well before this).
MAX_PASSES = 64

#: Cap on distinct in-flight transfer sites tracked per program point.
MAX_INFLIGHT = 64

_GET_ELEM = frozenset({"mfc_get", "mfc_getf", "mfc_getb"})
_PUT_ELEM = frozenset({"mfc_put", "mfc_putf", "mfc_putb"})
_LISTS = frozenset({"mfc_getl", "mfc_putl"})
_WAITS = frozenset({"wait_tags", "tag_group_quiet"})

_NEVER = frozenset({"never"})
_INFLIGHT = frozenset({"inflight"})
_WAITED = frozenset({"waited"})


@dataclass(frozen=True)
class Step:
    """One step of an offending path (``--explain`` output)."""

    line: int
    note: str


@dataclass(frozen=True)
class RawFinding:
    """A hazard before it becomes a :class:`~.findings.Finding`."""

    rule: str
    line: int
    col: int
    message: str
    steps: tuple[Step, ...] = ()


@dataclass(frozen=True)
class Transfer:
    """An abstract in-flight DMA command."""

    site: tuple[int, int]  # (line, col) of the issuing call/effect
    kind: str  # "get" | "put"
    is_list: bool
    tag: Interval
    local: Interval
    size: Interval
    conditional: bool

    def merge(self, other: Transfer) -> Transfer:
        return replace(
            self,
            tag=self.tag.join(other.tag),
            local=self.local.join(other.local),
            size=self.size.join(other.size),
            conditional=self.conditional or other.conditional,
        )


@dataclass
class DmaState:
    """Per-program-point hazard state: interval env + MFC queue shadow."""

    env: Env = field(default_factory=dict)
    #: site -> Transfer; joined pointwise by site across paths.
    inflight: dict[tuple[int, int], Transfer] = field(default_factory=dict)
    #: const tag -> status set over {"never", "inflight", "waited"}.
    tags: dict[int, frozenset[str]] = field(default_factory=dict)
    #: True once a DMA with a statically-unknown tag was issued — the
    #: per-tag accounting (and SL602 dead-wait) is no longer trustworthy.
    tags_unknown: bool = False

    def copy(self) -> DmaState:
        return DmaState(
            env=dict(self.env),
            inflight=dict(self.inflight),
            tags=dict(self.tags),
            tags_unknown=self.tags_unknown,
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DmaState)
            and self.env == other.env
            and self.inflight == other.inflight
            and self.tags == other.tags
            and self.tags_unknown == other.tags_unknown
        )


def _join_state(a: DmaState, b: DmaState) -> DmaState:
    inflight: dict[tuple[int, int], Transfer] = dict(a.inflight)
    for site, transfer in b.inflight.items():
        existing = inflight.get(site)
        inflight[site] = (
            transfer if existing is None else existing.merge(transfer)
        )
    keys = set(a.tags) | set(b.tags)
    tags = {
        key: a.tags.get(key, _NEVER) | b.tags.get(key, _NEVER) for key in keys
    }
    return DmaState(
        env=join_env(a.env, b.env),
        inflight=inflight,
        tags=tags,
        tags_unknown=a.tags_unknown or b.tags_unknown,
    )


def _widen_state(old: DmaState, new: DmaState) -> DmaState:
    new.env = widen_env(old.env, new.env)
    return new


def _poison(state: DmaState) -> None:
    """An unknown callee got the SPU handle: it may have issued or waited
    anything.  Drop every claim (prefers silence downstream)."""
    state.inflight.clear()
    state.tags.clear()
    state.tags_unknown = True


# ---------------------------------------------------------------------------
# The per-function checker
# ---------------------------------------------------------------------------

class _Checker:
    def __init__(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        module: ModuleModel,
        spu_param: str | None,
    ) -> None:
        self.fn = fn
        self.module = module
        self.spu_param = spu_param
        self.findings: list[RawFinding] = []
        self._recorded: set[tuple[str, int, int, str]] = set()
        self.recording = False
        #: True when the function issues any DMA at all (guards SL602
        #: dead-wait: a wait-only function is synchronising its caller's
        #: transfers, which this intraprocedural view cannot see).
        self.fn_issues_dma = self._scan_issues()

    # -- setup ----------------------------------------------------------------

    def _scan_issues(self) -> bool:
        for node in ast.walk(self.fn):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name in _GET_ELEM or name in _PUT_ELEM or name in _LISTS:
                    return True
                if name is not None and self.module.function(name) is not None:
                    effects = self.module.dma_effects(name, node, {})
                    if effects is UNKNOWN_EFFECTS:
                        return True
                    assert effects is not None
                    if any(isinstance(e, IssueEffect) for e in effects):
                        return True
        return False

    # -- driver ---------------------------------------------------------------

    def run(self) -> list[RawFinding]:
        cfg = build_cfg(self.fn)
        in_states: dict[int, DmaState] = {cfg.entry: DmaState()}
        order = cfg.rpo()
        joins: dict[int, int] = {}
        for _ in range(MAX_PASSES):
            changed = False
            for block_id in order:
                if block_id not in in_states:
                    continue
                state = in_states[block_id].copy()
                self._transfer_block(cfg, block_id, state)
                for succ in cfg.block(block_id).succs:
                    if succ not in in_states:
                        in_states[succ] = state.copy()
                        changed = True
                        continue
                    merged = _join_state(in_states[succ], state)
                    if cfg.block(succ).is_loop_head:
                        joins[succ] = joins.get(succ, 0) + 1
                        if joins[succ] > WIDEN_AFTER:
                            merged = _widen_state(in_states[succ], merged)
                    if merged != in_states[succ]:
                        in_states[succ] = merged
                        changed = True
            if not changed:
                break
        # Final stable pass: record findings against converged states.
        self.recording = True
        for block_id in order:
            if block_id not in in_states:
                continue
            state = in_states[block_id].copy()
            block = cfg.block(block_id)
            if block.loop is not None and isinstance(
                block.loop, (ast.For, ast.AsyncFor)
            ):
                self._check_rotation(block.loop, dict(state.env))
            self._transfer_block(cfg, block_id, state)
        return self.findings

    # -- block transfer -------------------------------------------------------

    def _transfer_block(self, cfg: CFG, block_id: int, state: DmaState) -> None:
        block = cfg.block(block_id)
        if block.loop is not None and isinstance(
            block.loop, (ast.For, ast.AsyncFor)
        ):
            bind_for_target(
                block.loop.target, block.loop.iter, state.env, self.module
            )
        for stmt in block.stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for call in sorted(
                (
                    node for node in _walk_no_lambdas(stmt)
                    if isinstance(node, ast.Call)
                ),
                key=lambda node: (node.lineno, node.col_offset),
            ):
                self._process_call(call, state)
            transfer_stmt(stmt, state.env, self.module)
        if len(state.inflight) > MAX_INFLIGHT:
            # Pathological input: stop claiming anything rather than churn.
            _poison(state)

    # -- call handling --------------------------------------------------------

    def _process_call(self, call: ast.Call, state: DmaState) -> None:
        name = _call_name(call)
        if name in _GET_ELEM or name in _PUT_ELEM:
            self._issue_elem(call, name, state)
        elif name in _LISTS:
            self._issue_list(call, name, state)
        elif name in _WAITS:
            self._wait(call, state)
        elif name is not None and self.module.function(name) is not None:
            effects = self.module.dma_effects(name, call, state.env)
            if effects is UNKNOWN_EFFECTS:
                _poison(state)
                return
            assert effects is not None
            for effect in effects:
                if isinstance(effect, IssueEffect):
                    self._apply_issue_effect(call, effect, state)
                else:
                    self._apply_wait_effect(call, effect, state)
        elif self.spu_param is not None and any(
            isinstance(arg, ast.Name) and arg.id == self.spu_param
            for arg in list(call.args) + [k.value for k in call.keywords]
        ):
            _poison(state)

    def _issue_elem(self, call: ast.Call, name: str, state: DmaState) -> None:
        tag_expr = _get_arg(call, 1, "tag")
        local_expr = _get_arg(call, 3, "local_offset")
        transfer = Transfer(
            site=(call.lineno, call.col_offset),
            kind="get" if name in _GET_ELEM else "put",
            is_list=False,
            tag=eval_expr(tag_expr, state.env, self.module)
            if tag_expr is not None else Interval.const(0),
            local=eval_expr(local_expr, state.env, self.module)
            if local_expr is not None else Interval.const(0),
            size=eval_expr(_get_arg(call, 0, "size"), state.env, self.module),
            conditional=False,
        )
        ordered = (
            name.endswith("b") or _flag_true(call, "barrier"),
            name.endswith("f") or _flag_true(call, "fence"),
        )
        self._admit(transfer, ordered, state, origin=None)

    def _issue_list(self, call: ast.Call, name: str, state: DmaState) -> None:
        tag_expr = _get_arg(call, 2, "tag")
        transfer = Transfer(
            site=(call.lineno, call.col_offset),
            kind="get" if name == "mfc_getl" else "put",
            is_list=True,
            tag=eval_expr(tag_expr, state.env, self.module)
            if tag_expr is not None else Interval.const(0),
            local=TOP,
            size=TOP,
            conditional=False,
        )
        self._admit(transfer, (False, False), state, origin=None)

    def _apply_issue_effect(
        self, call: ast.Call, effect: IssueEffect, state: DmaState
    ) -> None:
        transfer = Transfer(
            site=(effect.line, 0),
            kind=effect.kind,
            is_list=effect.is_list,
            tag=effect.tag,
            local=effect.local,
            size=effect.size,
            conditional=effect.conditional or effect.repeated,
        )
        self._admit(
            transfer, (effect.barrier, effect.fence), state, origin=call
        )

    def _apply_wait_effect(
        self, call: ast.Call, effect: WaitEffect, state: DmaState
    ) -> None:
        if effect.conditional:
            # A wait that may not execute clears nothing (must-semantics)
            # and proves nothing about dead tags.
            return
        self._do_wait(effect.tags, call, effect.line, state)

    def _admit(
        self,
        transfer: Transfer,
        ordered: tuple[bool, bool],  # (barrier, fence) on the new command
        state: DmaState,
        origin: ast.Call | None,
    ) -> None:
        barrier, fence = ordered
        if self.recording:
            self._check_overlap(transfer, barrier, fence, state, origin)
            self._check_direction_mix(
                transfer, barrier, fence, state, origin
            )
        state.inflight[transfer.site] = (
            transfer
            if transfer.site not in state.inflight
            else state.inflight[transfer.site].merge(transfer)
        )
        if transfer.tag.is_const:
            state.tags[transfer.tag.value] = _INFLIGHT
        else:
            state.tags_unknown = True

    def _wait(self, call: ast.Call, state: DmaState) -> None:
        tags = _wait_tag_list(call, state.env, self.module)
        self._do_wait(tags, call, call.lineno, state)

    def _do_wait(
        self,
        tags: tuple[int, ...] | None,
        call: ast.Call,
        line: int,
        state: DmaState,
    ) -> None:
        if tags is None:
            # Unknown tag set: may complete anything — clear everything.
            state.inflight.clear()
            state.tags = {
                key: (status - {"inflight"}) | {"waited"}
                if "inflight" in status else status
                for key, status in state.tags.items()
            }
            return
        if self.recording:
            self._check_dead_wait(tags, call, line, state)
        for site, transfer in list(state.inflight.items()):
            if not transfer.tag.is_const or transfer.tag.value in tags:
                # A transfer whose tag *could* be in the waited set may
                # have completed: drop the claim (prefer silence).
                del state.inflight[site]
        for tag in tags:
            state.tags[tag] = _WAITED

    # -- SL601 ----------------------------------------------------------------

    def _check_overlap(
        self,
        new: Transfer,
        barrier: bool,
        fence: bool,
        state: DmaState,
        origin: ast.Call | None,
    ) -> None:
        if new.is_list or not (new.local.is_const and new.size.is_const):
            return
        if new.size.value <= 0:
            return
        new_lo = new.local.value
        new_hi = new_lo + new.size.value
        if barrier:
            return  # ordered after every in-flight command
        for old in sorted(state.inflight.values(), key=lambda t: t.site):
            if old.is_list or old.site == new.site:
                continue
            if not (old.local.is_const and old.size.is_const):
                continue
            if old.size.value <= 0:
                continue
            if old.kind != "get" and new.kind != "get":
                continue  # PUT/PUT both read the LS: no race
            old_lo = old.local.value
            old_hi = old_lo + old.size.value
            if not (old_lo < new_hi and new_lo < old_hi):
                continue
            if (
                fence
                and old.tag.is_const and new.tag.is_const
                and old.tag.value == new.tag.value
            ):
                continue  # fence orders after the same tag group
            steps = [
                Step(
                    old.site[0],
                    f"{old.kind} of [{old_lo}, {old_hi}) issued here "
                    f"(tag {_tag_str(old.tag)}) and is still in flight",
                ),
            ]
            if origin is not None and origin.lineno != new.site[0]:
                steps.append(
                    Step(origin.lineno, "via this call into a module helper")
                )
            steps.append(
                Step(
                    new.site[0],
                    f"{new.kind} of [{new_lo}, {new_hi}) overlaps it with no "
                    f"fence/barrier/wait_tags in between",
                )
            )
            self._record(
                "SL601",
                new.site[0],
                new.site[1],
                f"local-store ranges [{old_lo}, {old_hi}) and "
                f"[{new_lo}, {new_hi}) overlap while both transfers are in "
                f"flight on the same MFC ({old.kind} tag {_tag_str(old.tag)} "
                f"vs {new.kind} tag {_tag_str(new.tag)}); order them with "
                f"wait_tags, a fence on the same tag group, or a barrier",
                tuple(steps),
            )

    # -- SL602 ----------------------------------------------------------------

    def _check_direction_mix(
        self,
        new: Transfer,
        barrier: bool,
        fence: bool,
        state: DmaState,
        origin: ast.Call | None,
    ) -> None:
        if barrier or fence or not new.tag.is_const or new.conditional:
            return
        tag = new.tag.value
        for old in sorted(state.inflight.values(), key=lambda t: t.site):
            if old.site == new.site or old.conditional:
                continue
            if not old.tag.is_const or old.tag.value != tag:
                continue
            if old.kind == new.kind:
                continue
            steps = [
                Step(old.site[0], f"{old.kind} issued on tag group {tag}"),
                Step(
                    new.site[0],
                    f"{new.kind} issued on the same tag group while the "
                    f"{old.kind} is still in flight",
                ),
            ]
            self._record(
                "SL602",
                new.site[0],
                new.site[1],
                f"tag group {tag} carries a {old.kind} and a {new.kind} "
                f"concurrently: waiting on it conflates read and write "
                f"completion (paper guideline: give writes their own tag "
                f"group)",
                tuple(steps),
            )
            return  # one finding per new command is enough

    def _check_dead_wait(
        self,
        tags: tuple[int, ...],
        call: ast.Call,
        line: int,
        state: DmaState,
    ) -> None:
        if state.tags_unknown or not self.fn_issues_dma:
            return
        for tag in tags:
            if state.tags.get(tag, _NEVER) == _NEVER:
                self._record(
                    "SL602",
                    line,
                    call.col_offset if line == call.lineno else 0,
                    f"wait on tag group {tag}, but no path through this "
                    f"function ever issues a DMA on it: the wait is dead "
                    f"(wrong tag constant, or the issue was removed)",
                    (Step(line, f"wait_tags on never-issued tag {tag}"),),
                )

    # -- SL603 ----------------------------------------------------------------

    def _check_rotation(self, loop: ast.For | ast.AsyncFor, env: Env) -> None:
        trips = range_trip_count(loop.iter, env, self.module)
        if trips is None or trips.lo is None:
            return
        bind_for_target(loop.target, loop.iter, env, self.module)
        if _body_waits(loop.body, self.module):
            return
        self._scan_rotation_stmts(loop, loop.body, env, trips.lo)

    def _scan_rotation_stmts(
        self,
        loop: ast.For | ast.AsyncFor,
        stmts: list[ast.stmt],
        env: Env,
        min_trips: int,
    ) -> None:
        for stmt in stmts:
            if isinstance(
                stmt,
                (
                    ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                    ast.For, ast.AsyncFor, ast.While,
                ),
            ):
                # Nested loops are judged at their own loop head.
                continue
            if isinstance(stmt, ast.If):
                self._scan_rotation_stmts(loop, stmt.body, env, min_trips)
                self._scan_rotation_stmts(loop, stmt.orelse, env, min_trips)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._scan_rotation_stmts(loop, stmt.body, env, min_trips)
                continue
            if isinstance(stmt, ast.Try):
                for body in (
                    stmt.body, stmt.orelse, stmt.finalbody,
                    *(handler.body for handler in stmt.handlers),
                ):
                    self._scan_rotation_stmts(loop, body, env, min_trips)
                continue
            for call in (
                node for node in _walk_no_lambdas(stmt)
                if isinstance(node, ast.Call)
            ):
                name = _call_name(call)
                if name not in _GET_ELEM and name not in _PUT_ELEM:
                    continue
                local_expr = _get_arg(call, 3, "local_offset")
                if local_expr is None:
                    continue
                period = _rotation_period(local_expr, env, self.module)
                if period is None or min_trips <= period:
                    continue
                self._record(
                    "SL603",
                    call.lineno,
                    call.col_offset,
                    f"double-buffer rotation over {period} window(s) inside "
                    f"a loop of at least {min_trips} iterations with no "
                    f"wait_tags in the body: iteration i+{period} reuses "
                    f"the window of iteration i while its transfer can "
                    f"still be in flight",
                    (
                        Step(
                            loop.lineno,
                            f"loop runs >= {min_trips} iterations",
                        ),
                        Step(
                            call.lineno,
                            f"local offset rotates modulo {period} with no "
                            f"wait in the loop body",
                        ),
                    ),
                )
            transfer_stmt(stmt, env, self.module)

    # -- bookkeeping ----------------------------------------------------------

    def _record(
        self, rule: str, line: int, col: int, message: str,
        steps: tuple[Step, ...],
    ) -> None:
        key = (rule, line, col, message)
        if key in self._recorded:
            return
        self._recorded.add(key)
        self.findings.append(
            RawFinding(rule=rule, line=line, col=col, message=message,
                       steps=steps)
        )


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _get_arg(node: ast.Call, position: int, name: str) -> ast.expr | None:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    if position < len(node.args):
        return node.args[position]
    return None


def _flag_true(node: ast.Call, name: str) -> bool:
    for keyword in node.keywords:
        if keyword.arg == name:
            value = keyword.value
            return bool(
                isinstance(value, ast.Constant) and value.value is True
            )
    return False


def _tag_str(tag: Interval) -> str:
    return str(tag.value) if tag.is_const else "?"


def _wait_tag_list(
    call: ast.Call, env: Env, module: ModuleModel
) -> tuple[int, ...] | None:
    expr = _get_arg(call, 0, "tags")
    if expr is None:
        return None
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        tags: list[int] = []
        for element in expr.elts:
            value = eval_expr(element, env, module)
            if not value.is_const:
                return None
            tags.append(value.value)
        return tuple(tags)
    return None


def _walk_no_lambdas(node: ast.AST):
    """ast.walk that does not descend into lambdas or nested defs — their
    bodies run at another time (or never)."""
    stack = list(ast.iter_child_nodes(node))
    found = [node] if isinstance(node, (ast.Call,)) else []
    for item in found:
        yield item
    while stack:
        child = stack.pop()
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _body_waits(stmts: list[ast.stmt], module: ModuleModel) -> bool:
    """True when the loop body contains any wait — direct, or via a
    module-local helper whose effects include one."""
    for stmt in stmts:
        for node in _walk_no_lambdas(stmt):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in _WAITS:
                return True
            if name is not None and module.function(name) is not None:
                effects = module.dma_effects(name, node, {})
                if effects is UNKNOWN_EFFECTS:
                    return True  # unknown helper might wait: stay silent
                assert effects is not None
                if any(isinstance(e, WaitEffect) for e in effects):
                    return True
    return False


def _rotation_period(
    expr: ast.expr, env: Env, module: ModuleModel
) -> int | None:
    """The window count ``K`` of a rotation pattern ``... (x % K) ...``
    in a local-offset expression; None when there is no provable
    rotation.  ``x`` must actually vary (non-constant interval) — a
    constant modulo is indexing, not rotating."""
    for node in ast.walk(expr):
        if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod)):
            continue
        modulus = eval_expr(node.right, env, module)
        if not (modulus.is_const and modulus.value >= 1):
            continue
        left = eval_expr(node.left, env, module)
        if left.is_const:
            continue
        return modulus.value
    return None


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def check_function(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    module: ModuleModel,
    spu_param: str | None = None,
) -> list[RawFinding]:
    """Run the SL6xx hazard analysis over one function body."""
    return _Checker(fn, module, spu_param).run()
