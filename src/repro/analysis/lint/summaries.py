"""Interprocedural summaries: what a module-local helper does for you.

The SL6xx rules analyse one function at a time, but the shipped kernels
factor their issue loops into helpers (``_elem_loop``, ``issue_reads``)
and read module-level constants (``_READ_TAGS``, ``_WRITE_TAG``).  This
module threads those boundaries *within one module*:

* :class:`ModuleModel` — module-level integer/tuple constants plus an
  index of every function (including nested ones) by name;
* return summaries — the interval a helper returns, with its parameters
  bound to the intervals of the actual call arguments;
* DMA-effect summaries — the linearised sequence of abstract
  :class:`IssueEffect`/:class:`WaitEffect` a helper performs, again
  under caller argument binding, so ``yield from _elem_loop(spu, ...)``
  contributes its transfers to the caller's dataflow state.

Effects are a *linearisation*, not a path-sensitive product: an effect
under a branch or loop is flagged ``conditional``/``repeated`` and the
caller treats it weakly (it may not happen / may happen many times).
Cross-module calls are out of scope — a call the model cannot resolve
that receives the SPU handle conservatively clears the caller's hazard
state, so unknown code silences rules instead of feeding them guesses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.lint.dataflow import (
    TOP,
    Env,
    Interval,
    eval_expr,
    range_bounds,
    transfer_stmt,
)

__all__ = [
    "IssueEffect",
    "WaitEffect",
    "ModuleModel",
    "MAX_SUMMARY_DEPTH",
]

#: Helper-expansion depth cap (a() -> b() -> c() stops here).
MAX_SUMMARY_DEPTH = 3

#: DMA intrinsics by kind (mirrors rules.py; duplicated here to keep
#: this module importable without the rule catalog).
_GET_NAMES = frozenset({"mfc_get", "mfc_getf", "mfc_getb"})
_PUT_NAMES = frozenset({"mfc_put", "mfc_putf", "mfc_putb"})
_LIST_NAMES = frozenset({"mfc_getl", "mfc_putl"})
_WAIT_NAMES = frozenset({"wait_tags", "tag_group_quiet"})


@dataclass(frozen=True)
class IssueEffect:
    """A DMA command a helper issues, abstracted."""

    kind: str  # "get" | "put"
    is_list: bool
    tag: Interval
    local: Interval
    size: Interval
    fence: bool
    barrier: bool
    conditional: bool
    repeated: bool
    line: int  # in the helper's file (same module)

    def bound(self, conditional: bool) -> IssueEffect:
        if not conditional or self.conditional:
            return self
        return IssueEffect(
            kind=self.kind, is_list=self.is_list, tag=self.tag,
            local=self.local, size=self.size, fence=self.fence,
            barrier=self.barrier, conditional=True, repeated=self.repeated,
            line=self.line,
        )


@dataclass(frozen=True)
class WaitEffect:
    """A tag-group wait a helper performs; ``tags=None`` = unknown set."""

    tags: tuple[int, ...] | None
    conditional: bool
    line: int


#: Sentinel: the helper (or something it calls) defeats the analysis.
UNKNOWN_EFFECTS = None


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _get_arg(node: ast.Call, position: int, name: str) -> ast.expr | None:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    if position < len(node.args):
        return node.args[position]
    return None


def _flag_set(node: ast.Call, name: str) -> bool:
    for keyword in node.keywords:
        if keyword.arg == name:
            value = keyword.value
            return bool(
                isinstance(value, ast.Constant) and value.value is True
            )
    return False


def _wait_tag_list(node: ast.Call, env: Env, module: ModuleModel) -> tuple[int, ...] | None:
    expr = _get_arg(node, 0, "tags")
    if expr is None:
        return None
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        tags: list[int] = []
        for element in expr.elts:
            value = eval_expr(element, env, module)
            if not value.is_const:
                return None
            tags.append(value.value)
        return tuple(tags)
    value = eval_expr(expr, env, module)
    # A whole tuple constant (``wait_tags(tags)`` with tags=(0, 1)) stays
    # unknown here: the env carries intervals, not tuples.
    del value
    return None


class ModuleModel:
    """Constants and function summaries of one parsed module."""

    def __init__(self, tree: ast.Module, path: str = "<string>") -> None:
        self.tree = tree
        self.path = path
        self._constants: dict[str, int] = {}
        self._tuples: dict[str, tuple[int, ...]] = {}
        self._functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self._return_memo: dict[tuple, Interval] = {}
        self._collect()

    def _collect(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                value = stmt.value
                if isinstance(value, ast.Constant) and type(value.value) is int:
                    self._constants[target.id] = value.value
                elif isinstance(value, (ast.Tuple, ast.List)):
                    elements: list[int] = []
                    for element in value.elts:
                        if (
                            isinstance(element, ast.Constant)
                            and type(element.value) is int
                        ):
                            elements.append(element.value)
                        else:
                            break
                    else:
                        self._tuples[target.id] = tuple(elements)
                elif (
                    isinstance(value, ast.UnaryOp)
                    and isinstance(value.op, ast.USub)
                    and isinstance(value.operand, ast.Constant)
                    and type(value.operand.value) is int
                ):
                    self._constants[target.id] = -value.operand.value

        def index(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    # First definition wins; shadowing is rare and the
                    # conservative answer (the wrong summary) is avoided
                    # by simply not summarising ambiguous names.
                    if child.name in self._functions:
                        self._functions[child.name] = _AMBIGUOUS
                    else:
                        self._functions[child.name] = child
                    index(child)
                elif isinstance(child, ast.ClassDef):
                    index(child)
        index(self.tree)

    # -- constants ------------------------------------------------------------

    def constant_interval(self, name: str) -> Interval:
        value = self._constants.get(name)
        if value is not None:
            return Interval.const(value)
        return TOP

    def constant_tuple(self, name: str) -> tuple[int, ...] | None:
        return self._tuples.get(name)

    # -- function lookup ------------------------------------------------------

    def function(self, name: str) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        node = self._functions.get(name)
        if node is _AMBIGUOUS:
            return None
        return node

    # -- argument binding -----------------------------------------------------

    def bind_args(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        call: ast.Call,
        caller_env: Env,
        depth: int = 0,
    ) -> Env:
        """Parameter env of ``fn`` for this call: positional, keyword and
        default values evaluated in the caller's environment."""
        params = [arg.arg for arg in fn.args.posonlyargs + fn.args.args]
        env: Env = {}
        # Defaults align with the *last* parameters.
        defaults = fn.args.defaults
        for param, default in zip(params[len(params) - len(defaults):], defaults):
            env[param] = eval_expr(default, {}, self, depth)
        for kwarg, kwdefault in zip(fn.args.kwonlyargs, fn.args.kw_defaults):
            if kwdefault is not None:
                env[kwarg.arg] = eval_expr(kwdefault, {}, self, depth)
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if position < len(params):
                env[params[position]] = eval_expr(arg, caller_env, self, depth)
        for keyword in call.keywords:
            if keyword.arg is not None:
                env[keyword.arg] = eval_expr(
                    keyword.value, caller_env, self, depth
                )
        return env

    # -- return summaries -----------------------------------------------------

    def return_interval(
        self, name: str, call: ast.Call, caller_env: Env, depth: int = 1
    ) -> Interval:
        """Joined interval of every ``return`` in helper ``name``."""
        fn = self.function(name)
        if fn is None or depth > MAX_SUMMARY_DEPTH:
            return TOP
        key = _memo_key(name, fn, call, caller_env, self)
        if key is not None and key in self._return_memo:
            return self._return_memo[key]
        if key is not None:
            # Recursion guard: a self-referential helper summarises TOP.
            self._return_memo[key] = TOP
        env = self.bind_args(fn, call, caller_env, depth)
        result: Interval | None = None

        def walk(stmts: list[ast.stmt]) -> None:
            nonlocal result
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if isinstance(stmt, ast.Return):
                    value = (
                        eval_expr(stmt.value, env, self, depth)
                        if stmt.value is not None
                        else TOP
                    )
                    result = value if result is None else result.join(value)
                elif isinstance(stmt, ast.If):
                    walk(stmt.body)
                    walk(stmt.orelse)
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    from repro.analysis.lint.dataflow import bind_for_target
                    bind_for_target(stmt.target, stmt.iter, env, self)
                    walk(stmt.body)
                    walk(stmt.orelse)
                elif isinstance(stmt, ast.While):
                    walk(stmt.body)
                    walk(stmt.orelse)
                elif isinstance(stmt, ast.Try):
                    walk(stmt.body)
                    for handler in stmt.handlers:
                        walk(handler.body)
                    walk(stmt.orelse)
                    walk(stmt.finalbody)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    walk(stmt.body)
                else:
                    transfer_stmt(stmt, env, self)
        walk(fn.body)
        final = result if result is not None else TOP
        if key is not None:
            self._return_memo[key] = final
        return final

    # -- DMA-effect summaries -------------------------------------------------

    def dma_effects(
        self,
        name: str,
        call: ast.Call,
        caller_env: Env,
        depth: int = 1,
    ) -> list[IssueEffect | WaitEffect] | None:
        """Linearised DMA effects of helper ``name`` for this call, or
        ``UNKNOWN_EFFECTS`` when the helper defeats the analysis."""
        fn = self.function(name)
        if fn is None or depth > MAX_SUMMARY_DEPTH:
            return UNKNOWN_EFFECTS
        env = self.bind_args(fn, call, caller_env, depth)
        effects: list[IssueEffect | WaitEffect] = []
        spu_param = _spu_param(fn)
        defeated = False

        def emit_call(node: ast.Call, conditional: bool, repeated: bool) -> None:
            nonlocal defeated
            if defeated:
                return
            called = _call_name(node)
            if called in _GET_NAMES or called in _PUT_NAMES:
                effects.append(_issue_effect(node, called, env, self,
                                             conditional, repeated))
            elif called in _LIST_NAMES:
                effects.append(_list_effect(node, called, env, self,
                                            conditional, repeated))
            elif called in _WAIT_NAMES:
                effects.append(WaitEffect(
                    tags=_wait_tag_list(node, env, self),
                    conditional=conditional or repeated,
                    line=node.lineno,
                ))
            elif called is not None and self.function(called) is not None:
                nested = self.dma_effects(called, node, env, depth + 1)
                if nested is UNKNOWN_EFFECTS:
                    defeated = True
                    return
                assert nested is not None
                for effect in nested:
                    if isinstance(effect, IssueEffect):
                        effect = effect.bound(conditional)
                        if repeated and not effect.repeated:
                            effect = IssueEffect(
                                kind=effect.kind, is_list=effect.is_list,
                                tag=effect.tag, local=effect.local,
                                size=effect.size, fence=effect.fence,
                                barrier=effect.barrier,
                                conditional=effect.conditional,
                                repeated=True, line=effect.line,
                            )
                        effects.append(effect)
                    else:
                        effects.append(WaitEffect(
                            tags=effect.tags,
                            conditional=effect.conditional or conditional
                            or repeated,
                            line=effect.line,
                        ))
            elif spu_param is not None and any(
                isinstance(arg, ast.Name) and arg.id == spu_param
                for arg in list(node.args)
                + [k.value for k in node.keywords]
            ):
                # Unknown callee receives the SPU handle: it may issue or
                # wait anything.  Give up on this helper.
                defeated = True

        def walk(stmts: list[ast.stmt], conditional: bool, repeated: bool) -> None:
            for stmt in stmts:
                if defeated:
                    return
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if isinstance(stmt, ast.If):
                    _calls_in_expr(stmt.test, conditional, repeated, emit_call)
                    walk(stmt.body, True, repeated)
                    walk(stmt.orelse, True, repeated)
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    from repro.analysis.lint.dataflow import bind_for_target
                    bind_for_target(stmt.target, stmt.iter, env, self)
                    walk(stmt.body, conditional, True)
                    walk(stmt.orelse, conditional, repeated)
                elif isinstance(stmt, ast.While):
                    walk(stmt.body, conditional, True)
                    walk(stmt.orelse, conditional, repeated)
                elif isinstance(stmt, ast.Try):
                    walk(stmt.body, conditional, repeated)
                    for handler in stmt.handlers:
                        walk(handler.body, True, repeated)
                    walk(stmt.orelse, True, repeated)
                    walk(stmt.finalbody, conditional, repeated)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    walk(stmt.body, conditional, repeated)
                else:
                    for node in sorted(
                        (n for n in ast.walk(stmt) if isinstance(n, ast.Call)),
                        key=lambda n: (n.lineno, n.col_offset),
                    ):
                        emit_call(node, conditional, repeated)
                    transfer_stmt(stmt, env, self)
        walk(fn.body, False, False)
        if defeated:
            return UNKNOWN_EFFECTS
        return effects


def _calls_in_expr(expr: ast.expr, conditional: bool, repeated: bool,
                   emit) -> None:
    for node in sorted(
        (n for n in ast.walk(expr) if isinstance(n, ast.Call)),
        key=lambda n: (n.lineno, n.col_offset),
    ):
        emit(node, conditional, repeated)


def _issue_effect(
    node: ast.Call, called: str, env: Env, module: ModuleModel,
    conditional: bool, repeated: bool,
) -> IssueEffect:
    tag_expr = _get_arg(node, 1, "tag")
    local_expr = _get_arg(node, 3, "local_offset")
    return IssueEffect(
        kind="get" if called in _GET_NAMES else "put",
        is_list=False,
        tag=eval_expr(tag_expr, env, module)
        if tag_expr is not None else Interval.const(0),
        local=eval_expr(local_expr, env, module)
        if local_expr is not None else Interval.const(0),
        size=eval_expr(_get_arg(node, 0, "size"), env, module),
        fence=called.endswith("f") or _flag_set(node, "fence"),
        barrier=called.endswith("b") or _flag_set(node, "barrier"),
        conditional=conditional,
        repeated=repeated,
        line=node.lineno,
    )


def _list_effect(
    node: ast.Call, called: str, env: Env, module: ModuleModel,
    conditional: bool, repeated: bool,
) -> IssueEffect:
    return IssueEffect(
        kind="get" if called == "mfc_getl" else "put",
        is_list=True,
        tag=eval_expr(_get_arg(node, 2, "tag"), env, module)
        if _get_arg(node, 2, "tag") is not None else Interval.const(0),
        local=TOP,  # list local cursors are runtime-managed
        size=TOP,
        fence=False,
        barrier=False,
        conditional=conditional,
        repeated=repeated,
        line=node.lineno,
    )


def _spu_param(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    params = [arg.arg for arg in fn.args.posonlyargs + fn.args.args]
    for param in params:
        if param in ("spu", "env"):
            return param
    return None


def _memo_key(name, fn, call, caller_env, module) -> tuple | None:
    """A hashable memo key for a return summary; None disables memoing
    (argument intervals that are unhashable never happen, but cheap
    calls with many distinct arguments would bloat the memo)."""
    try:
        env = module.bind_args(fn, call, caller_env)
        return (name, tuple(sorted(env.items())))
    except Exception:  # pragma: no cover - defensive
        return None


#: Sentinel stored for ambiguously-named functions.
_AMBIGUOUS = ast.FunctionDef(
    name="<ambiguous>", args=ast.arguments(
        posonlyargs=[], args=[], kwonlyargs=[], kw_defaults=[], defaults=[]
    ),
    body=[], decorator_list=[], lineno=0, col_offset=0,
)
