"""The abstract domain of the simlint dataflow engine.

Two pieces:

* :class:`Interval` — the classic integer-interval lattice with the
  constant-propagation singletons as its precise bottom edge.  All the
  SL6xx rules' arithmetic (local-store offsets, sizes, buffer-rotation
  indices, loop trip counts) is interval arithmetic over this type.
* :func:`eval_expr` — abstract evaluation of a Python expression under a
  variable environment plus a module model (module-level constants and
  per-function return summaries from :mod:`.summaries`).

The analysis only ever *loses* precision safely: anything it cannot
evaluate is :data:`TOP` (``(-inf, +inf)``), and every rule built on top
fires on *provable* facts only — an unknown offset can never produce a
finding, so imprecision shows up as silence, not noise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.analysis.lint.summaries import ModuleModel

__all__ = [
    "Interval",
    "TOP",
    "Env",
    "eval_expr",
    "join_env",
    "widen_env",
    "bind_for_target",
    "range_bounds",
    "range_trip_count",
    "analyze_intervals",
]

#: How many times a loop head is re-joined before widening to infinity.
WIDEN_AFTER = 3

#: Recursion depth cap for call summaries inside expressions.
MAX_CALL_DEPTH = 3


@dataclass(frozen=True)
class Interval:
    """``[lo, hi]`` over the integers; ``None`` bounds are infinities."""

    lo: int | None
    hi: int | None

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def const(value: int) -> Interval:
        return Interval(value, value)

    @staticmethod
    def range(lo: int | None, hi: int | None) -> Interval:
        return Interval(lo, hi)

    # -- queries --------------------------------------------------------------

    @property
    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    @property
    def is_const(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    @property
    def value(self) -> int:
        """The single value of a constant interval."""
        if not self.is_const:
            raise ValueError(f"{self} is not a constant")
        assert self.lo is not None
        return self.lo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"

    # -- lattice --------------------------------------------------------------

    def join(self, other: Interval) -> Interval:
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def widen(self, newer: Interval) -> Interval:
        """Classic interval widening: a bound that moved goes to infinity."""
        lo = self.lo
        if lo is not None and (newer.lo is None or newer.lo < lo):
            lo = None
        hi = self.hi
        if hi is not None and (newer.hi is None or newer.hi > hi):
            hi = None
        return Interval(lo, hi)

    # -- arithmetic -----------------------------------------------------------

    def add(self, other: Interval) -> Interval:
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return Interval(lo, hi)

    def neg(self) -> Interval:
        lo = None if self.hi is None else -self.hi
        hi = None if self.lo is None else -self.lo
        return Interval(lo, hi)

    def sub(self, other: Interval) -> Interval:
        return self.add(other.neg())

    def mul(self, other: Interval) -> Interval:
        if self.is_const and other.is_const:
            return Interval.const(self.value * other.value)
        # General interval multiplication only when all bounds are finite.
        if None in (self.lo, self.hi, other.lo, other.hi):
            # One special case stays precise: scaling by a non-negative
            # constant keeps the known bound directions.
            for a, b in ((self, other), (other, self)):
                if a.is_const and a.value >= 0:
                    lo = None if b.lo is None else b.lo * a.value
                    hi = None if b.hi is None else b.hi * a.value
                    return Interval(lo, hi)
            return TOP
        products = [
            self.lo * other.lo, self.lo * other.hi,
            self.hi * other.lo, self.hi * other.hi,
        ]
        return Interval(min(products), max(products))

    def floordiv(self, other: Interval) -> Interval:
        if other.is_const and other.value != 0:
            divisor = other.value
            if divisor > 0:
                lo = None if self.lo is None else self.lo // divisor
                hi = None if self.hi is None else self.hi // divisor
                return Interval(lo, hi)
        return TOP

    def mod(self, other: Interval) -> Interval:
        if other.is_const and other.value > 0:
            modulus = other.value
            if (
                self.lo is not None and self.hi is not None
                and self.lo >= 0 and self.hi < modulus
            ):
                return self  # already inside [0, modulus)
            if self.is_const:
                return Interval.const(self.value % modulus)
            return Interval(0, modulus - 1)
        return TOP

    def binop(self, op: ast.operator, other: Interval) -> Interval:
        if isinstance(op, ast.Add):
            return self.add(other)
        if isinstance(op, ast.Sub):
            return self.sub(other)
        if isinstance(op, ast.Mult):
            return self.mul(other)
        if isinstance(op, ast.FloorDiv):
            return self.floordiv(other)
        if isinstance(op, ast.Mod):
            return self.mod(other)
        if isinstance(op, ast.LShift) and self.is_const and other.is_const:
            if other.value >= 0:
                return Interval.const(self.value << other.value)
        if isinstance(op, ast.RShift) and self.is_const and other.is_const:
            if other.value >= 0:
                return Interval.const(self.value >> other.value)
        if self.is_const and other.is_const:
            if isinstance(op, ast.BitAnd):
                return Interval.const(self.value & other.value)
            if isinstance(op, ast.BitOr):
                return Interval.const(self.value | other.value)
            if isinstance(op, ast.BitXor):
                return Interval.const(self.value ^ other.value)
            if isinstance(op, ast.Pow) and other.value >= 0:
                return Interval.const(self.value ** other.value)
        return TOP


#: The unknown integer.
TOP = Interval(None, None)

#: A variable environment: name -> interval (missing = unknown).
Env = dict[str, Interval]


def join_env(a: Env, b: Env) -> Env:
    """Pointwise join; a variable defined on one path only is unknown."""
    joined: Env = {}
    for name, value in a.items():
        other = b.get(name)
        joined[name] = value.join(other) if other is not None else TOP
    for name in b:
        if name not in a:
            joined[name] = TOP
    return joined


def widen_env(old: Env, new: Env) -> Env:
    widened: Env = {}
    for name, value in new.items():
        previous = old.get(name)
        widened[name] = previous.widen(value) if previous is not None else value
    return widened


# ---------------------------------------------------------------------------
# Abstract expression evaluation
# ---------------------------------------------------------------------------

def eval_expr(
    expr: ast.expr | None,
    env: Env,
    module: ModuleModel | None = None,
    depth: int = 0,
) -> Interval:
    """The interval of ``expr`` under ``env`` (TOP when unknown)."""
    if expr is None:
        return TOP
    if isinstance(expr, ast.Constant):
        if type(expr.value) is int:
            return Interval.const(expr.value)
        return TOP
    if isinstance(expr, ast.Name):
        value = env.get(expr.id)
        if value is not None:
            return value
        if module is not None:
            return module.constant_interval(expr.id)
        return TOP
    if isinstance(expr, ast.UnaryOp):
        operand = eval_expr(expr.operand, env, module, depth)
        if isinstance(expr.op, ast.USub):
            return operand.neg()
        if isinstance(expr.op, ast.UAdd):
            return operand
        if isinstance(expr.op, ast.Invert) and operand.is_const:
            return Interval.const(~operand.value)
        return TOP
    if isinstance(expr, ast.BinOp):
        left = eval_expr(expr.left, env, module, depth)
        right = eval_expr(expr.right, env, module, depth)
        return left.binop(expr.op, right)
    if isinstance(expr, ast.IfExp):
        return eval_expr(expr.body, env, module, depth).join(
            eval_expr(expr.orelse, env, module, depth)
        )
    if isinstance(expr, ast.Subscript):
        return _eval_subscript(expr, env, module, depth)
    if isinstance(expr, ast.Call):
        return _eval_call(expr, env, module, depth)
    return TOP


def _eval_subscript(
    expr: ast.Subscript, env: Env, module: ModuleModel | None, depth: int
) -> Interval:
    """``TUPLE[i]`` over module-level constant tuples: a constant index
    gives that element; an unknown index the join of all elements."""
    if module is None or not isinstance(expr.value, ast.Name):
        return TOP
    elements = module.constant_tuple(expr.value.id)
    if elements is None:
        return TOP
    index = eval_expr(expr.slice, env, module, depth)
    if index.is_const and -len(elements) <= index.value < len(elements):
        return Interval.const(elements[index.value])
    joined = Interval.const(elements[0])
    for element in elements[1:]:
        joined = joined.join(Interval.const(element))
    return joined


def _eval_call(
    expr: ast.Call, env: Env, module: ModuleModel | None, depth: int
) -> Interval:
    func = expr.func
    name = func.id if isinstance(func, ast.Name) else None
    args = [eval_expr(arg, env, module, depth) for arg in expr.args]
    if name in ("min", "max") and args and not expr.keywords:
        if all(a.lo is not None and a.hi is not None for a in args):
            pick = min if name == "min" else max
            assert all(a.lo is not None and a.hi is not None for a in args)
            return Interval(
                pick(a.lo for a in args),  # type: ignore[type-var]
                pick(a.hi for a in args),  # type: ignore[type-var]
            )
        return TOP
    if name == "abs" and len(args) == 1 and args[0].is_const:
        return Interval.const(abs(args[0].value))
    if name == "len":
        return Interval(0, None)
    if (
        name is not None
        and module is not None
        and depth < MAX_CALL_DEPTH
    ):
        return module.return_interval(name, expr, env, depth + 1)
    return TOP


# ---------------------------------------------------------------------------
# Loop helpers
# ---------------------------------------------------------------------------

def range_bounds(
    iterator: ast.expr, env: Env, module: ModuleModel | None = None
) -> Interval | None:
    """The interval a ``for`` target covers when iterating ``range(...)``
    with statically-bounded arguments; None when not a bounded range."""
    if not (
        isinstance(iterator, ast.Call)
        and isinstance(iterator.func, ast.Name)
        and iterator.func.id == "range"
        and not iterator.keywords
        and 1 <= len(iterator.args) <= 3
    ):
        return None
    args = [eval_expr(arg, env, module) for arg in iterator.args]
    if len(args) == 1:
        start, stop, step = Interval.const(0), args[0], Interval.const(1)
    elif len(args) == 2:
        start, stop, step = args[0], args[1], Interval.const(1)
    else:
        start, stop, step = args
    if not (step.is_const and step.value != 0):
        return None
    if step.value > 0:
        if start.lo is None or stop.hi is None:
            return None
        return Interval(start.lo, stop.hi - 1)
    if start.hi is None or stop.lo is None:
        return None
    return Interval(stop.lo + 1, start.hi)


def range_trip_count(
    iterator: ast.expr, env: Env, module: ModuleModel | None = None
) -> Interval | None:
    """Iteration-count interval of ``range(...)``; None when unbounded."""
    if not (
        isinstance(iterator, ast.Call)
        and isinstance(iterator.func, ast.Name)
        and iterator.func.id == "range"
        and not iterator.keywords
        and 1 <= len(iterator.args) <= 3
    ):
        return None
    args = [eval_expr(arg, env, module) for arg in iterator.args]
    if len(args) == 1:
        start, stop, step = Interval.const(0), args[0], Interval.const(1)
    elif len(args) == 2:
        start, stop, step = args[0], args[1], Interval.const(1)
    else:
        start, stop, step = args
    if not (step.is_const and step.value != 0):
        return None
    step_value = abs(step.value)
    if step.value < 0:
        start, stop = stop.neg(), start.neg()
    span_lo = (
        None if start.hi is None or stop.lo is None else stop.lo - start.hi
    )
    span_hi = (
        None if start.lo is None or stop.hi is None else stop.hi - start.lo
    )
    lo = None if span_lo is None else max(0, -(-span_lo // step_value))
    hi = None if span_hi is None else max(0, -(-span_hi // step_value))
    return Interval(lo, hi)


def bind_for_target(
    target: ast.expr, iterator: ast.expr, env: Env,
    module: ModuleModel | None = None,
) -> None:
    """Bind a ``for`` target in ``env``: ``range`` bounds when known,
    TOP otherwise (tuple targets get TOP elementwise)."""
    bounds = range_bounds(iterator, env, module)
    if isinstance(target, ast.Name):
        env[target.id] = bounds if bounds is not None else TOP
        return
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            env[node.id] = TOP


def transfer_stmt(
    stmt: ast.stmt, env: Env, module: ModuleModel | None = None
) -> None:
    """Update ``env`` in place for one simple statement."""
    if isinstance(stmt, ast.Assign):
        value = eval_expr(stmt.value, env, module)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                env[target.id] = value
            elif isinstance(target, (ast.Tuple, ast.List)):
                _bind_tuple_target(target, stmt.value, env, module)
            else:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        env.pop(node.id, None)
    elif isinstance(stmt, ast.AnnAssign):
        if isinstance(stmt.target, ast.Name):
            env[stmt.target.id] = eval_expr(stmt.value, env, module)
    elif isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Name):
            current = env.get(stmt.target.id, TOP)
            env[stmt.target.id] = current.binop(
                stmt.op, eval_expr(stmt.value, env, module)
            )
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                env.pop(target.id, None)


def _bind_tuple_target(
    target: ast.Tuple | ast.List,
    value: ast.expr,
    env: Env,
    module: ModuleModel | None,
) -> None:
    values: list[ast.expr] | None = None
    if isinstance(value, (ast.Tuple, ast.List)) and len(value.elts) == len(
        target.elts
    ):
        values = value.elts
    for index, element in enumerate(target.elts):
        if isinstance(element, ast.Name):
            env[element.id] = (
                eval_expr(values[index], env, module)
                if values is not None
                else TOP
            )
        else:
            for node in ast.walk(element):
                if isinstance(node, ast.Name):
                    env[node.id] = TOP


# ---------------------------------------------------------------------------
# A plain interval fixpoint over a CFG (exposed for tests; the SL6xx
# checker embeds the same loop with its richer DMA state)
# ---------------------------------------------------------------------------

def analyze_intervals(
    cfg, init: Env | None = None, module: ModuleModel | None = None,
    max_passes: int = 64,
):
    """Fixpoint interval analysis; returns ``{block_id: in_env}``."""
    from repro.analysis.lint.cfg import CFG  # noqa: F401 - typing aid

    in_envs: dict[int, Env] = {cfg.entry: dict(init or {})}
    order = cfg.rpo()
    joins: dict[int, int] = {}
    for _ in range(max_passes):
        changed = False
        for block_id in order:
            if block_id not in in_envs:
                continue
            env = dict(in_envs[block_id])
            block = cfg.block(block_id)
            if block.loop is not None and isinstance(block.loop, ast.For):
                bind_for_target(block.loop.target, block.loop.iter, env, module)
            for stmt in block.stmts:
                transfer_stmt(stmt, env, module)
            for succ in block.succs:
                if succ not in in_envs:
                    in_envs[succ] = dict(env)
                    changed = True
                    continue
                merged = join_env(in_envs[succ], env)
                if cfg.block(succ).is_loop_head:
                    joins[succ] = joins.get(succ, 0) + 1
                    if joins[succ] > WIDEN_AFTER:
                        merged = widen_env(in_envs[succ], merged)
                if merged != in_envs[succ]:
                    in_envs[succ] = merged
                    changed = True
        if not changed:
            break
    return in_envs
