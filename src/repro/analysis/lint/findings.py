"""Finding and severity types shared by every simlint rule.

A :class:`Finding` is one diagnostic anchored to a source location; the
engine collects them across files and the CLI renders them as
``path:line:col: SEVERITY RULE message`` lines (the format editors and CI
annotations already understand).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

class Severity(enum.IntEnum):
    """How bad a finding is.  Ordered so thresholds compare naturally."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> Severity:
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; choose from "
                f"{', '.join(s.name.lower() for s in cls)}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violation at a source location."""

    rule: str
    name: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.severity} {self.rule} [{self.name}] {self.message}"
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
