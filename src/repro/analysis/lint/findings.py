"""Finding and severity types shared by every simlint rule.

A :class:`Finding` is one diagnostic anchored to a source location; the
engine collects them across files and the CLI renders them as
``path:line:col: SEVERITY RULE message`` lines (the format editors and CI
annotations already understand).  Dataflow findings (the SL6xx family)
additionally carry ``steps`` — the offending path as ``(line, note)``
pairs — which ``--explain RULE`` renders as ``file:line`` step lists.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class Severity(enum.IntEnum):
    """How bad a finding is.  Ordered so thresholds compare naturally."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> Severity:
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; choose from "
                f"{', '.join(s.name.lower() for s in cls)}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violation at a source location."""

    rule: str
    name: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    #: Offending path for dataflow findings: ``(line, note)`` steps in
    #: source order, all within ``path`` (the analysis is per-module).
    steps: tuple[tuple[int, str], ...] = field(default=(), compare=False)

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.severity} {self.rule} [{self.name}] {self.message}"
        )

    def explain(self) -> list[str]:
        """The offending path as ``file:line`` step lines."""
        return [
            f"    step {index}: {self.path}:{line}  {note}"
            for index, (line, note) in enumerate(self.steps, start=1)
        ]

    def format_github(self) -> str:
        """A GitHub Actions workflow-command annotation."""
        kind = "error" if self.severity >= Severity.ERROR else "warning"
        # Workflow commands terminate the message at a newline; the
        # properties must not contain commas or colons from the path.
        message = f"{self.rule} [{self.name}] {self.message}".replace(
            "\n", " "
        )
        return (
            f"::{kind} file={self.path},line={self.line},"
            f"col={self.col + 1},title=simlint {self.rule}::{message}"
        )

    @property
    def fingerprint(self) -> tuple[str, str, int, int]:
        """Identity used by baselines and dedup: location + rule."""
        return (self.path, self.rule, self.line, self.col)

    def to_json(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "rule": self.rule,
            "name": self.name,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.steps:
            data["steps"] = [
                {"line": line, "note": note} for line, note in self.steps
            ]
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> Finding:
        """Inverse of :meth:`to_json` (result cache, baselines)."""
        return cls(
            rule=data["rule"],
            name=data["name"],
            severity=Severity.parse(data["severity"]),
            path=data["path"],
            line=data["line"],
            col=data["col"],
            message=data["message"],
            steps=tuple(
                (step["line"], step["note"])
                for step in data.get("steps", ())
            ),
        )
