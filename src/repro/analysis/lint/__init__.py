"""simlint: static analysis for SPU programs and sim processes.

The paper's programming guidelines are synchronisation discipline, and
every one has a misuse mode that silently corrupts a bandwidth number or
livelocks the simulator.  This package catches them before a run:

* ``SL101``/``SL102`` — tag-group synchronisation (LS data consumed
  before its GET landed; programs returning with DMA in flight);
* ``SL201`` — zero-time livelock loops in sim processes;
* ``SL301``/``SL302`` — DMA size/alignment legality and the sub-128 B
  efficiency cliff, checked with the MFC's own ``validate_transfer``;
* ``SL401`` — fractional cycle delays (kernel time is an integer);
* ``SL501`` — wall clocks / unseeded RNGs that would break the
  byte-identical replay the result cache and parallel executor assume.

Run it as ``python -m repro.lint <paths>`` or programmatically::

    from repro.analysis.lint import lint_callable
    assert lint_callable(my_kernel) == []

The *runtime* complement — the DMA hazard sanitizer that checks actual
overlap/ordering of in-flight commands — lives in
:mod:`repro.sim.sanitizer` and is enabled with ``reproduce --sanitize``.
"""

from repro.analysis.lint.engine import (
    LintError,
    iter_python_files,
    lint_callable,
    lint_file,
    lint_paths,
    lint_source,
    select_rules,
)
from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.rules import RULES, Rule, RuleContext

__all__ = [
    "Finding",
    "LintError",
    "RULES",
    "Rule",
    "RuleContext",
    "Severity",
    "iter_python_files",
    "lint_callable",
    "lint_file",
    "lint_paths",
    "lint_source",
    "select_rules",
]
