"""simlint: static analysis for SPU programs and sim processes.

The paper's programming guidelines are synchronisation discipline, and
every one has a misuse mode that silently corrupts a bandwidth number or
livelocks the simulator.  This package catches them before a run:

* ``SL101``/``SL102`` — tag-group synchronisation (LS data consumed
  before its GET landed; programs returning with DMA in flight);
* ``SL201`` — zero-time livelock loops in sim processes;
* ``SL301``/``SL302`` — DMA size/alignment legality and the sub-128 B
  efficiency cliff, checked with the MFC's own ``validate_transfer``;
* ``SL401`` — fractional cycle delays (kernel time is an integer);
* ``SL501`` — wall clocks / unseeded RNGs that would break the
  byte-identical replay the result cache and parallel executor assume;
* ``SL601``/``SL602``/``SL603`` — interprocedural dataflow proofs over
  per-function CFGs with a constant-propagation + interval domain:
  local-store buffer overlap (the static counterpart of the runtime
  ``DmaSanitizer``), tag-group lifecycle errors, and double-buffer
  rotation that aliases the in-flight window;
* ``SL801``/``SL802`` — suppression hygiene (a suppression needs rules
  and a reason; a stale suppression is itself a finding).

Run it as ``python -m repro.lint <paths>`` or programmatically::

    from repro.analysis.lint import lint_callable
    assert lint_callable(my_kernel) == []

Findings can be silenced inline (``# simlint: ignore[SL302] -- reason``)
or frozen wholesale with ``--baseline FILE``; results are cached by file
content hash under ``.repro-cache/lint/`` so re-lints are O(changed
files).

The *runtime* complement — the DMA hazard sanitizer that checks actual
overlap/ordering of in-flight commands — lives in
:mod:`repro.sim.sanitizer` and is enabled with ``reproduce --sanitize``.
"""

from repro.analysis.lint.cache import LintCache, catalog_version
from repro.analysis.lint.cfg import CFG, Block, build_cfg
from repro.analysis.lint.dataflow import (
    TOP,
    Interval,
    analyze_intervals,
    eval_expr,
)
from repro.analysis.lint.engine import (
    LintError,
    Suppression,
    apply_baseline,
    iter_python_files,
    lint_callable,
    lint_file,
    lint_paths,
    lint_source,
    load_baseline,
    select_rules,
    write_baseline,
)
from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.rules import RULES, Rule, RuleContext
from repro.analysis.lint.summaries import ModuleModel

__all__ = [
    "CFG",
    "Block",
    "Finding",
    "Interval",
    "LintCache",
    "LintError",
    "ModuleModel",
    "RULES",
    "Rule",
    "RuleContext",
    "Severity",
    "Suppression",
    "TOP",
    "analyze_intervals",
    "apply_baseline",
    "build_cfg",
    "catalog_version",
    "eval_expr",
    "iter_python_files",
    "lint_callable",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "select_rules",
    "write_baseline",
]
