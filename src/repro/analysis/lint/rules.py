"""The simlint rule catalog.

Every rule is a pure function over a :class:`RuleContext` (one parsed
module plus its classified functions) returning findings.  The catalog
mirrors the paper's programming guidelines: each rule is the static shadow
of a misuse mode that would silently corrupt a bandwidth number, livelock
the simulator, or break the byte-identical determinism the result cache
and parallel executor rely on.

Rule numbering groups by theme:

* ``SL1xx`` — DMA synchronisation discipline (tag groups, delayed sync);
* ``SL2xx`` — simulation-process liveness (zero-time livelocks);
* ``SL3xx`` — DMA size/alignment legality and efficiency;
* ``SL4xx`` — kernel-time integrality (cycle counts are integers);
* ``SL5xx`` — determinism (no wall clocks or unseeded RNGs in sim code);
* ``SL6xx`` — dataflow hazard proofs (the static shadow of the runtime
  ``DmaSanitizer``: buffer overlap, tag lifecycle, double-buffer phase),
  computed by the CFG + interval engine in :mod:`.cfg`/:mod:`.dataflow`/
  :mod:`.summaries`/:mod:`.hazards`;
* ``SL8xx`` — lint hygiene (invalid or stale suppression comments),
  emitted by the engine itself.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from collections.abc import Callable

from repro.analysis.lint.findings import Finding, Severity
from repro.cell.dma import EFFICIENT_MIN_BYTES, validate_transfer
from repro.cell.errors import DmaAlignmentError, DmaSizeError

#: SPU intrinsics that issue a GET (write into the local store).
GET_CALLS = frozenset({"mfc_get", "mfc_getf", "mfc_getb", "mfc_getl"})

#: SPU intrinsics that issue a PUT (read out of the local store).
PUT_CALLS = frozenset({"mfc_put", "mfc_putf", "mfc_putb", "mfc_putl"})

#: Single-element DMA intrinsics (``size`` is the first argument).
ELEM_CALLS = frozenset(
    {"mfc_get", "mfc_put", "mfc_getf", "mfc_putf", "mfc_getb", "mfc_putb"}
)

#: DMA-list intrinsics (``element_size``, ``n_elements`` lead).
LIST_CALLS = frozenset({"mfc_getl", "mfc_putl"})

#: Calls that synchronise tag groups (the model's tag-status reads).
WAIT_CALLS = frozenset({"wait_tags", "tag_group_quiet"})

#: Calls that consume local-store data (compute on it / publish results).
CONSUME_CALLS = frozenset({"compute", "write_out_mbox"})

#: Maximum elements one DMA list can carry (CBE Programming Handbook).
LIST_MAX_ELEMENTS = 2048

#: Sentinel tag for DMA issued with a statically-unknown tag expression.
UNKNOWN_TAG = "?"

Tag = int | str


@dataclass
class FunctionInfo:
    """One function definition, classified for the rules."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    qualname: str
    is_generator: bool
    first_param: str | None

    @property
    def is_sim(self) -> bool:
        """Heuristic: sim processes and SPU programs are generators, or
        take the runtime handle (``spu``/``env``) as their first arg."""
        return self.is_generator or self.first_param in ("spu", "env")

    @property
    def is_spu_program(self) -> bool:
        return self.first_param == "spu"

    @property
    def is_helper(self) -> bool:
        return self.node.name.startswith("_")


@dataclass
class RuleContext:
    """Everything a rule sees: one parsed module."""

    tree: ast.Module
    path: str
    functions: list[FunctionInfo] = field(default_factory=list)
    #: Dataflow findings (SL6xx), computed once per module on first
    #: demand and shared by the three SL6xx rule entries.
    _dataflow: list[Finding] | None = field(default=None, repr=False)


@dataclass(frozen=True)
class Rule:
    """A registered rule: identity, default severity, and its checker."""

    id: str
    name: str
    severity: Severity
    summary: str
    check: Callable[[RuleContext], list[Finding]]


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------

def call_name(node: ast.Call) -> str | None:
    """The called name: ``spu.mfc_get(...)`` and ``mfc_get(...)`` both
    resolve to ``mfc_get``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def keyword_arg(node: ast.Call, name: str) -> ast.expr | None:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def get_arg(node: ast.Call, position: int, name: str) -> ast.expr | None:
    """Argument by keyword name or position (None when absent)."""
    value = keyword_arg(node, name)
    if value is not None:
        return value
    if position < len(node.args):
        return node.args[position]
    return None


def const_int(expr: ast.expr | None) -> int | None:
    """The literal int value of an expression, if it has one.
    ``True``/``False`` are not cycle counts or tags."""
    if (
        isinstance(expr, ast.Constant)
        and type(expr.value) is int
    ):
        return expr.value
    if (
        isinstance(expr, ast.UnaryOp)
        and isinstance(expr.op, ast.USub)
        and isinstance(expr.operand, ast.Constant)
        and type(expr.operand.value) is int
    ):
        return -expr.operand.value
    return None


def iter_calls(node: ast.AST) -> list[ast.Call]:
    return [child for child in ast.walk(node) if isinstance(child, ast.Call)]


def body_without_nested_functions(node: ast.AST) -> list[ast.AST]:
    """All descendants of ``node``, not descending into nested function
    or class definitions (their bodies are analysed on their own)."""
    found: list[ast.AST] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        found.append(child)
        stack.extend(ast.iter_child_nodes(child))
    return found


def contains_yield(node: ast.AST) -> bool:
    return any(
        isinstance(child, (ast.Yield, ast.YieldFrom))
        for child in body_without_nested_functions(node)
    )


def _dma_tag(call: ast.Call) -> Tag:
    """The tag group a DMA intrinsic joins (default 0, ``UNKNOWN_TAG``
    when the expression is not a literal)."""
    name = call_name(call)
    position = 2 if name in LIST_CALLS else 1
    expr = get_arg(call, position, "tag")
    if expr is None:
        return 0
    value = const_int(expr)
    return value if value is not None else UNKNOWN_TAG


def _wait_tags(call: ast.Call) -> list[Tag] | None:
    """Tags a wait call covers; None when statically unknown."""
    expr = get_arg(call, 0, "tags")
    if expr is None:
        return None
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        tags: list[Tag] = []
        for element in expr.elts:
            value = const_int(element)
            if value is None:
                return None
            tags.append(value)
        return tags
    return None


# ---------------------------------------------------------------------------
# SL101 / SL102: tag-group synchronisation discipline
# ---------------------------------------------------------------------------

class _TagState:
    """Dirty tag groups along one straight-line walk of a function.

    ``gets``/``puts`` map tag -> the call node that last dirtied it.  A
    wait on a statically-known tag list cleans those tags; a wait on an
    unknown expression conservatively cleans everything (the analysis
    prefers silence over false alarms).
    """

    def __init__(self) -> None:
        self.gets: dict[Tag, ast.Call] = {}
        self.puts: dict[Tag, ast.Call] = {}

    def copy(self) -> _TagState:
        state = _TagState()
        state.gets = dict(self.gets)
        state.puts = dict(self.puts)
        return state

    def merge(self, other: _TagState) -> None:
        for tag, node in other.gets.items():
            self.gets.setdefault(tag, node)
        for tag, node in other.puts.items():
            self.puts.setdefault(tag, node)

    def issue(self, call: ast.Call) -> None:
        name = call_name(call)
        tag = _dma_tag(call)
        if name in GET_CALLS:
            self.gets[tag] = call
        else:
            self.puts[tag] = call

    def wait(self, call: ast.Call) -> None:
        tags = _wait_tags(call)
        if tags is None or UNKNOWN_TAG in self.gets or UNKNOWN_TAG in self.puts:
            self.gets.clear()
            self.puts.clear()
            return
        for tag in tags:
            self.gets.pop(tag, None)
            self.puts.pop(tag, None)


def _walk_tag_state(
    statements: list[ast.stmt],
    state: _TagState,
    on_consume: Callable[[ast.Call, _TagState], None],
) -> None:
    """Sequential walk of a statement list tracking dirty tag groups.

    Branches are walked with copies and merged (union of dirtiness);
    loop bodies are walked once — the analysis is straight-line, not a
    fixed point, so a get at the bottom of a loop consumed at the top of
    the next iteration is out of scope (documented limitation).
    """
    for statement in statements:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
            continue
        if isinstance(statement, ast.If):
            branch = state.copy()
            _walk_tag_state(statement.body, state, on_consume)
            _walk_tag_state(statement.orelse, branch, on_consume)
            state.merge(branch)
            continue
        if isinstance(statement, (ast.For, ast.While)):
            _walk_tag_state(statement.body, state, on_consume)
            _walk_tag_state(statement.orelse, state, on_consume)
            continue
        if isinstance(statement, ast.Try):
            _walk_tag_state(statement.body, state, on_consume)
            for handler in statement.handlers:
                branch = state.copy()
                _walk_tag_state(handler.body, branch, on_consume)
                state.merge(branch)
            _walk_tag_state(statement.orelse, state, on_consume)
            _walk_tag_state(statement.finalbody, state, on_consume)
            continue
        if isinstance(statement, ast.With):
            _walk_tag_state(statement.body, state, on_consume)
            continue
        # Straight-line statement: process its calls in source order.
        for call in sorted(
            iter_calls(statement), key=lambda c: (c.lineno, c.col_offset)
        ):
            name = call_name(call)
            if name in GET_CALLS or name in PUT_CALLS:
                state.issue(call)
            elif name in WAIT_CALLS:
                state.wait(call)
            elif name in CONSUME_CALLS:
                on_consume(call, state)


def check_ls_read_before_sync(context: RuleContext) -> list[Finding]:
    """SL101: computing on (or publishing) local-store data while a GET
    tag group still has outstanding commands — on hardware the buffer may
    not have landed, so the numbers are garbage."""
    findings: list[Finding] = []
    seen: set[tuple[int, int]] = set()

    for info in context.functions:
        if not info.is_sim:
            continue

        def consume(call: ast.Call, state: _TagState) -> None:
            if not state.gets:
                return
            key = (call.lineno, call.col_offset)
            if key in seen:
                return
            seen.add(key)
            tags = ", ".join(str(tag) for tag in sorted(state.gets, key=str))
            findings.append(
                _finding(
                    RULES["SL101"],
                    context.path,
                    call,
                    f"{call_name(call)}() while mfc_get commands on tag "
                    f"group(s) {{{tags}}} are still outstanding; the local "
                    f"store may not hold the data yet — wait_tags([...]) "
                    f"on those groups first",
                )
            )

        _walk_tag_state(info.node.body, _TagState(), consume)
    return findings


def check_unwaited_dma(context: RuleContext) -> list[Finding]:
    """SL102: an SPU program that can return with DMA still in flight.

    The paper's rule is *delay* synchronisation, not *skip* it: a timed
    region that ends before the tag groups are quiet reports bandwidth
    for data that never arrived.  Helpers (leading underscore) are
    exempt — their caller owns the synchronisation.
    """
    findings: list[Finding] = []
    for info in context.functions:
        if not info.is_spu_program or info.is_helper:
            continue
        final = _TagState()
        _walk_tag_state(info.node.body, final, lambda call, state: None)
        dirty = {**final.gets, **final.puts}
        if not dirty:
            continue
        tags = ", ".join(str(tag) for tag in sorted(dirty, key=str))
        last = max(dirty.values(), key=lambda c: (c.lineno, c.col_offset))
        findings.append(
            _finding(
                RULES["SL102"],
                context.path,
                last,
                f"program {info.node.name!r} can return with DMA on tag "
                f"group(s) {{{tags}}} still in flight; end with "
                f"wait_tags([...]) so the timed region covers the data",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# SL201: zero-time livelock loops
# ---------------------------------------------------------------------------

#: Iterator factories that never terminate on their own.
_INFINITE_ITERATORS = frozenset({"count", "cycle", "repeat"})


def _loop_escapes(node: ast.While | ast.For) -> bool:
    """True when the loop body can leave the loop (break/return/raise)."""
    return any(
        isinstance(child, (ast.Break, ast.Return, ast.Raise))
        for child in body_without_nested_functions(node)
    )


def _names_read(expr: ast.expr) -> set[str]:
    """Names (and attribute roots) an expression reads."""
    names: set[str] = set()
    for child in ast.walk(expr):
        if isinstance(child, ast.Name):
            names.add(child.id)
    return names


def _names_mutated(node: ast.While | ast.For) -> set[str]:
    """Names the loop body could change: assignment targets, augmented
    assigns, deletes, and receivers of method calls (conservatively
    counted as mutation)."""
    mutated: set[str] = set()
    for child in body_without_nested_functions(node):
        if isinstance(child, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                child.targets if isinstance(child, ast.Assign) else [child.target]
            )
            for target in targets:
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        mutated.add(name.id)
        elif isinstance(child, ast.Delete):
            for target in child.targets:
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        mutated.add(name.id)
        elif isinstance(child, ast.Call):
            func = child.func
            if isinstance(func, ast.Attribute):
                root = func.value
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name):
                    mutated.add(root.id)
            # A call taking a name as an argument may mutate it too.
            for arg in list(child.args) + [k.value for k in child.keywords]:
                if isinstance(arg, ast.Name):
                    mutated.add(arg.id)
    return mutated


def _is_const_true(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Constant) and bool(expr.value)


def check_yieldless_loop(context: RuleContext) -> list[Finding]:
    """SL201: a loop in a sim process that cannot yield cannot let
    simulated time advance — if it spins, it spins at one instant
    forever, which only the runtime watchdog (PR 2) would catch."""
    findings: list[Finding] = []
    for info in context.functions:
        if not info.is_generator:
            continue
        for node in body_without_nested_functions(info.node):
            if isinstance(node, ast.While):
                if contains_yield(node) or _loop_escapes(node):
                    continue
                if _is_const_true(node.test):
                    reason = "its test is constantly true"
                elif not (_names_read(node.test) & _names_mutated(node)):
                    reason = "nothing in its body changes its test"
                else:
                    continue
                findings.append(
                    _finding(
                        RULES["SL201"],
                        context.path,
                        node,
                        f"while-loop in sim process {info.node.name!r} has no "
                        f"yield on any path and {reason}: it livelocks the "
                        f"simulation at one instant (yield a timeout/event, "
                        f"or break)",
                    )
                )
            elif isinstance(node, ast.For):
                if contains_yield(node) or _loop_escapes(node):
                    continue
                iterator = node.iter
                if (
                    isinstance(iterator, ast.Call)
                    and call_name(iterator) in _INFINITE_ITERATORS
                ):
                    findings.append(
                        _finding(
                            RULES["SL201"],
                            context.path,
                            node,
                            f"for-loop in sim process {info.node.name!r} "
                            f"iterates {call_name(iterator)}() without a "
                            f"yield or break: zero-time livelock",
                        )
                    )
    return findings


# ---------------------------------------------------------------------------
# SL301 / SL302: DMA size and alignment legality
# ---------------------------------------------------------------------------

def check_illegal_dma(context: RuleContext) -> list[Finding]:
    """SL301: statically-known size/alignment constants that the MFC
    would reject at runtime (``validate_transfer``) — caught at lint time
    with the exact same legality rules, so the two can never drift."""
    findings: list[Finding] = []
    for call in iter_calls(context.tree):
        name = call_name(call)
        if name in ELEM_CALLS or name == "DmaCommand":
            size = const_int(get_arg(call, 0, "size"))
            if size is None:
                continue
            local = const_int(keyword_arg(call, "local_offset")) or 0
            remote = const_int(keyword_arg(call, "remote_offset")) or 0
            try:
                validate_transfer(size, local, remote)
            except (DmaSizeError, DmaAlignmentError) as error:
                findings.append(
                    _finding(RULES["SL301"], context.path, call, str(error))
                )
        elif name in LIST_CALLS:
            element_size = const_int(get_arg(call, 0, "element_size"))
            if element_size is not None:
                try:
                    validate_transfer(element_size, 0, 0)
                except (DmaSizeError, DmaAlignmentError) as error:
                    findings.append(
                        _finding(
                            RULES["SL301"], context.path, call,
                            f"list element: {error}",
                        )
                    )
            n_elements = const_int(get_arg(call, 1, "n_elements"))
            if n_elements is not None and n_elements > LIST_MAX_ELEMENTS:
                findings.append(
                    _finding(
                        RULES["SL301"], context.path, call,
                        f"a DMA list holds at most {LIST_MAX_ELEMENTS} "
                        f"elements, got {n_elements}",
                    )
                )
    return findings


def check_inefficient_dma(context: RuleContext) -> list[Finding]:
    """SL302: legal but sub-128 B single transfers — the paper measures
    "a very high performance degradation" below one bus packet; a DMA
    list keeps bandwidth flat instead."""
    findings: list[Finding] = []
    for call in iter_calls(context.tree):
        if call_name(call) not in ELEM_CALLS:
            continue
        size = const_int(get_arg(call, 0, "size"))
        if size is None or size >= EFFICIENT_MIN_BYTES or size <= 0:
            continue
        try:
            validate_transfer(size, 0, 0)
        except (DmaSizeError, DmaAlignmentError):
            continue  # SL301 already reports it
        findings.append(
            _finding(
                RULES["SL302"], context.path, call,
                f"{size} B transfer is below the {EFFICIENT_MIN_BYTES} B "
                f"bus-packet size (paper: high degradation); batch into a "
                f"DMA list or use >= {EFFICIENT_MIN_BYTES} B elements",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# SL401: kernel time is an integer
# ---------------------------------------------------------------------------

#: Calls whose first argument is a cycle count.
_DELAY_CALLS = {"timeout": 0, "compute": 0}


def _float_reason(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Constant) and type(expr.value) is float:
        return f"literal {expr.value!r} is a float"
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Div):
        return "true division (/) produces a float — use // for cycles"
    for child in ast.walk(expr):
        if isinstance(child, ast.BinOp) and isinstance(child.op, ast.Div):
            return "expression uses true division (/) — use // for cycles"
        if isinstance(child, ast.Constant) and type(child.value) is float:
            return f"expression mixes in float literal {child.value!r}"
    return None


def check_float_delay(context: RuleContext) -> list[Finding]:
    """SL401: fractional/float cycle delays.  The kernel rejects
    non-integral delays at runtime; float-typed expressions that happen
    to be integral survive — until a parameter change makes run-to-run
    determinism depend on float rounding."""
    findings: list[Finding] = []
    for call in iter_calls(context.tree):
        name = call_name(call)
        if name not in _DELAY_CALLS:
            continue
        keyword = "delay" if name == "timeout" else "cycles"
        expr = get_arg(call, _DELAY_CALLS[name], keyword)
        if expr is None:
            continue
        reason = _float_reason(expr)
        if reason is None:
            continue
        findings.append(
            _finding(
                RULES["SL401"], context.path, call,
                f"{name}() delay: {reason}; kernel time is an integer "
                f"cycle count",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# SL501: nondeterminism in sim code
# ---------------------------------------------------------------------------

#: module -> attributes that are banned inside sim code (``*`` = all).
_BANNED_MODULES: dict[str, frozenset[str]] = {
    "random": frozenset("*"),
    "secrets": frozenset("*"),
    "time": frozenset("*"),
    "datetime": frozenset({"now", "utcnow", "today"}),
    "uuid": frozenset({"uuid1", "uuid4"}),
    "os": frozenset({"urandom", "getrandom"}),
}

#: random-module attributes that are fine: constructing a *seeded* stream.
_SEEDED_FACTORIES = frozenset({"Random", "SystemRandom"})


def _module_aliases(tree: ast.Module) -> tuple[dict[str, str], dict[str, tuple[str, str]]]:
    """(alias -> module) for ``import m`` and
    (name -> (module, attr)) for ``from m import attr``."""
    modules: dict[str, str] = {}
    names: dict[str, tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _BANNED_MODULES:
                    modules[alias.asname or root] = root
        elif isinstance(node, ast.ImportFrom) and node.module:
            root = node.module.split(".")[0]
            if root in _BANNED_MODULES:
                for alias in node.names:
                    names[alias.asname or alias.name] = (root, alias.name)
    return modules, names


def _banned(module: str, attr: str) -> bool:
    banned = _BANNED_MODULES[module]
    return "*" in banned or attr in banned


def check_nondeterminism(context: RuleContext) -> list[Finding]:
    """SL501: wall clocks and unseeded RNGs inside sim code.

    Every simulation here must be byte-identical run to run: the result
    cache keys on (config, workload, seed), and the parallel executor
    merges worker outputs assuming replays agree.  ``random.Random(seed)``
    is the sanctioned source; anything reading the wall clock or global
    RNG state silently breaks both.
    """
    modules, from_names = _module_aliases(context.tree)
    if not modules and not from_names:
        return []
    findings: list[Finding] = []
    for info in context.functions:
        if not info.is_sim:
            continue
        for call in (
            c for c in body_without_nested_functions(info.node)
            if isinstance(c, ast.Call)
        ):
            func = call.func
            culprit: str | None = None
            if isinstance(func, ast.Name) and func.id in from_names:
                module, attr = from_names[func.id]
                if _banned(module, attr) and not (
                    module == "random"
                    and attr in _SEEDED_FACTORIES
                    and call.args
                ):
                    culprit = f"{module}.{attr}"
            elif isinstance(func, ast.Attribute):
                root = func.value
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name) and root.id in modules:
                    module = modules[root.id]
                    if _banned(module, func.attr):
                        seeded = (
                            module == "random"
                            and func.attr in _SEEDED_FACTORIES
                            and bool(call.args)
                        )
                        if not seeded:
                            culprit = f"{module}.{func.attr}"
            if culprit is None:
                continue
            findings.append(
                _finding(
                    RULES["SL501"], context.path, call,
                    f"{culprit}() inside sim code breaks byte-identical "
                    f"determinism (result cache, parallel executor); pass a "
                    f"seeded random.Random or take values from the workload "
                    f"spec instead",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# SL601 / SL602 / SL603: dataflow hazard proofs
# ---------------------------------------------------------------------------

def _dataflow_findings(context: RuleContext) -> list[Finding]:
    """Run the CFG + interval hazard analysis once per module and share
    the results across the three SL6xx rule entries.

    Helpers (leading underscore) are folded into their callers via
    module summaries rather than analysed standalone — a helper's
    caller owns the synchronisation context, so judging its body in
    isolation would only manufacture noise.
    """
    if context._dataflow is None:
        # Imported here so the catalog stays importable even while the
        # dataflow engine itself is being linted/reloaded.
        from repro.analysis.lint.hazards import check_function
        from repro.analysis.lint.summaries import ModuleModel

        model = ModuleModel(context.tree, context.path)
        findings: list[Finding] = []
        for info in context.functions:
            if not info.is_sim or info.is_helper:
                continue
            spu_param = (
                info.first_param
                if info.first_param in ("spu", "env")
                else None
            )
            for raw in check_function(info.node, model, spu_param):
                rule = RULES[raw.rule]
                findings.append(
                    Finding(
                        rule=rule.id,
                        name=rule.name,
                        severity=rule.severity,
                        path=context.path,
                        line=raw.line,
                        col=raw.col,
                        message=raw.message,
                        steps=tuple(
                            (step.line, step.note) for step in raw.steps
                        ),
                    )
                )
        context._dataflow = findings
    return context._dataflow


def check_ls_buffer_overlap(context: RuleContext) -> list[Finding]:
    """SL601: two transfers with provably intersecting
    ``[local_offset, local_offset + size)`` ranges concurrently in
    flight on one MFC, at least one a GET, with no fence/barrier/
    ``wait_tags`` ordering them — the static counterpart of the runtime
    ``DmaSanitizer`` race check."""
    return [f for f in _dataflow_findings(context) if f.rule == "SL601"]


def check_tag_lifecycle(context: RuleContext) -> list[Finding]:
    """SL602: tag-group lifecycle errors — a wait on a tag group no path
    ever issues on (dead wait), or GETs and PUTs concurrently in flight
    on one tag group (the paper gives writes their own group so "quiet"
    has one meaning)."""
    return [f for f in _dataflow_findings(context) if f.rule == "SL602"]


def check_double_buffer_phase(context: RuleContext) -> list[Finding]:
    """SL603: rotation arithmetic (``base + (i % K) * stride``) in a
    loop that provably runs more than K iterations with no wait in the
    body — some iteration reuses the in-flight window."""
    return [f for f in _dataflow_findings(context) if f.rule == "SL603"]


# ---------------------------------------------------------------------------
# SL801 / SL802: suppression hygiene (emitted by the engine)
# ---------------------------------------------------------------------------

def _engine_emitted(context: RuleContext) -> list[Finding]:
    """SL801/SL802 findings are produced by the engine's suppression
    pass, which sees the raw source text; the registry entries exist so
    the ids are selectable, documented, and carry severities."""
    del context
    return []


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def _finding(rule: Rule, path: str, node: ast.AST, message: str) -> Finding:
    return Finding(
        rule=rule.id,
        name=rule.name,
        severity=rule.severity,
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


RULES: dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            "SL101", "ls-read-before-sync", Severity.ERROR,
            "local-store data consumed while its GET tag group is in flight",
            check_ls_read_before_sync,
        ),
        Rule(
            "SL102", "unwaited-dma", Severity.ERROR,
            "SPU program can return with DMA still in flight",
            check_unwaited_dma,
        ),
        Rule(
            "SL201", "yieldless-loop", Severity.ERROR,
            "loop in a sim process cannot yield: zero-time livelock",
            check_yieldless_loop,
        ),
        Rule(
            "SL301", "illegal-dma-size", Severity.ERROR,
            "DMA size/alignment constant the MFC would reject",
            check_illegal_dma,
        ),
        Rule(
            "SL302", "inefficient-dma-size", Severity.WARNING,
            "legal but sub-128 B transfer (paper's efficiency cliff)",
            check_inefficient_dma,
        ),
        Rule(
            "SL401", "float-delay", Severity.ERROR,
            "fractional/float cycle delay",
            check_float_delay,
        ),
        Rule(
            "SL501", "nondeterminism", Severity.ERROR,
            "wall clock or unseeded RNG inside sim code",
            check_nondeterminism,
        ),
        Rule(
            "SL601", "ls-buffer-overlap", Severity.ERROR,
            "overlapping local-store ranges concurrently in flight",
            check_ls_buffer_overlap,
        ),
        Rule(
            "SL602", "tag-lifecycle", Severity.ERROR,
            "tag-group lifecycle error (dead wait / mixed directions)",
            check_tag_lifecycle,
        ),
        Rule(
            "SL603", "double-buffer-phase", Severity.ERROR,
            "buffer rotation can alias the in-flight window",
            check_double_buffer_phase,
        ),
        Rule(
            "SL801", "invalid-suppression", Severity.ERROR,
            "suppression comment without rules or reason",
            _engine_emitted,
        ),
        Rule(
            "SL802", "unused-suppression", Severity.WARNING,
            "suppression that matches no finding",
            _engine_emitted,
        ),
    )
}
