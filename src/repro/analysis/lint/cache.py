"""Content-hash result cache for the lint engine.

Linting is a pure function of ``(file content, rule catalog, rule
selection)`` — suppressions and dataflow findings all derive from the
source text alone — so results are cached under
``.repro-cache/lint/<catalog-version>/`` keyed on the SHA-256 of the
file content plus the selected rule ids.  The catalog version is itself
a SHA-256 over the lint package's own sources: editing any rule, the
dataflow engine, or this file moves every key, so stale results cannot
survive an engine change.  Entries from older catalog versions are
swept opportunistically (the same self-healing idiom as the sweep
result cache).

The pre-commit hook's cost is then O(changed files): unchanged files
hit the cache and cost one hash + one small JSON read.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from collections.abc import Iterable

from repro.analysis.lint.findings import Finding

__all__ = ["LintCache", "catalog_version", "DEFAULT_LINT_CACHE_DIR"]

DEFAULT_LINT_CACHE_DIR = os.path.join(".repro-cache", "lint")

_catalog_version: str | None = None


def catalog_version() -> str:
    """SHA-256 over the lint package's source files (memoised)."""
    global _catalog_version
    if _catalog_version is None:
        package_dir = os.path.dirname(os.path.abspath(__file__))
        digest = hashlib.sha256()
        for name in sorted(os.listdir(package_dir)):
            if not name.endswith(".py"):
                continue
            digest.update(name.encode())
            with open(os.path.join(package_dir, name), "rb") as handle:
                digest.update(handle.read())
        _catalog_version = digest.hexdigest()[:16]
    return _catalog_version


class LintCache:
    """File-level finding cache; every operation is best-effort — a
    broken or unwritable cache degrades to a cold lint, never an error."""

    def __init__(self, root: str = DEFAULT_LINT_CACHE_DIR) -> None:
        self.root = root
        self.version = catalog_version()
        self.dir = os.path.join(root, self.version)
        self.hits = 0
        self.misses = 0
        self._sweep_stale()

    def _sweep_stale(self) -> None:
        try:
            for name in os.listdir(self.root):
                if name == self.version:
                    continue
                stale = os.path.join(self.root, name)
                if os.path.isdir(stale):
                    shutil.rmtree(stale, ignore_errors=True)
        except OSError:
            pass

    def _key(self, source: str, rules: Iterable) -> str:
        digest = hashlib.sha256(source.encode("utf-8", "surrogatepass"))
        for rule_id in sorted(rule.id for rule in rules):
            digest.update(rule_id.encode())
        return digest.hexdigest()

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.dir, f"{key}.json")

    def get(
        self, path: str, source: str, rules: Iterable
    ) -> list[Finding] | None:
        """Cached findings for this content + rule set, or None.

        ``path`` re-anchors the findings: the same content linted under
        two names yields the same findings at the current name.
        """
        try:
            with open(
                self._entry_path(self._key(source, rules)), encoding="utf-8"
            ) as handle:
                data = json.load(handle)
            findings = [
                Finding.from_json({**entry, "path": path})
                for entry in data["findings"]
            ]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def put(
        self,
        path: str,
        source: str,
        rules: Iterable,
        findings: list[Finding],
    ) -> None:
        del path  # findings are stored path-less and re-anchored on get
        entry = {
            "findings": [
                {k: v for k, v in f.to_json().items() if k != "path"}
                for f in findings
            ],
        }
        try:
            os.makedirs(self.dir, exist_ok=True)
            target = self._entry_path(self._key(source, rules))
            temporary = f"{target}.tmp.{os.getpid()}"
            with open(temporary, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(temporary, target)
        except OSError:
            pass
