"""The simlint engine: walk sources, classify functions, run rules.

Three entry points:

* :func:`lint_paths` — files and/or directories (the CLI's path);
* :func:`lint_source` — one source string (fixtures and tests);
* :func:`lint_callable` — a live function object (``inspect``-based, so a
  test can assert a kernel it just defined is clean).
"""

from __future__ import annotations

import ast
import inspect
import os
import textwrap
from collections.abc import Callable, Iterable

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.rules import RULES, FunctionInfo, Rule, RuleContext

#: Directories never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".repro-cache"})


class LintError(ValueError):
    """A path that cannot be linted (missing file, syntax error)."""


def _classify_functions(tree: ast.Module) -> list[FunctionInfo]:
    functions: list[FunctionInfo] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                body = ast.Module(body=child.body, type_ignores=[])
                is_generator = any(
                    isinstance(grand, (ast.Yield, ast.YieldFrom))
                    for grand in _walk_without_functions(body)
                )
                params = child.args.posonlyargs + child.args.args
                first = params[0].arg if params else None
                if first in ("self", "cls") and len(params) > 1:
                    first = params[1].arg
                functions.append(
                    FunctionInfo(
                        node=child,
                        qualname=qualname,
                        is_generator=is_generator,
                        first_param=first,
                    )
                )
                visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
    visit(tree, "")
    return functions


def _walk_without_functions(node: ast.AST) -> Iterable[ast.AST]:
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def select_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """Resolve ``--select``/``--ignore`` prefixes against the registry.

    Prefix matching mirrors ruff: ``SL3`` selects SL301 and SL302.
    Unknown prefixes raise :class:`LintError` rather than silently
    matching nothing.
    """
    def matches(rule: Rule, prefixes: Iterable[str]) -> bool:
        return any(
            rule.id.startswith(prefix) or rule.name == prefix
            for prefix in prefixes
        )

    chosen = list(RULES.values())
    if select is not None:
        prefixes = list(select)
        for prefix in prefixes:
            if not any(matches(rule, [prefix]) for rule in chosen):
                raise LintError(f"--select {prefix!r} matches no rule")
        chosen = [rule for rule in chosen if matches(rule, prefixes)]
    if ignore:
        chosen = [rule for rule in chosen if not matches(rule, ignore)]
    return chosen


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Lint one source string; findings carry ``path`` as their file."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        raise LintError(f"{path}: {error}") from error
    context = RuleContext(
        tree=tree, path=path, functions=_classify_functions(tree)
    )
    findings: list[Finding] = []
    for rule in rules if rules is not None else RULES.values():
        findings.extend(rule.check(context))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: str, rules: Iterable[Rule] | None = None) -> list[Finding]:
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        raise LintError(f"cannot read {path}: {error}") from error
    return lint_source(source, path=path, rules=rules)


def iter_python_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS
                )
                files.extend(
                    os.path.join(root, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        else:
            raise LintError(f"no such file or directory: {path}")
    return files


def lint_paths(
    paths: Iterable[str], rules: Iterable[Rule] | None = None
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    rules = list(rules) if rules is not None else list(RULES.values())
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules=rules))
    return findings


def lint_callable(
    target: Callable, rules: Iterable[Rule] | None = None
) -> list[Finding]:
    """Lint a live function: its source is parsed in isolation, with
    findings anchored to the defining file and real line numbers."""
    try:
        source = textwrap.dedent(inspect.getsource(target))
        path = inspect.getsourcefile(target) or "<callable>"
        _source_lines, start = inspect.getsourcelines(target)
    except (OSError, TypeError) as error:
        raise LintError(f"cannot get source of {target!r}: {error}") from error
    findings = lint_source(source, path=path, rules=rules)
    offset = start - 1
    return [
        Finding(
            rule=f.rule,
            name=f.name,
            severity=f.severity,
            path=f.path,
            line=f.line + offset,
            col=f.col,
            message=f.message,
        )
        for f in findings
    ]
