"""The simlint engine: walk sources, classify functions, run rules.

Three entry points:

* :func:`lint_paths` — files and/or directories (the CLI's path);
* :func:`lint_source` — one source string (fixtures and tests);
* :func:`lint_callable` — a live function object (``inspect``-based, so a
  test can assert a kernel it just defined is clean).

The engine owns the cross-cutting mechanics the rules never see:

* the finding stream is **deduplicated and stably ordered** — two rules
  (or one rule visiting a call twice) reporting the same
  ``(rule, path, line, col)`` collapse to one finding, and the output
  order is a pure function of the findings, never of dict iteration;
* **inline suppressions** — ``# simlint: ignore[SL302] -- reason`` on
  the offending line drops matching findings; a suppression without a
  reason is itself a finding (SL801), and one that suppresses nothing
  is too (SL802), so stale suppressions cannot accumulate;
* **baselines** — a frozen snapshot of known findings; only findings
  not in the baseline survive, so legacy debt and new regressions are
  distinguishable.
"""

from __future__ import annotations

import ast
import inspect
import io
import json
import os
import re
import textwrap
import tokenize
from collections.abc import Callable, Iterable
from dataclasses import dataclass, replace

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.rules import RULES, FunctionInfo, Rule, RuleContext

#: Directories never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".repro-cache"})

#: Matches the suppression directive inside a comment token: the word
#: ``simlint:`` then ``ignore`` with bracketed rules, optionally a
#: ``--``-separated reason.
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*ignore\[([^\]]*)\]\s*(?:--\s*(?P<reason>.*\S))?"
)


class LintError(ValueError):
    """A path that cannot be linted (missing file, syntax error)."""


def _classify_functions(tree: ast.Module) -> list[FunctionInfo]:
    functions: list[FunctionInfo] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                body = ast.Module(body=child.body, type_ignores=[])
                is_generator = any(
                    isinstance(grand, (ast.Yield, ast.YieldFrom))
                    for grand in _walk_without_functions(body)
                )
                params = child.args.posonlyargs + child.args.args
                first = params[0].arg if params else None
                if first in ("self", "cls") and len(params) > 1:
                    first = params[1].arg
                functions.append(
                    FunctionInfo(
                        node=child,
                        qualname=qualname,
                        is_generator=is_generator,
                        first_param=first,
                    )
                )
                visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
    visit(tree, "")
    return functions


def _walk_without_functions(node: ast.AST) -> Iterable[ast.AST]:
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def select_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """Resolve ``--select``/``--ignore`` prefixes against the registry.

    Prefix matching mirrors ruff: ``SL3`` selects SL301 and SL302.
    Unknown prefixes raise :class:`LintError` rather than silently
    matching nothing.
    """
    def matches(rule: Rule, prefixes: Iterable[str]) -> bool:
        return any(
            rule.id.startswith(prefix) or rule.name == prefix
            for prefix in prefixes
        )

    chosen = list(RULES.values())
    if select is not None:
        prefixes = list(select)
        for prefix in prefixes:
            if not any(matches(rule, [prefix]) for rule in chosen):
                raise LintError(f"--select {prefix!r} matches no rule")
        chosen = [rule for rule in chosen if matches(rule, prefixes)]
    if ignore:
        chosen = [rule for rule in chosen if not matches(rule, ignore)]
    return chosen


# ---------------------------------------------------------------------------
# Inline suppressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Suppression:
    """One ``# simlint: ignore[...]`` comment."""

    line: int
    col: int
    prefixes: tuple[str, ...]
    reason: str | None

    def covers(self, finding: Finding) -> bool:
        return finding.line == self.line and any(
            finding.rule.startswith(prefix) or finding.name == prefix
            for prefix in self.prefixes
        )


def _scan_suppressions(source: str) -> list[Suppression]:
    """Find ``# simlint: ignore[...]`` comments via the tokenizer, so
    the directive syntax quoted inside strings and docstrings (this
    project documents it in a few) never counts as a suppression."""
    suppressions: list[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            token for token in tokens if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenizeError, SyntaxError, ValueError):
        return []
    for token in comments:
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        prefixes = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        suppressions.append(
            Suppression(
                line=token.start[0],
                col=token.start[1] + match.start(),
                prefixes=prefixes,
                reason=match.group("reason"),
            )
        )
    return suppressions


def _apply_suppressions(
    findings: list[Finding],
    suppressions: list[Suppression],
    path: str,
    active: Iterable[Rule],
) -> list[Finding]:
    active_ids = {rule.id for rule in active}
    active_names = {rule.name for rule in active}
    kept: list[Finding] = []
    used: set[int] = set()
    valid: list[tuple[int, Suppression]] = []
    for index, suppression in enumerate(suppressions):
        if not suppression.prefixes or not suppression.reason:
            if "SL801" in active_ids:
                findings = findings + [_meta_finding(
                    "SL801", path, suppression,
                    "suppression must name rules and give a reason: "
                    "`# simlint: ignore[SL302] -- why it is safe here`",
                )]
            continue
        valid.append((index, suppression))
    for finding in findings:
        suppressed = False
        for index, suppression in valid:
            if finding.rule in ("SL801", "SL802"):
                continue  # meta findings cannot be inline-suppressed
            if suppression.covers(finding):
                used.add(index)
                suppressed = True
        if not suppressed:
            kept.append(finding)
    for index, suppression in valid:
        if index in used:
            continue
        # Only call a suppression unused when the active rule set could
        # actually have produced the findings it names — under --select,
        # silence about unselected rules is not staleness.
        checkable = all(
            any(rule_id.startswith(prefix) for rule_id in active_ids)
            or prefix in active_names
            for prefix in suppression.prefixes
        )
        if checkable and "SL802" in active_ids:
            kept.append(_meta_finding(
                "SL802", path, suppression,
                f"suppression of [{', '.join(suppression.prefixes)}] "
                f"matches no finding on this line: remove it",
            ))
    return kept


def _meta_finding(
    rule_id: str, path: str, suppression: Suppression, message: str
) -> Finding:
    rule = RULES[rule_id]
    return Finding(
        rule=rule.id,
        name=rule.name,
        severity=rule.severity,
        path=path,
        line=suppression.line,
        col=suppression.col,
        message=message,
    )


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------

def load_baseline(path: str) -> set[tuple[str, str, int, int]]:
    """Load a baseline file: the fingerprints of frozen findings."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        raise LintError(f"cannot read baseline {path}: {error}") from error
    entries = data.get("findings") if isinstance(data, dict) else data
    if not isinstance(entries, list):
        raise LintError(f"baseline {path}: expected a list of findings")
    fingerprints: set[tuple[str, str, int, int]] = set()
    for entry in entries:
        try:
            fingerprints.add(
                (entry["path"], entry["rule"], entry["line"], entry["col"])
            )
        except (TypeError, KeyError) as error:
            raise LintError(
                f"baseline {path}: malformed entry {entry!r}"
            ) from error
    return fingerprints


def write_baseline(path: str, findings: Iterable[Finding]) -> None:
    """Freeze ``findings`` into a baseline file."""
    payload = {
        "format": "simlint-baseline-v1",
        "findings": [
            {
                "path": f.path, "rule": f.rule, "line": f.line, "col": f.col,
                "message": f.message,
            }
            for f in findings
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def apply_baseline(
    findings: Iterable[Finding], baseline: set[tuple[str, str, int, int]]
) -> list[Finding]:
    """Keep only findings not frozen in the baseline."""
    return [f for f in findings if f.fingerprint not in baseline]


# ---------------------------------------------------------------------------
# Core entry points
# ---------------------------------------------------------------------------

def _dedup_sorted(findings: list[Finding]) -> list[Finding]:
    """Stable sorted order, one finding per (path, line, col, rule).

    The sort key is a pure function of each finding — never dict or
    visitor iteration order — and ties between distinct messages at one
    location break on the message text, so the survivor of a dedup is
    deterministic too.
    """
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    deduped: list[Finding] = []
    for finding in findings:
        if deduped and deduped[-1].fingerprint == finding.fingerprint:
            continue
        deduped.append(finding)
    return deduped


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Lint one source string; findings carry ``path`` as their file."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        raise LintError(f"{path}: {error}") from error
    context = RuleContext(
        tree=tree, path=path, functions=_classify_functions(tree)
    )
    active = list(rules) if rules is not None else list(RULES.values())
    findings: list[Finding] = []
    for rule in active:
        findings.extend(rule.check(context))
    suppressions = _scan_suppressions(source)
    if suppressions:
        findings = _apply_suppressions(findings, suppressions, path, active)
    return _dedup_sorted(findings)


def lint_file(
    path: str,
    rules: Iterable[Rule] | None = None,
    cache=None,
) -> list[Finding]:
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        raise LintError(f"cannot read {path}: {error}") from error
    if cache is None:
        return lint_source(source, path=path, rules=rules)
    active = list(rules) if rules is not None else list(RULES.values())
    cached = cache.get(path, source, active)
    if cached is not None:
        return cached
    findings = lint_source(source, path=path, rules=active)
    cache.put(path, source, active, findings)
    return findings


def iter_python_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS
                )
                files.extend(
                    os.path.join(root, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        else:
            raise LintError(f"no such file or directory: {path}")
    return files


def lint_paths(
    paths: Iterable[str],
    rules: Iterable[Rule] | None = None,
    cache=None,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    rules = list(rules) if rules is not None else list(RULES.values())
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules=rules, cache=cache))
    return findings


def lint_callable(
    target: Callable, rules: Iterable[Rule] | None = None
) -> list[Finding]:
    """Lint a live function: its source is parsed in isolation, with
    findings anchored to the defining file and real line numbers."""
    try:
        source = textwrap.dedent(inspect.getsource(target))
        path = inspect.getsourcefile(target) or "<callable>"
        _source_lines, start = inspect.getsourcelines(target)
    except (OSError, TypeError) as error:
        raise LintError(f"cannot get source of {target!r}: {error}") from error
    findings = lint_source(source, path=path, rules=rules)
    offset = start - 1
    return [
        replace(
            f,
            path=path,
            line=f.line + offset,
            steps=tuple((line + offset, note) for line, note in f.steps),
        )
        for f in findings
    ]
