"""Per-function control-flow graphs for the simlint dataflow engine.

One :class:`CFG` per function body: basic blocks of *simple* statements
connected by edges for branches, loops, exception handlers and early
exits.  The graph is deliberately coarse where Python is dynamic —
exceptions may leave a ``try`` body from any statement, so every body
block gets an edge to every handler — and exact where the SL6xx rules
need it: loop back edges are real (the fixpoint sees state flowing from
the bottom of a loop into its head), and ``break``/``continue``/
``return``/``raise`` terminate their blocks.

Loop-head blocks carry the originating ``ast.While``/``ast.For`` node so
the dataflow can bind induction variables (``for i in range(...)``) and
the SL603 checker can find loop trip counts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["Block", "CFG", "build_cfg"]


@dataclass
class Block:
    """One basic block: simple statements executed in order."""

    id: int
    stmts: list[ast.stmt] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)
    #: The ``While``/``For`` node when this block is a loop head (its
    #: test / iterator is evaluated here, once per entry and iteration).
    loop: ast.While | ast.For | None = None
    #: True for a loop head's back-edge target (same block as ``loop``).
    is_loop_head: bool = False

    def first_line(self) -> int | None:
        if self.loop is not None:
            return self.loop.lineno
        for stmt in self.stmts:
            return stmt.lineno
        return None


@dataclass
class CFG:
    """A function body's control-flow graph."""

    blocks: dict[int, Block]
    entry: int
    exit: int

    def block(self, block_id: int) -> Block:
        return self.blocks[block_id]

    def rpo(self) -> list[int]:
        """Reverse post-order from the entry (loop heads before bodies),
        the iteration order the fixpoint driver wants."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(block_id: int) -> None:
            # Iterative DFS: deep CFGs must not hit the recursion limit.
            stack: list[tuple[int, int]] = [(block_id, 0)]
            seen.add(block_id)
            while stack:
                current, index = stack.pop()
                succs = self.blocks[current].succs
                if index < len(succs):
                    stack.append((current, index + 1))
                    nxt = succs[index]
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, 0))
                else:
                    order.append(current)

        visit(self.entry)
        order.reverse()
        return order


class _Builder:
    def __init__(self) -> None:
        self.blocks: dict[int, Block] = {}
        self._next_id = 0
        # (break_targets, continue_targets) stack for enclosing loops.
        self._loops: list[tuple[int, int]] = []
        # Handler-head block ids of the innermost active try statements:
        # any block created inside the try body gets edges to them.
        self._handlers: list[list[int]] = []

    def new_block(self, **kwargs) -> Block:
        block = Block(id=self._next_id, **kwargs)
        self._next_id += 1
        self.blocks[block.id] = block
        return block

    def edge(self, src: int | None, dst: int) -> None:
        if src is None:
            return
        src_block = self.blocks[src]
        if dst not in src_block.succs:
            src_block.succs.append(dst)
            self.blocks[dst].preds.append(src)

    # -- statement walk -------------------------------------------------------

    def walk(self, stmts: list[ast.stmt], current: int | None) -> int | None:
        """Thread ``stmts`` onto block ``current``; returns the open block
        at the end, or None when every path left (return/break/...)."""
        for stmt in stmts:
            if current is None:
                # Unreachable code after a terminator: park it in a
                # fresh predecessor-less block so its statements still
                # exist in the graph (rules prefer silence there).
                current = self.new_block().id
            if isinstance(stmt, ast.If):
                current = self._walk_if(stmt, current)
            elif isinstance(stmt, (ast.While,)):
                current = self._walk_while(stmt, current)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                current = self._walk_for(stmt, current)
            elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
                current = self._walk_try(stmt, current)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                current = self._walk_with(stmt, current)
            elif isinstance(stmt, ast.Match):
                current = self._walk_match(stmt, current)
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                self._append(current, stmt)
                self.edge(current, self._exit)
                current = None
            elif isinstance(stmt, ast.Break):
                self._append(current, stmt)
                if self._loops:
                    self.edge(current, self._loops[-1][0])
                current = None
            elif isinstance(stmt, ast.Continue):
                self._append(current, stmt)
                if self._loops:
                    self.edge(current, self._loops[-1][1])
                current = None
            else:
                # Simple statement (incl. nested FunctionDef/ClassDef,
                # which the dataflow skips over).
                self._append(current, stmt)
        return current

    def _append(self, block_id: int, stmt: ast.stmt) -> None:
        self.blocks[block_id].stmts.append(stmt)
        # A statement inside a try body may raise into any handler.
        for handlers in self._handlers:
            for handler in handlers:
                self.edge(block_id, handler)

    def _walk_if(self, stmt: ast.If, current: int) -> int | None:
        # The test itself is evaluated in the current block.
        self._append(current, ast.Expr(value=stmt.test, lineno=stmt.lineno,
                                       col_offset=stmt.col_offset))
        then_head = self.new_block()
        self.edge(current, then_head.id)
        then_end = self.walk(stmt.body, then_head.id)
        if stmt.orelse:
            else_head = self.new_block()
            self.edge(current, else_head.id)
            else_end = self.walk(stmt.orelse, else_head.id)
        else:
            else_end = current
        if then_end is None and else_end is None:
            return None
        join = self.new_block()
        self.edge(then_end, join.id)
        self.edge(else_end, join.id)
        return join.id

    def _walk_loop_body(
        self, stmt: ast.While | ast.For, head: Block
    ) -> int:
        after = self.new_block()
        self.edge(head.id, after.id)  # zero-iteration / loop-exit edge
        body_head = self.new_block()
        self.edge(head.id, body_head.id)
        self._loops.append((after.id, head.id))
        body_end = self.walk(stmt.body, body_head.id)
        self._loops.pop()
        self.edge(body_end, head.id)  # back edge
        if stmt.orelse:
            else_end = self.walk(stmt.orelse, after.id)
            if else_end is not None and else_end != after.id:
                return else_end
        return after.id

    def _walk_while(self, stmt: ast.While, current: int) -> int:
        head = self.new_block(loop=stmt, is_loop_head=True)
        self.edge(current, head.id)
        return self._walk_loop_body(stmt, head)

    def _walk_for(self, stmt: ast.For | ast.AsyncFor, current: int) -> int:
        head = self.new_block(loop=stmt, is_loop_head=True)
        self.edge(current, head.id)
        return self._walk_loop_body(stmt, head)

    def _walk_try(self, stmt: ast.Try, current: int) -> int | None:
        handler_heads = [self.new_block() for _ in stmt.handlers]
        # The statement *before* the try can already be followed by a
        # handler (the first body statement may raise immediately).
        for handler in handler_heads:
            self.edge(current, handler.id)
        self._handlers.append([handler.id for handler in handler_heads])
        body_head = self.new_block()
        self.edge(current, body_head.id)
        body_end = self.walk(stmt.body, body_head.id)
        self._handlers.pop()
        if stmt.orelse:
            body_end = self.walk(stmt.orelse, body_end)
        ends = [body_end]
        for handler, head in zip(stmt.handlers, handler_heads):
            ends.append(self.walk(handler.body, head.id))
        live = [end for end in ends if end is not None]
        if stmt.finalbody:
            final_head = self.new_block()
            for end in live:
                self.edge(end, final_head.id)
            if not live:
                # finally still runs on the exceptional paths.
                self.edge(current, final_head.id)
            return self.walk(stmt.finalbody, final_head.id)
        if not live:
            return None
        join = self.new_block()
        for end in live:
            self.edge(end, join.id)
        return join.id

    def _walk_with(self, stmt: ast.With | ast.AsyncWith, current: int) -> int | None:
        for item in stmt.items:
            self._append(current, ast.Expr(
                value=item.context_expr,
                lineno=stmt.lineno, col_offset=stmt.col_offset,
            ))
        return self.walk(stmt.body, current)

    def _walk_match(self, stmt: ast.Match, current: int) -> int | None:
        self._append(current, ast.Expr(value=stmt.subject,
                                       lineno=stmt.lineno,
                                       col_offset=stmt.col_offset))
        ends: list[int | None] = [current]  # no case may match
        for case in stmt.cases:
            head = self.new_block()
            self.edge(current, head.id)
            ends.append(self.walk(case.body, head.id))
        live = [end for end in ends if end is not None]
        if not live:
            return None
        join = self.new_block()
        for end in live:
            self.edge(end, join.id)
        return join.id

    # -- entry point ----------------------------------------------------------

    def build(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
        entry = self.new_block()
        exit_block = self.new_block()
        self._exit = exit_block.id
        end = self.walk(node.body, entry.id)
        self.edge(end, exit_block.id)
        return CFG(blocks=self.blocks, entry=entry.id, exit=exit_block.id)


def build_cfg(node: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the CFG of one function definition's body."""
    return _Builder().build(node)
