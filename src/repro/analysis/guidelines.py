"""The paper's section-5 programming guidelines, derived from data.

The paper closes with a set of rules for programming the CBE.  This
module re-derives each rule from the reproduced measurements, so every
guideline carries the numbers that justify it.  Rules whose supporting
experiment was not run are simply omitted — the advisor never guesses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.experiment import ExperimentResult
from repro.core.spe_pairs import SYNC_AFTER_ALL


@dataclass(frozen=True)
class Guideline:
    """One programming rule plus its measured justification."""

    rule: str
    evidence: str
    advantage: float  # how much following the rule buys, as a ratio

    def __str__(self) -> str:
        return f"{self.rule}  [{self.advantage:.1f}x: {self.evidence}]"


class GuidelineAdvisor:
    """Collects experiment results and emits the rules they support."""

    def __init__(self):
        self._ppe: dict[str, ExperimentResult] = {}
        self._memory: ExperimentResult | None = None
        self._sync: ExperimentResult | None = None
        self._couples: ExperimentResult | None = None
        self._cycle: ExperimentResult | None = None

    # -- feeding results -----------------------------------------------------------

    def add_ppe(self, level: str, result: ExperimentResult) -> None:
        self._ppe[level] = result

    def add_memory(self, result: ExperimentResult) -> None:
        self._memory = result

    def add_pair_sync(self, result: ExperimentResult) -> None:
        self._sync = result

    def add_couples(self, result: ExperimentResult) -> None:
        self._couples = result

    def add_cycle(self, result: ExperimentResult) -> None:
        self._cycle = result

    # -- the rules -----------------------------------------------------------------

    def guidelines(self) -> list[Guideline]:
        rules: list[Guideline] = []
        for build in (
            self._rule_vectorize,
            self._rule_two_threads_beyond_l1,
            self._rule_two_spes_for_memory,
            self._rule_dont_use_all_eight_for_memory,
            self._rule_delay_synchronisation,
            self._rule_lists_for_small_elements,
            self._rule_avoid_eib_saturation,
        ):
            rule = build()
            if rule is not None:
                rules.append(rule)
        return rules

    def _rule_vectorize(self) -> Guideline | None:
        if "l1" not in self._ppe:
            return None
        table = self._ppe["l1"].table("bandwidth")
        wide = table.mean("load", 1, 16)
        narrow = table.mean("load", 1, 1)
        return Guideline(
            rule=(
                "Use the largest possible data elements; pack small data "
                "into 128-bit SIMD registers before moving it."
            ),
            evidence=(
                f"L1 loads: {wide:.1f} GB/s at 16 B vs {narrow:.1f} GB/s at 1 B"
            ),
            advantage=wide / narrow,
        )

    def _rule_two_threads_beyond_l1(self) -> Guideline | None:
        if "l2" not in self._ppe:
            return None
        table = self._ppe["l2"].table("bandwidth")
        one = table.mean("load", 1, 16)
        two = table.mean("load", 2, 16)
        if two <= one:
            return None
        return Guideline(
            rule=(
                "Run two PPE threads when the working set does not fit in "
                "the L1 cache (one thread suffices inside L1)."
            ),
            evidence=f"L2 loads: {two:.1f} GB/s with 2 threads vs {one:.1f} with 1",
            advantage=two / one,
        )

    def _rule_two_spes_for_memory(self) -> Guideline | None:
        if self._memory is None:
            return None
        table = self._memory.table("get")
        element = max(table.axis_values("element_bytes"))
        one = table.mean(1, element)
        two = table.mean(2, element)
        return Guideline(
            rule="Use at least two SPEs to stream from main memory.",
            evidence=(
                f"GET: one SPE sustains {one:.1f} GB/s, two SPEs {two:.1f} "
                "(both banks active)"
            ),
            advantage=two / one,
        )

    def _rule_dont_use_all_eight_for_memory(self) -> Guideline | None:
        if self._memory is None:
            return None
        table = self._memory.table("get")
        element = max(table.axis_values("element_bytes"))
        four = table.mean(4, element)
        eight = table.mean(8, element)
        if eight >= four:
            return None
        return Guideline(
            rule=(
                "Do not put all eight SPEs on one memory stream: two "
                "streams of four SPEs beat one stream of eight."
            ),
            evidence=f"GET: {four:.1f} GB/s with 4 SPEs vs {eight:.1f} with 8",
            advantage=four / eight,
        )

    def _rule_delay_synchronisation(self) -> Guideline | None:
        if self._sync is None:
            return None
        table = self._sync.table("sync")
        sizes = table.axis_values("element_bytes")
        element = 4096 if 4096 in sizes else sizes[-1]
        eager = table.mean(1, element)
        delayed = table.mean(SYNC_AFTER_ALL, element)
        return Guideline(
            rule=(
                "Postpone waiting for DMA completion as long as possible: "
                "keep the MFC queue saturated."
            ),
            evidence=(
                f"{element} B elements: {delayed:.1f} GB/s fully delayed vs "
                f"{eager:.1f} waiting after every command"
            ),
            advantage=delayed / eager,
        )

    def _rule_lists_for_small_elements(self) -> Guideline | None:
        if self._couples is None:
            return None
        elem = self._couples.table("elem")
        lists = self._couples.table("list")
        sizes = [s for s in elem.axis_values("element_bytes") if s < 1024]
        if not sizes:
            return None
        small = sizes[0]
        n_spes = elem.axis_values("n_spes")[0]
        elem_bw = elem.mean(n_spes, small)
        list_bw = lists.mean(n_spes, small)
        if list_bw <= elem_bw:
            return None
        return Guideline(
            rule="Use DMA lists for chunks smaller than 1024 bytes.",
            evidence=(
                f"{small} B elements, {n_spes} SPEs: {list_bw:.1f} GB/s "
                f"(list) vs {elem_bw:.1f} (elem)"
            ),
            advantage=list_bw / elem_bw,
        )

    def _rule_avoid_eib_saturation(self) -> Guideline | None:
        if self._couples is None or self._cycle is None:
            return None
        couples = self._couples.table("elem")
        cycle = self._cycle.table("elem")
        element = max(couples.axis_values("element_bytes"))
        if 8 not in couples.axis_values("n_spes"):
            return None
        halves = couples.mean(8, element)
        everyone = cycle.mean(8, element)
        if everyone >= halves:
            return None
        return Guideline(
            rule=(
                "Schedule SPE-to-SPE communication to avoid saturating the "
                "EIB: half the SPEs communicating at once move more data "
                "than everyone at once."
            ),
            evidence=(
                f"8 SPEs: couples sustain {halves:.1f} GB/s, the full "
                f"cycle only {everyone:.1f}"
            ),
            advantage=halves / everyone,
        )
