"""Saturation claims derived from a trace stream.

The paper explains every bandwidth number with a chip mechanism: ring
conflicts (Figures 12/13/15/16), MFC queue saturation (the sync-policy
experiments), bank turnarounds (the ~60%-of-peak single stream).  The
scalar counters say *how much*; the trace stream says *where and when*.
This module turns a :class:`repro.sim.TraceSummary` into explicit,
quantified claims about which mechanism was binding in a run — the
machine-checkable form of the paper's explanatory sentences.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.trace import TraceSummary

#: Conflict fraction above which a ring counts as contended.
RING_CONTENDED_FRACTION = 0.25

#: Busy fraction above which a resource counts as saturated.
SATURATED_BUSY_FRACTION = 0.85

#: Queue high-water at which an MFC counts as running queue-limited.
MFC_QUEUE_LIMIT_FRACTION = 0.9


@dataclass(frozen=True)
class SaturationClaim:
    """One quantified statement about a chip mechanism in a run."""

    subject: str       # e.g. "ring cw0", "bank XDR-local", "MFC SPE3"
    mechanism: str     # e.g. "ring-conflict", "bank-turnaround"
    value: float       # the quantifying number (fraction, cycles, ...)
    text: str          # the human-readable claim

    def __str__(self) -> str:
        return self.text


class SaturationReport:
    """All the claims a trace supports, most severe first."""

    def __init__(self, claims: list[SaturationClaim], duration: int):
        self.claims = claims
        self.duration = duration

    @classmethod
    def from_summary(
        cls,
        summary: TraceSummary,
        queue_depth: int = 16,
        duration: int | None = None,
    ) -> SaturationReport:
        span = duration if duration is not None else summary.duration
        claims: list[SaturationClaim] = []
        claims += _ring_claims(summary, span)
        claims += _bank_claims(summary, span)
        claims += _mfc_claims(summary, queue_depth)
        claims += _flow_claims(summary)
        claims.sort(key=lambda claim: claim.value, reverse=True)
        return cls(claims, span)

    def by_mechanism(self, mechanism: str) -> list[SaturationClaim]:
        return [c for c in self.claims if c.mechanism == mechanism]

    def render(self) -> str:
        if not self.claims:
            return "no saturation mechanisms detected"
        return "\n".join(f"- {claim}" for claim in self.claims)


def _ring_claims(summary: TraceSummary, span: int) -> list[SaturationClaim]:
    claims: list[SaturationClaim] = []
    for ring, row in sorted(summary.per_ring().items()):
        if not row["grants"]:
            continue
        conflict_fraction = row["conflicts"] / row["grants"]
        if conflict_fraction >= RING_CONTENDED_FRACTION:
            claims.append(
                SaturationClaim(
                    subject=f"ring {ring}",
                    mechanism="ring-conflict",
                    value=conflict_fraction,
                    text=(
                        f"ring {ring}: {conflict_fraction:.0%} of grants "
                        f"({row['conflicts']}/{row['grants']}) waited for a "
                        f"path — EIB arbitration is contended"
                    ),
                )
            )
        if span > 0:
            busy_fraction = row["busy_cycles"] / span
            if busy_fraction >= SATURATED_BUSY_FRACTION:
                claims.append(
                    SaturationClaim(
                        subject=f"ring {ring}",
                        mechanism="ring-busy",
                        value=busy_fraction,
                        text=(
                            f"ring {ring}: occupied {busy_fraction:.0%} of the "
                            f"run — the ring itself is saturated"
                        ),
                    )
                )
    return claims


def _bank_claims(summary: TraceSummary, span: int) -> list[SaturationClaim]:
    claims: list[SaturationClaim] = []
    for bank, row in sorted(summary.bank_stats().items()):
        if span > 0:
            busy_fraction = row["busy_cycles"] / span
            if busy_fraction >= SATURATED_BUSY_FRACTION:
                claims.append(
                    SaturationClaim(
                        subject=f"bank {bank}",
                        mechanism="bank-busy",
                        value=busy_fraction,
                        text=(
                            f"bank {bank}: serving commands "
                            f"{busy_fraction:.0%} of the run — memory-bound"
                        ),
                    )
                )
        if row["busy_cycles"]:
            turnaround_fraction = row["turnaround_cycles"] / row["busy_cycles"]
            if turnaround_fraction >= RING_CONTENDED_FRACTION:
                claims.append(
                    SaturationClaim(
                        subject=f"bank {bank}",
                        mechanism="bank-turnaround",
                        value=turnaround_fraction,
                        text=(
                            f"bank {bank}: {turnaround_fraction:.0%} of busy "
                            f"cycles were turnaround/switch dead time — the "
                            f"paper's 'refreshing, snooping' overhead"
                        ),
                    )
                )
    return claims


def _mfc_claims(summary: TraceSummary, queue_depth: int) -> list[SaturationClaim]:
    claims: list[SaturationClaim] = []
    for node, row in sorted(summary.mfc_stats().items()):
        if not row["enqueued"]:
            continue
        depth_fraction = row["max_queue_depth"] / queue_depth
        if depth_fraction >= MFC_QUEUE_LIMIT_FRACTION:
            claims.append(
                SaturationClaim(
                    subject=f"MFC {node}",
                    mechanism="mfc-queue",
                    value=depth_fraction,
                    text=(
                        f"MFC {node}: command queue hit "
                        f"{row['max_queue_depth']}/{queue_depth} entries — the "
                        f"queue, not the SPU, paces this flow"
                    ),
                )
            )
    return claims


def _flow_claims(summary: TraceSummary) -> list[SaturationClaim]:
    claims: list[SaturationClaim] = []
    for (src, dst), row in sorted(summary.per_flow().items()):
        active = row["bytes"] and row["wait_cycles"]
        if not active:
            continue
        span = max(1, row["last_ts"] - row["first_ts"])
        wait_fraction = row["wait_cycles"] / span
        if wait_fraction >= RING_CONTENDED_FRACTION:
            claims.append(
                SaturationClaim(
                    subject=f"flow {src}->{dst}",
                    mechanism="flow-wait",
                    value=wait_fraction,
                    text=(
                        f"flow {src}->{dst}: spent {wait_fraction:.0%} of its "
                        f"active window waiting on the arbiter "
                        f"({row['wait_cycles']} cycles over {span})"
                    ),
                )
            )
    return claims


def flow_bandwidth_table(
    summary: TraceSummary,
    cpu_hz: float,
) -> list[tuple[str, str, int, float]]:
    """(src, dst, bytes, GB/s over the flow's active window) rows,
    largest flows first — the per-flow view of a run's bandwidth."""
    rows: list[tuple[str, str, int, float]] = []
    for (src, dst), row in summary.per_flow().items():
        if not row["bytes"]:
            continue
        span = max(1, row["last_ts"] - row["first_ts"])
        gbps = row["bytes"] / (span / cpu_hz) / 1e9
        rows.append((src, dst, row["bytes"], gbps))
    rows.sort(key=lambda entry: entry[2], reverse=True)
    return rows
