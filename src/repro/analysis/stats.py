"""Small numeric helpers the analysis and report layers share."""

from __future__ import annotations
from collections.abc import Sequence

def efficiency(measured_gbps: float, peak_gbps: float) -> float:
    """Fraction of a peak actually sustained."""
    if peak_gbps <= 0:
        raise ValueError(f"peak must be positive, got {peak_gbps}")
    if measured_gbps < 0:
        raise ValueError(f"measured must be non-negative, got {measured_gbps}")
    return measured_gbps / peak_gbps

def speedup_series(
    series: Sequence[tuple[object, float]]
) -> list[tuple[object, float]]:
    """Normalise a (x, GB/s) series to its first point."""
    if not series:
        raise ValueError("empty series")
    base = series[0][1]
    if base <= 0:
        raise ValueError("series starts at non-positive bandwidth")
    return [(x, value / base) for x, value in series]


def scaling_efficiency(
    series: Sequence[tuple[int, float]]
) -> list[tuple[int, float]]:
    """Weak-scaling efficiency: measured / (n * per-unit baseline).

    ``series`` maps unit counts to aggregate GB/s; the first entry is
    the baseline.
    """
    if not series:
        raise ValueError("empty series")
    base_n, base_bw = series[0]
    if base_n <= 0 or base_bw <= 0:
        raise ValueError(f"bad baseline {series[0]}")
    per_unit = base_bw / base_n
    return [(n, bw / (n * per_unit)) for n, bw in series]


def crossover(
    series_a: Sequence[tuple[float, float]],
    series_b: Sequence[tuple[float, float]],
) -> float | None:
    """First x at which series_a stops losing to series_b.

    Both series must share their x values in ascending order.  Returns
    None when one side wins everywhere.  Used to locate, e.g., the
    element size where DMA-elem catches up with DMA-list.
    """
    if [x for x, _ in series_a] != [x for x, _ in series_b]:
        raise ValueError("series must share x values")
    behind = None
    for (x, a_value), (_x, b_value) in zip(series_a, series_b, strict=True):
        if a_value < b_value:
            behind = True
            continue
        if behind:
            return x
        behind = False
    return None
