"""Streaming pipelines: the paper's headline guideline, executable.

The paper closes its SPE-to-memory analysis with: "implementing two data
streams using 4 SPEs each can be more efficient than having a single
data stream using the 8 SPEs".  A *data stream* here is the streaming
programming model's pipeline: one SPE pulls data from main memory, the
chunk then flows local-store-to-local-store through the downstream SPEs
(each doing its compute), and the tail SPE writes results back.  A
single 8-deep pipeline has one SPE's worth of memory input bandwidth
(~10 GB/s); two 4-deep pipelines have two (~20 GB/s), which the memory
system can actually deliver.

:class:`StreamingComparison` builds both configurations out of real SPU
programs — mailbox tokens for flow control, double-buffered pulls, DMA
for every byte moved — and measures end-to-end throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.cell.chip import CellChip
from repro.cell.config import CellConfig
from repro.cell.errors import ConfigError
from repro.cell.topology import SpeMapping
from repro.libspe import SpeContext, SpuRuntime

#: Mailbox token kinds (high byte of the 32-bit message).
READY = 1
ACK = 2

#: Chunks in flight between adjacent stages (double buffering).
WINDOW = 2


def _token(kind: int, chunk: int) -> int:
    return (kind << 24) | (chunk & 0xFFFFFF)


def _token_kind(message: int) -> int:
    return message >> 24


class _Inbox:
    """Sorts one SPE's mixed inbound mailbox traffic by token kind.

    A middle pipeline stage receives READY tokens from its upstream and
    ACK tokens from its downstream on the same 4-deep inbound mailbox;
    programs pull "the next token of kind X" through this helper.
    """

    def __init__(self, spu: SpuRuntime):
        self.spu = spu
        self._buffered: dict[int, list[int]] = {READY: [], ACK: []}

    def expect(self, kind: int):
        """Sub-generator: the next token of ``kind`` (buffers others)."""
        while not self._buffered[kind]:
            message = yield self.spu.read_in_mbox()
            self._buffered[_token_kind(message)].append(message & 0xFFFFFF)
        return self._buffered[kind].pop(0)


def _source_stage(spu, next_runtime, out, chunk_bytes, n_chunks, compute_cycles):
    """Head of a pipeline: pull from memory, hand to the next stage."""
    inbox = _Inbox(spu)
    start = spu.read_decrementer()
    for chunk in range(n_chunks):
        if chunk >= WINDOW:
            yield from inbox.expect(ACK)
        yield from spu.mfc_get(size=chunk_bytes, tag=0)
        yield from spu.wait_tags([0])
        if compute_cycles:
            yield spu.compute(compute_cycles)
        yield next_runtime.mailbox.inbound.write(_token(READY, chunk))
    for _ in range(min(WINDOW, n_chunks)):
        yield from inbox.expect(ACK)
    out["start"] = start
    out["end"] = spu.read_decrementer()


def _middle_stage(
    spu, prev_spe, prev_runtime, next_runtime, out, chunk_bytes, n_chunks, compute_cycles
):
    """Interior stage: pull from upstream LS, pass downstream."""
    inbox = _Inbox(spu)
    start = spu.read_decrementer()
    for chunk in range(n_chunks):
        yield from inbox.expect(READY)
        yield from spu.mfc_get(size=chunk_bytes, tag=0, remote_spe=prev_spe)
        yield from spu.wait_tags([0])
        yield prev_runtime.mailbox.inbound.write(_token(ACK, chunk))
        if compute_cycles:
            yield spu.compute(compute_cycles)
        if chunk >= WINDOW:
            yield from inbox.expect(ACK)
        yield next_runtime.mailbox.inbound.write(_token(READY, chunk))
    for _ in range(min(WINDOW, n_chunks)):
        yield from inbox.expect(ACK)
    out["start"] = start
    out["end"] = spu.read_decrementer()


def _sink_stage(
    spu, prev_spe, prev_runtime, out, chunk_bytes, n_chunks, compute_cycles
):
    """Tail: pull from upstream, write results to main memory."""
    inbox = _Inbox(spu)
    start = spu.read_decrementer()
    for chunk in range(n_chunks):
        yield from inbox.expect(READY)
        yield from spu.mfc_get(size=chunk_bytes, tag=0, remote_spe=prev_spe)
        yield from spu.wait_tags([0])
        yield prev_runtime.mailbox.inbound.write(_token(ACK, chunk))
        if compute_cycles:
            yield spu.compute(compute_cycles)
        yield from spu.mfc_put(size=chunk_bytes, tag=1)
    yield from spu.wait_tags([1])
    out["start"] = start
    out["end"] = spu.read_decrementer()


def build_pipeline(
    chip: CellChip,
    logical_indices: Sequence[int],
    chunk_bytes: int,
    n_chunks: int,
    compute_cycles: int = 0,
) -> list[dict]:
    """Wire a pull pipeline over the given SPEs; returns the per-stage
    timing dicts (filled once the chip runs)."""
    if len(logical_indices) < 2:
        raise ConfigError("a pipeline needs at least a source and a sink")
    contexts = [SpeContext(chip, logical) for logical in logical_indices]
    outs: list[dict] = [{} for _ in contexts]
    last = len(contexts) - 1
    for position, context in enumerate(contexts):
        if position == 0:
            context.load(
                _source_stage,
                contexts[1].runtime,
                outs[0],
                chunk_bytes,
                n_chunks,
                compute_cycles,
            )
        elif position == last:
            context.load(
                _sink_stage,
                contexts[position - 1].spe,
                contexts[position - 1].runtime,
                outs[position],
                chunk_bytes,
                n_chunks,
                compute_cycles,
            )
        else:
            context.load(
                _middle_stage,
                contexts[position - 1].spe,
                contexts[position - 1].runtime,
                contexts[position + 1].runtime,
                outs[position],
                chunk_bytes,
                n_chunks,
                compute_cycles,
            )
    return outs


@dataclass(frozen=True)
class StreamingResult:
    """Throughput of one pipeline configuration."""

    label: str
    n_pipelines: int
    spes_per_pipeline: int
    total_bytes: int
    cycles: int
    gbps: float


class StreamingComparison:
    """One 8-SPE stream versus two 4-SPE streams over the same data."""

    def __init__(
        self,
        config: CellConfig | None = None,
        chunk_bytes: int = 16384,
        chunks_per_stream_unit: int = 64,
        compute_cycles: int = 0,
        seed: int = 1234,
    ):
        self.config = config or CellConfig.paper_blade()
        self.chunk_bytes = chunk_bytes
        self.chunks = chunks_per_stream_unit
        self.compute_cycles = compute_cycles
        self.seed = seed

    def _run(self, pipelines: Sequence[Sequence[int]], label: str) -> StreamingResult:
        chip = CellChip(
            config=self.config,
            mapping=SpeMapping.random(self.seed, self.config.n_spes),
        )
        total_chunks = self.chunks * len(
            [spe for pipeline in pipelines for spe in pipeline]
        )
        chunks_each = total_chunks // len(pipelines)
        outs: list[dict] = []
        for pipeline in pipelines:
            outs.extend(
                build_pipeline(
                    chip, pipeline, self.chunk_bytes, chunks_each, self.compute_cycles
                )
            )
        chip.run()
        elapsed = max(out["end"] for out in outs) - min(out["start"] for out in outs)
        total_bytes = self.chunk_bytes * chunks_each * len(pipelines)
        return StreamingResult(
            label=label,
            n_pipelines=len(pipelines),
            spes_per_pipeline=len(pipelines[0]),
            total_bytes=total_bytes,
            cycles=elapsed,
            gbps=self.config.clock.gbps(total_bytes, elapsed),
        )

    def run(self) -> dict[str, StreamingResult]:
        """Both configurations, same total data volume."""
        single = self._run([list(range(8))], "one 8-SPE stream")
        double = self._run(
            [[0, 1, 2, 3], [4, 5, 6, 7]], "two 4-SPE streams"
        )
        return {"single": single, "double": double}
