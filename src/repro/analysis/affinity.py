"""SPE affinity: the API the paper asks for, implemented.

The paper's conclusion: "The physical layout of the SPEs has a critical
impact on performance.  However the current API does not allow the
programmer to select such layout ... This should be improved in the
libspe library, in which there is a simple notion of affinity, which is
not fully implemented yet."

This module implements that missing piece on the model: describe your
communication pattern, and the planner searches the logical-to-physical
mapping space for a placement that minimises ring contention.  The cost
function is the span pressure the EIB arbiter actually suffers: each
flow occupies its shortest path's spans, and overlapping spans in the
same direction fight for the two rings.  ``measure_mapping`` then runs
the real workload on the simulator to verify a planned placement.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from repro.cell.chip import CellChip
from repro.cell.config import CellConfig
from repro.cell.errors import ConfigError
from repro.cell.topology import RingTopology, SpeMapping
from repro.core.kernels import DmaWorkload, dma_stream_kernel
from repro.libspe import SpeContext


@dataclass(frozen=True)
class CommunicationPattern:
    """Who talks to whom: (initiator, partner, weight) logical flows.

    Each entry stands for a sustained bidirectional GET+PUT relationship
    (the shape of both the couples and the cycle experiments).
    """

    flows: tuple[tuple[int, int, float], ...]

    def __post_init__(self):
        for a, b, weight in self.flows:
            if a == b:
                raise ConfigError(f"flow between SPE {a} and itself")
            if weight <= 0:
                raise ConfigError(f"flow ({a}, {b}) has weight {weight}")

    @property
    def n_spes_required(self) -> int:
        return 1 + max(max(a, b) for a, b, _w in self.flows)

    @classmethod
    def couples(cls, n_spes: int = 8) -> CommunicationPattern:
        """Pairs (0,1), (2,3), ... — the Figure 12/13 workload."""
        if n_spes % 2:
            raise ConfigError("couples need an even SPE count")
        return cls(tuple((i, i + 1, 1.0) for i in range(0, n_spes, 2)))

    @classmethod
    def cycle(cls, n_spes: int = 8) -> CommunicationPattern:
        """A ring 0->1->...->0 — the Figure 15/16 workload."""
        if n_spes < 2:
            raise ConfigError("a cycle needs at least 2 SPEs")
        return cls(tuple((i, (i + 1) % n_spes, 1.0) for i in range(n_spes)))


def mapping_cost(
    pattern: CommunicationPattern,
    mapping: SpeMapping,
    topology: RingTopology | None = None,
) -> float:
    """Span pressure of a placement: for every physical span and
    direction, the amount of flow weight crossing it beyond what the two
    rings per direction carry conflict-free, plus a small distance term
    (longer paths occupy more spans for longer)."""
    topology = topology or RingTopology()
    rings_per_direction = 2
    load: dict[tuple[int, int], float] = {}
    distance_term = 0.0
    for a, b, weight in pattern.flows:
        for src, dst in ((mapping.node(a), mapping.node(b)),
                         (mapping.node(b), mapping.node(a))):
            direction = topology.directions_by_distance(src, dst)[0]
            spans = topology.path(src, dst, direction)
            distance_term += weight * len(spans)
            for span in spans:
                key = (span, direction)
                load[key] = load.get(key, 0.0) + weight
    overload = sum(
        max(0.0, pressure - rings_per_direction) for pressure in load.values()
    )
    return overload * 100.0 + distance_term


def plan_mapping(
    pattern: CommunicationPattern,
    topology: RingTopology | None = None,
    n_spes: int = 8,
    objective: str = "best",
    max_evaluations: int = 50000,
    seed: int = 0,
) -> SpeMapping:
    """Search placements for the lowest (or highest) span pressure.

    Exhaustive when 8! fits in ``max_evaluations`` (it does by default),
    a seeded random sample otherwise.  ``objective="worst"`` returns the
    adversarial placement — useful to bracket the lottery.
    """
    if objective not in ("best", "worst"):
        raise ConfigError(f"objective must be best/worst, got {objective!r}")
    if pattern.n_spes_required > n_spes:
        raise ConfigError(
            f"pattern needs {pattern.n_spes_required} SPEs, mapping has {n_spes}"
        )
    topology = topology or RingTopology()
    candidates = _candidate_permutations(n_spes, max_evaluations, seed)
    pick = min if objective == "best" else max
    best = pick(
        candidates,
        key=lambda physical: mapping_cost(
            pattern, SpeMapping(physical), topology
        ),
    )
    return SpeMapping(best)


def _candidate_permutations(n_spes: int, max_evaluations: int, seed: int):
    import math

    total = math.factorial(n_spes)
    if total <= max_evaluations:
        return [tuple(p) for p in itertools.permutations(range(n_spes))]
    rng = random.Random(seed)
    candidates = []
    for _ in range(max_evaluations):
        physical = list(range(n_spes))
        rng.shuffle(physical)
        candidates.append(tuple(physical))
    return candidates


def measure_mapping(
    pattern: CommunicationPattern,
    mapping: SpeMapping,
    config: CellConfig | None = None,
    element_bytes: int = 16384,
    n_elements: int = 64,
) -> float:
    """Ground truth: run the pattern's GET+PUT flows on the simulator
    under the given placement; returns aggregate GB/s."""
    config = config or CellConfig.paper_blade()
    chip = CellChip(config=config, mapping=mapping)
    outs: list[dict] = []
    for a, b, _weight in pattern.flows:
        workload = DmaWorkload(
            direction="copy",
            element_bytes=element_bytes,
            n_elements=n_elements,
            partner_logical=b,
        )
        out: dict = {}
        SpeContext(chip, a).load(dma_stream_kernel, workload, out, chip.spe(b))
        outs.append(out)
    chip.run()
    total = sum(out["bytes"] for out in outs)
    elapsed = max(out["end"] for out in outs) - min(out["start"] for out in outs)
    return config.clock.gbps(total, elapsed)
