"""Analysis on top of the measurement suite.

* :mod:`repro.analysis.stats` — efficiency/scaling/crossover helpers.
* :mod:`repro.analysis.guidelines` — turns experiment results into the
  paper's section-5 programming rules, each backed by the measured
  numbers that justify it.
* :mod:`repro.analysis.streaming` — the streaming-pipeline experiment
  behind the paper's headline guideline ("two data streams using 4 SPEs
  each can be more efficient than having a single data stream using the
  8 SPEs").
* :mod:`repro.analysis.ablation` — re-run experiments under perturbed
  machine configurations to show which mechanism produces which result.
* :mod:`repro.analysis.affinity` — the SPE-affinity planner the paper's
  conclusion asks libspe for: search the placement space for a layout
  that minimises ring contention, then verify it on the simulator.
* :mod:`repro.analysis.saturation` — turns a trace stream
  (:mod:`repro.sim.trace`) into quantified claims about which chip
  mechanism (ring conflicts, bank turnaround, MFC queue) bound a run.
"""

from repro.analysis.ablation import AblationStudy, AblationPoint
from repro.analysis.affinity import (
    CommunicationPattern,
    mapping_cost,
    measure_mapping,
    plan_mapping,
)
from repro.analysis.guidelines import Guideline, GuidelineAdvisor
from repro.analysis.saturation import (
    SaturationClaim,
    SaturationReport,
    flow_bandwidth_table,
)
from repro.analysis.stats import (
    crossover,
    efficiency,
    scaling_efficiency,
    speedup_series,
)
from repro.analysis.streaming import StreamingComparison, StreamingResult

__all__ = [
    "AblationPoint",
    "AblationStudy",
    "CommunicationPattern",
    "Guideline",
    "GuidelineAdvisor",
    "SaturationClaim",
    "SaturationReport",
    "StreamingComparison",
    "StreamingResult",
    "crossover",
    "efficiency",
    "flow_bandwidth_table",
    "mapping_cost",
    "measure_mapping",
    "plan_mapping",
    "scaling_efficiency",
    "speedup_series",
]
