"""Analysis on top of the measurement suite.

* :mod:`repro.analysis.stats` — efficiency/scaling/crossover helpers.
* :mod:`repro.analysis.guidelines` — turns experiment results into the
  paper's section-5 programming rules, each backed by the measured
  numbers that justify it.
* :mod:`repro.analysis.streaming` — the streaming-pipeline experiment
  behind the paper's headline guideline ("two data streams using 4 SPEs
  each can be more efficient than having a single data stream using the
  8 SPEs").
* :mod:`repro.analysis.ablation` — re-run experiments under perturbed
  machine configurations to show which mechanism produces which result.
* :mod:`repro.analysis.affinity` — the SPE-affinity planner the paper's
  conclusion asks libspe for: search the placement space for a layout
  that minimises ring contention, then verify it on the simulator.
"""

from repro.analysis.ablation import AblationStudy, AblationPoint
from repro.analysis.affinity import (
    CommunicationPattern,
    mapping_cost,
    measure_mapping,
    plan_mapping,
)
from repro.analysis.guidelines import Guideline, GuidelineAdvisor
from repro.analysis.stats import (
    crossover,
    efficiency,
    scaling_efficiency,
    speedup_series,
)
from repro.analysis.streaming import StreamingComparison, StreamingResult

__all__ = [
    "AblationPoint",
    "AblationStudy",
    "CommunicationPattern",
    "Guideline",
    "GuidelineAdvisor",
    "StreamingComparison",
    "StreamingResult",
    "crossover",
    "efficiency",
    "mapping_cost",
    "measure_mapping",
    "plan_mapping",
    "scaling_efficiency",
    "speedup_series",
]
