"""Analysis on top of the measurement suite.

* :mod:`repro.analysis.stats` — efficiency/scaling/crossover helpers.
* :mod:`repro.analysis.guidelines` — turns experiment results into the
  paper's section-5 programming rules, each backed by the measured
  numbers that justify it.
* :mod:`repro.analysis.streaming` — the streaming-pipeline experiment
  behind the paper's headline guideline ("two data streams using 4 SPEs
  each can be more efficient than having a single data stream using the
  8 SPEs").
* :mod:`repro.analysis.ablation` — re-run experiments under perturbed
  machine configurations to show which mechanism produces which result.
* :mod:`repro.analysis.affinity` — the SPE-affinity planner the paper's
  conclusion asks libspe for: search the placement space for a layout
  that minimises ring contention, then verify it on the simulator.
* :mod:`repro.analysis.saturation` — turns a trace stream
  (:mod:`repro.sim.trace`) into quantified claims about which chip
  mechanism (ring conflicts, bank turnaround, MFC queue) bound a run.
* :mod:`repro.analysis.surrogate` /
  :mod:`repro.analysis.surrogate_store` — the O(1) analytic bandwidth
  surrogate: per-path piecewise-linear models fitted from sweep
  results, served only inside their validated domain, persisted as
  versioned JSON keyed by the result cache's code-version digest.
"""

from repro.analysis.ablation import AblationStudy, AblationPoint
from repro.analysis.affinity import (
    CommunicationPattern,
    mapping_cost,
    measure_mapping,
    plan_mapping,
)
from repro.analysis.guidelines import Guideline, GuidelineAdvisor
from repro.analysis.saturation import (
    SaturationClaim,
    SaturationReport,
    flow_bandwidth_table,
)
from repro.analysis.stats import (
    crossover,
    efficiency,
    scaling_efficiency,
    speedup_series,
)
from repro.analysis.streaming import StreamingComparison, StreamingResult
from repro.analysis.surrogate import (
    FitReport,
    PathModel,
    PathPiece,
    SurrogateModel,
)
from repro.analysis.surrogate_store import (
    SurrogateStore,
    fit_surrogate,
    training_specs,
)

__all__ = [
    "AblationPoint",
    "AblationStudy",
    "CommunicationPattern",
    "FitReport",
    "Guideline",
    "GuidelineAdvisor",
    "PathModel",
    "PathPiece",
    "SaturationClaim",
    "SaturationReport",
    "StreamingComparison",
    "StreamingResult",
    "SurrogateModel",
    "SurrogateStore",
    "crossover",
    "efficiency",
    "fit_surrogate",
    "flow_bandwidth_table",
    "mapping_cost",
    "measure_mapping",
    "plan_mapping",
    "scaling_efficiency",
    "speedup_series",
    "training_specs",
]
