"""Persistence and training-sweep plumbing for the bandwidth surrogate.

:class:`SurrogateStore` keeps one fitted
:class:`~repro.analysis.surrogate.SurrogateModel` as versioned JSON on
disk, keyed by the same code-version digest the
:class:`~repro.core.cache.ResultCache` uses
(:func:`~repro.core.cache.repro_code_version`): editing any model
source changes the digest, a stored model stops matching, and
:meth:`SurrogateStore.load` reports "no model" — the caller refits
instead of serving numbers a code change may have invalidated.  Saves
are atomic (same-directory temp file + ``os.replace``) and the payload
is a canonical JSON rendering of the *training set*, so the same sweep
always persists byte-identical bytes (fit determinism is tested on
exactly this property).

:func:`training_specs` builds the surrogate's training sweep: the exact
:class:`~repro.core.experiment.RunSpec` population the ``reproduce``
sweep itself would run, collected by driving the real experiment
classes with a spec-collecting executor (so the training set can never
drift from the sweep it is meant to answer, and a
:class:`~repro.runtime.parallel.SweepExecutor` simulating it hits the
same result cache / journal entries the sweep would).

:func:`fit_surrogate` ties the two together: simulate (or cache-serve)
the training sweep through an executor, fit, and return the model.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections.abc import Sequence

from repro.analysis.surrogate import SurrogateModel
from repro.core.cache import repro_code_version
from repro.core.experiment import RunSpec

#: Default on-disk location of the fitted model, next to the result
#: cache (the two invalidate together, being keyed by the same digest).
DEFAULT_SURROGATE_PATH = os.path.join(".repro-cache", "surrogate.json")


class SurrogateStore:
    """Versioned JSON persistence of one fitted surrogate model.

    ``code_version`` defaults to :func:`~repro.core.cache.repro_code_version`;
    tests pin it to exercise staleness without editing sources.
    """

    def __init__(self, path: str = DEFAULT_SURROGATE_PATH,
                 code_version: str | None = None):
        self.path = path
        self.code_version = (
            repro_code_version() if code_version is None else code_version
        )

    def load(self) -> SurrogateModel | None:
        """The stored model, or None when there is nothing servable:
        no file, unreadable/corrupt JSON, an unknown payload format, or
        — the important case — a model fitted under a **different code
        version** (stale models must be refitted, never reused)."""
        try:
            with open(self.path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        model = SurrogateModel.from_payload(payload)
        if model is None or model.code_version != self.code_version:
            return None
        return model

    def save(self, model: SurrogateModel) -> None:
        """Atomically persist a model (last writer wins; a crashed run
        never leaves a truncated file behind)."""
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        blob = json.dumps(
            model.to_payload(), sort_keys=True, separators=(",", ":")
        )
        handle = tempfile.NamedTemporaryFile(
            "w", dir=directory, suffix=".tmp", delete=False
        )
        try:
            with handle:
                handle.write(blob)
                handle.write("\n")
            os.replace(handle.name, self.path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def describe(self) -> str:
        return f"{self.path} (code version {self.code_version[:12]})"


class _SpecCollector:
    """Executor stand-in that records every spec an experiment would
    run instead of running it (the cells it returns are placeholders
    nothing reads — experiments only store stats into tables)."""

    def __init__(self) -> None:
        self.specs: list[RunSpec] = []

    def stats(self, specs: Sequence[RunSpec]) -> None:
        self.specs.extend(specs)
        return None


def training_specs(preset: str) -> list[RunSpec]:
    """Every RunSpec of the ``reproduce`` sweep at a preset, in sweep
    order — the surrogate's training population.

    Driving the real experiment classes (not a parallel description of
    them) guarantees the fitted domain covers the sweep the model will
    be asked to answer.
    """
    # Imported late: repro.reproduce imports this module for the
    # --surrogate wiring, so a module-level import would be circular.
    from repro.reproduce import sweep_experiments

    collector = _SpecCollector()
    for experiment in sweep_experiments(preset).values():
        experiment.executor = collector
        experiment.run()
    return collector.specs


def fit_surrogate(
    executor, preset: str, code_version: str | None = None
) -> SurrogateModel:
    """Simulate (or cache-serve) the training sweep through an executor
    and fit a model from it.

    The executor's own surrogate, if any, is detached for the duration:
    a training sweep must produce simulator truth, not model output.
    """
    specs = training_specs(preset)
    previous = getattr(executor, "surrogate", None)
    executor.surrogate = None
    try:
        samples = executor.samples(specs)
    finally:
        executor.surrogate = previous
    return SurrogateModel.fit(specs, samples, code_version=code_version)
