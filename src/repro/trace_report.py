"""Summarise a recorded trace: per-ring, per-flow and per-bank tables.

Reads a Chrome trace-event JSON file written by the simulator (see
``python -m repro.reproduce --trace out.json`` or
:func:`repro.sim.write_chrome_trace`), rebuilds the typed record stream,
and prints:

* the EIB counters recomputed from the stream (checked against the live
  counters embedded in the file — exit status is non-zero on mismatch);
* per-ring grants/conflicts/busy/bytes;
* per-flow bytes and bandwidth over each flow's active window;
* per-bank service/turnaround accounting and per-MFC queue statistics;
* injected-fault accounting (site, kind, count, stolen cycles) when the
  run carried a fault engine (``--faults``);
* the saturation claims the trace supports
  (:mod:`repro.analysis.saturation`).

Usage::

    python -m repro.trace_report out.json
    python -m repro.trace_report out.json --interval 50000   # timeline bucket
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.saturation import SaturationReport, flow_bandwidth_table
from repro.sim.trace import TraceSummary, read_chrome_trace

#: Fallback clock when the trace carries no cpu_hz (the paper's blade).
DEFAULT_CPU_HZ = 2.1e9


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace_report", description=__doc__
    )
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--interval",
        type=int,
        default=None,
        help="also print a bytes-per-interval flow timeline (cycles)",
    )
    return parser.parse_args(argv)


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows))
        if rows
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(str(header).ljust(width) for header, width in zip(headers, widths, strict=True)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths, strict=True))
        )
    return "\n".join(lines)


def render_report(
    summary: TraceSummary,
    cpu_hz: float,
    recorded_counters: dict | None = None,
    interval: int | None = None,
) -> str:
    """The full text report; pure function so tests can assert on it."""
    sections: list[str] = []
    counters = summary.counters()
    lines = [f"{name:>12}: {value}" for name, value in counters.items()]
    if recorded_counters:
        match = all(
            counters.get(name) == recorded_counters.get(name)
            for name in ("grants", "conflicts", "wait_cycles", "bytes_moved")
        )
        verdict = (
            "reproduced exactly from the trace stream"
            if match
            else f"MISMATCH vs live counters {recorded_counters}"
        )
        lines.append(f"{'':>12}  ({verdict})")
    sections.append("== EIB counters ==\n" + "\n".join(lines))

    ring_rows = [
        [ring, row["grants"], row["conflicts"],
         f"{row['conflicts'] / row['grants']:.1%}" if row["grants"] else "-",
         row["busy_cycles"], row["bytes"]]
        for ring, row in sorted(summary.per_ring().items())
    ]
    sections.append(
        "== per ring ==\n"
        + _table(["ring", "grants", "conflicts", "conflict%", "busy_cyc", "bytes"],
                 ring_rows)
    )

    flow_rows = [
        [src, dst, nbytes, f"{gbps:.2f}"]
        for src, dst, nbytes, gbps in flow_bandwidth_table(summary, cpu_hz)
    ]
    sections.append(
        "== per flow ==\n"
        + _table(["src", "dst", "bytes", "GB/s"], flow_rows)
    )

    bank_rows = [
        [bank, row["commands"], row["bytes"], row["busy_cycles"],
         row["turnaround_cycles"]]
        for bank, row in sorted(summary.bank_stats().items())
    ]
    if bank_rows:
        sections.append(
            "== memory banks ==\n"
            + _table(["bank", "commands", "bytes", "busy_cyc", "turnaround_cyc"],
                     bank_rows)
        )

    mfc_rows = [
        [node, row["enqueued"], row["completed"], row["bytes"],
         row["max_queue_depth"]]
        for node, row in sorted(summary.mfc_stats().items())
    ]
    if mfc_rows:
        sections.append(
            "== MFC queues ==\n"
            + _table(["node", "enqueued", "completed", "bytes", "max_depth"],
                     mfc_rows)
        )

    fault_rows = [
        [site, kind, row["count"], row["cycles"]]
        for (site, kind), row in sorted(summary.fault_stats().items())
    ]
    if fault_rows:
        sections.append(
            "== faults ==\n"
            + _table(["site", "kind", "count", "cycles"], fault_rows)
        )

    if interval:
        timeline_rows = []
        for (src, dst), buckets in sorted(summary.flow_timeline(interval).items()):
            for bucket, nbytes in buckets:
                timeline_rows.append([f"{src}->{dst}", bucket, nbytes])
        sections.append(
            f"== flow timeline (bytes per {interval} cycles) ==\n"
            + _table(["flow", "t", "bytes"], timeline_rows)
        )

    sections.append(
        "== saturation claims ==\n"
        + SaturationReport.from_summary(summary).render()
    )
    return "\n\n".join(sections)


def main(argv=None) -> int:
    args = parse_args(argv)
    records, metadata = read_chrome_trace(args.trace)
    summary = TraceSummary(records)
    cpu_hz = metadata.get("cpu_hz") or DEFAULT_CPU_HZ
    recorded = metadata.get("counters")
    print(
        f"{args.trace}: {len(records)} records over "
        f"{summary.duration} cycles"
    )
    print()
    print(render_report(summary, cpu_hz, recorded, args.interval))
    if recorded:
        counters = summary.counters()
        if any(
            counters.get(name) != recorded.get(name)
            for name in ("grants", "conflicts", "wait_cycles", "bytes_moved")
        ):
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
