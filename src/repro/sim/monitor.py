"""Instrumentation helpers for simulations.

These are deliberately simulation-agnostic: they record what the models
tell them and compute summary statistics afterwards.  The Cell models use
them to report ring utilisation, queue depths and conflict counts, which
the analysis layer turns into the paper's explanatory claims (e.g. "the
8-SPE drop is EIB saturation").
"""

from __future__ import annotations

from repro.sim.core import Environment, SimulationError


class BusyMonitor:
    """Tracks busy/idle intervals of a single server.

    Overlapping claims are allowed (e.g. a ring with three concurrent
    transfers): the monitor tracks the *occupancy level* over time.
    """

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._level = 0
        self._changes: list[tuple[int, int]] = [(env.now, 0)]

    @property
    def level(self) -> int:
        return self._level

    def acquire(self) -> None:
        self._level += 1
        self._changes.append((self.env.now, self._level))

    def release(self) -> None:
        if self._level <= 0:
            raise SimulationError(f"BusyMonitor {self.name!r} released while idle")
        self._level -= 1
        self._changes.append((self.env.now, self._level))

    def busy_time(self, until: int | None = None) -> int:
        """Total time with occupancy level >= 1."""
        return self._time_at(lambda level: level >= 1, until)

    def level_time_integral(self, until: int | None = None) -> int:
        """Integral of occupancy level over time (level-weighted busy time)."""
        end = self.env.now if until is None else until
        total = 0
        for (t0, level), (t1, _next_level) in zip(self._changes, self._changes[1:], strict=False):
            total += level * (min(t1, end) - min(t0, end))
        last_t, last_level = self._changes[-1]
        if last_t < end:
            total += last_level * (end - last_t)
        return total

    def _time_at(self, predicate, until: int | None) -> int:
        end = self.env.now if until is None else until
        total = 0
        for (t0, level), (t1, _next_level) in zip(self._changes, self._changes[1:], strict=False):
            if predicate(level):
                total += min(t1, end) - min(t0, end)
        last_t, last_level = self._changes[-1]
        if last_t < end and predicate(last_level):
            total += end - last_t
        return total

    def utilization(self, until: int | None = None) -> float:
        """Fraction of elapsed time the server was busy (level >= 1)."""
        end = self.env.now if until is None else until
        start = self._changes[0][0]
        elapsed = end - start
        if elapsed <= 0:
            return 0.0
        return self.busy_time(until) / elapsed


class TimeSeries:
    """Records (time, value) samples; supports simple reductions."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self.samples: list[tuple[int, float]] = []

    def record(self, value: float) -> None:
        self.samples.append((self.env.now, value))

    def values(self) -> list[float]:
        return [v for _t, v in self.samples]

    def mean(self) -> float:
        values = self.values()
        if not values:
            raise SimulationError(f"TimeSeries {self.name!r} has no samples")
        return sum(values) / len(values)

    def max(self) -> float:
        values = self.values()
        if not values:
            raise SimulationError(f"TimeSeries {self.name!r} has no samples")
        return max(values)

    def __len__(self) -> int:
        return len(self.samples)


class Counter:
    """A named monotonically increasing event counter."""

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0

    def increment(self, by: int = 1) -> None:
        if by < 0:
            raise ValueError("Counter can only increase")
        self.count += by

    def __int__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, count={self.count})"
