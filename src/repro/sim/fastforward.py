"""Steady-state fast-forward for the coalescing engine.

A bandwidth-limited DMA train settles into a periodic regime: after the
warm-up transient, the chip cycles through the same configuration of
in-flight commands, bank queues and ring grants over and over, shifted
in time (Treibig & Hager's piecewise-occupancy picture of streaming
loops).  Simulating such a regime event by event re-derives the same
schedule N times.  This module detects the regime *structurally* and
advances the simulation by whole periods in one step.

Exactness argument
------------------

The simulation state splits into three parts:

1. **Structural state** — everything the model's decisions read: the
   heap (as *relative* times, pop order, and the full behavioural state
   of every scheduled actor), bank queues and recency windows, EIB ring
   occupancy and waiter lists (with waiter ages), MFC slot and tag
   accounting, kernel continuations.  The DES transition function is a
   pure function of this state: two runs in identical structural states
   evolve identically, step for step, forever (the engine has no other
   inputs — no randomness, no wall clock).
2. **Monotone counters** — statistics (bytes served, grants, issued
   element counts) that the model never branches on.  Between two
   occurrences of the same structural state they advance by a fixed
   delta per period.
3. **Placement accumulators** — the one piece of *float* state
   (:meth:`repro.cell.memory.MemorySystem.assign_bank`'s Bresenham
   page-placement accumulator).  Its decision sequence is periodic, but
   the float values themselves drift by ~1 ulp per cycle (0.7 is not a
   binary fraction) and never recur exactly, so it cannot be part of
   the fingerprint.  Instead the warp *replays the accumulator's own
   update rule* — the identical float operations the engine would have
   executed — one period at a time, and verifies that each period's
   local/remote decision pattern equals the observed one.  The floats
   are therefore bit-exact by construction, and any pattern deviation
   (reachable only after ~1e12 periods of drift) cancels the warp at
   that period boundary.

When the structural fingerprint at one anchor equals the fingerprint
at an earlier anchor, one full period ``P = now - prev_now`` has passed
and the counter deltas ``D`` of that period are known.  Advancing by
``N`` periods is then exact: :meth:`repro.sim.core.Environment.warp`
shifts ``now`` and every heap entry uniformly (pairwise comparisons and
the pop order are invariant), counters advance by ``N * D``, absolute
time stamps carried by model state (the MFC memory-path pacer, EIB
wait-start stamps) shift with the clock, and the accumulators are
rolled forward with verification as above.

Conservative bail-out
---------------------

``N`` is capped so no kernel crosses a control-flow boundary inside the
warped window: an ``elem``-mode kernel must stay strictly below its
element count (``N <= (n - 1 - issued) // d``), a ``list``-mode kernel
must keep ``remaining > batch`` so its chunk size stays constant
(``N <= (n - issued - batch - 1) // d``).  A kernel that is unfinished
but made no progress over the period refuses the warp entirely.  Any
structure the fingerprint does not fully describe — an unknown heap
item type, a non-integer actor value, parked (fault-dropped) commands,
fence/barrier waiters, outstanding tags outside the streaming pair —
disables fast-forward for the run, as does exhausting the capture
budget without finding a recurrence (the regime is aperiodic or the
transient too long; the run completes normally, just without warps).
"""

from __future__ import annotations

from typing import Any

#: Anchor firings ignored before the first capture: the warm-up
#: transient never recurs, so fingerprinting it is pure cost.
WARMUP_ANCHORS = 8

#: Fewest consecutive fingerprint *misses* allowed before fast-forward
#: gives up, regardless of state size.  A hit resets the counter.
CAPTURE_MIN = 12

#: Total capture-work allowance: the per-run miss budget is
#: ``max(CAPTURE_MIN, CAPTURE_TOTAL // n_kernels)``.  A capture walks
#: the whole structural state, so its cost scales with the kernel
#: count; dividing a fixed work allowance keeps the tax an aperiodic
#: run ever pays roughly constant — the 8-SPE DMA storm gives up after
#: 12 expensive captures, while a single-kernel stream (whose regime
#: settles only after the bank round-robin cycle, ~60 anchors in)
#: affords 96 cheap ones.
CAPTURE_TOTAL = 96

#: The actor type names the fingerprint knows how to describe.  Name
#: dispatch (not isinstance) keeps this module free of imports from
#: repro.cell / repro.core and therefore cycle-free.
_KNOWN_TYPES = frozenset(
    (
        "FastStreamKernel",
        "FastDmaCommand",
        "FastDmaList",
        "_FastListBurst",
        "MemoryBank",
    )
)


class FastForwardDisabled(Exception):
    """Internal signal: the state contains something the fingerprint
    cannot prove periodic; fall back to plain simulation."""


class FastForward:
    """Periodic-regime detector and warp engine for one environment.

    Created lazily by :class:`repro.sim.engine_fast.FastEnvironment`
    on the first anchor; :meth:`attempt` runs between heap pops, never
    inside a callback, so it always sees a consistent state.
    """

    def __init__(self, env: Any):
        self.env = env
        self.enabled = True
        # Stats surfaced through EngineReport / the benchmarks.
        self.windows_warped = 0
        self.cycles_warped = 0
        self.events_elided = 0
        self.captures = 0
        self._skip = WARMUP_ANCHORS
        self._dry = 0
        self._budget = CAPTURE_MIN
        # fingerprint -> (now, counters, events_popped, acc snapshot)
        self._entries: dict[Any, tuple[int, tuple, int, tuple]] = {}
        self._wired = False
        self.kernels: list[Any] = []
        self.mfcs: list[Any] = []
        self.banks: list[Any] = []
        self.eib: Any = None
        self.memory: Any = None
        self._requesters: list[str] = []

    # -- wiring ----------------------------------------------------------------

    def _wire(self) -> None:
        """Discover the chip from the registered kernels (the
        environment does not hold the chip; the kernels do)."""
        kernels = self.env._fast_kernels
        if not kernels:
            raise FastForwardDisabled("no registered kernels")
        self.kernels = list(kernels)
        mfcs: dict[str, Any] = {}
        for kernel in kernels:
            mfcs[kernel.mfc.node] = kernel.mfc
        self.mfcs = [mfcs[node] for node in sorted(mfcs)]
        first = self.mfcs[0]
        self.eib = first._fast_eib
        self.memory = first._fast_memory
        self.banks = list(self.memory.banks)
        self._requesters = sorted(mfcs)
        self._budget = max(CAPTURE_MIN, CAPTURE_TOTAL // len(self.kernels))
        self._wired = True

    # -- the attempt entry point ----------------------------------------------

    def _disable(self) -> None:
        self.enabled = False
        self.env._ff_on = False

    def attempt(self) -> None:
        """Capture a fingerprint at an anchor; warp when it recurs."""
        if not self.enabled:
            return
        if self._skip:
            self._skip -= 1
            return
        self.captures += 1
        try:
            if not self._wired:
                self._wire()
            fingerprint = self._fingerprint()
            env = self.env
            counters = self._counters()
            accs = self._acc_snapshot()
            entry = self._entries.get(fingerprint)
            if entry is None:
                self._dry += 1
                if self._dry >= self._budget:
                    # No recurrence within the detectable horizon: the
                    # regime is aperiodic (or its period exceeds the
                    # budget); stop paying the capture tax.
                    self._disable()
                    return
                self._entries[fingerprint] = (
                    env.now, counters, env.events_popped, accs
                )
                return
            self._dry = 0
            prev_now, prev_counters, prev_popped, prev_accs = entry
            period = env.now - prev_now
            if period <= 0:
                return
            deltas = tuple(c - p for c, p in zip(counters, prev_counters))
            n = self._margin(deltas)
            if n < 1:
                # Steady state confirmed but no runway left: slide the
                # window so a later (shorter) regime can still match.
                self._entries[fingerprint] = (
                    env.now, counters, env.events_popped, accs
                )
                return
            n, rolled = self._roll_accumulators(n, prev_accs, accs, deltas)
            if n < 1:
                self._entries[fingerprint] = (
                    env.now, counters, env.events_popped, accs
                )
                return
            self._apply(n, period, counters, deltas,
                        env.events_popped - prev_popped, rolled)
            # The post-warp state matches this fingerprint again (that
            # is the definition of the warp); refresh the entry so one
            # more naturally-simulated period can extend the warp if
            # margins allow another round.
            self._entries[fingerprint] = (
                env.now,
                self._counters(),
                env.events_popped,
                self._acc_snapshot(),
            )
        except FastForwardDisabled:
            self._disable()

    # -- fingerprint -----------------------------------------------------------

    def _describe(self, obj: Any) -> tuple:
        """Behavioural descriptor of one actor/model object: every field
        its future transitions read, with absolute times made relative.
        Raises FastForwardDisabled on anything unknown."""
        name = type(obj).__name__
        if name not in _KNOWN_TYPES:
            raise FastForwardDisabled(f"unknown heap item {name}")
        now = self.env.now
        cont = getattr(obj, "_run_callbacks", None)
        cont_name = getattr(cont, "__name__", None)
        value = getattr(obj, "_value", None)
        if value is not None and not isinstance(value, (int, tuple)):
            raise FastForwardDisabled(f"non-integral actor value {value!r}")
        if name == "FastStreamKernel":
            after_issue = getattr(obj, "_after_issue", None)
            after_sync = getattr(obj, "_after_sync", None)
            # _since_sync is behavioural only under a sync cadence
            # (kernels branch on it solely when _sync_every is set);
            # on a sync-free kernel it grows monotonically and would
            # block every recurrence, so there it is a plain counter
            # (advanced linearly by the warp, never fingerprinted).
            since_sync = (
                getattr(obj, "_since_sync", None)
                if getattr(obj, "_sync_every", None) is not None
                else None
            )
            return (
                "K",
                obj.spe.node,
                cont_name,
                obj.finished,
                getattr(obj, "_pend_tag", None),
                since_sync,
                getattr(obj, "_chunk", None),
                getattr(obj, "_warm_i", None),
                getattr(after_issue, "__name__", None),
                getattr(after_sync, "__name__", None),
                value,
            )
        if name == "FastDmaCommand":
            return (
                "C",
                obj.mfc.node,
                cont_name,
                obj.tag,
                getattr(obj, "_mv_direction", None),
                getattr(obj, "_mv_target", None),
                getattr(obj, "_mv_remote", None),
                obj.nbytes,
                getattr(obj, "direction", None),
                getattr(getattr(obj, "_mv_bank", None), "name", None),
                self._eib_fields(obj, cont_name, now),
                value,
            )
        if name == "_FastListBurst":
            dma_list = obj.dma_list
            return (
                "B",
                obj.mfc.node,
                cont_name,
                obj.nbytes,
                getattr(obj, "_mv_direction", None),
                getattr(obj, "_mv_target", None),
                getattr(obj, "_mv_remote", None),
                getattr(obj, "direction", None),
                getattr(getattr(obj, "_mv_bank", None), "name", None),
                self._eib_fields(obj, cont_name, now),
                self._describe(dma_list),
                value,
            )
        if name == "FastDmaList":
            return (
                "L",
                obj.mfc.node,
                cont_name,
                obj.tag,
                obj.direction,
                obj.target,
                obj.remote_node,
                obj._burst_i,
                getattr(obj, "_cur_nbytes", None),
                obj._outstanding_bursts,
                obj._inflight,
                obj._token_waiting,
                obj._all_issued,
                value,
            )
        # MemoryBank: the request being served and the queue are
        # captured in the bank section; the heap entry only carries
        # which continuation fires.
        return ("BK", obj.name, cont_name)

    def _eib_fields(self, obj: Any, cont_name: str | None, now: int) -> tuple:
        """The EIB-leg sub-state of a mover: src/dst/size pin the leg
        memo, the chunk index and chosen ring pin the position in it,
        and a waiter's age is made relative (its wait_cycles accrual
        reads ``now - started`` at grant time)."""
        src = getattr(obj, "_eib_src", None)
        if src is None:
            return ()
        age = None
        if cont_name == "_eib_granted":
            age = now - obj._eib_wait_started
        return (
            src,
            obj._eib_dst,
            getattr(getattr(obj, "_eib_after", None), "__name__", None),
            getattr(obj, "_eib_i", None),
            getattr(obj, "_eib_ri", None),
            age,
        )

    def _fingerprint(self) -> tuple:
        env = self.env
        now = env.now
        heap = tuple(
            (time - now, self._describe(item))
            for time, _seq, item in sorted(env._queue, key=lambda e: e[:2])
        )
        eib = self.eib
        eib_state = (
            tuple(eib._fast_occ),
            tuple(eib._fast_nact),
            eib._fast_out,
            eib._fast_in,
            tuple(
                (self._describe(actor), src, dst)
                for actor, src, dst, _leg in eib._waiters
            ),
        )
        banks = tuple(
            (
                bank.name,
                bank._idle,
                bank._prev_requester,
                bank._prev_direction,
                tuple(bank._recent),
                None
                if bank._fast_current is None
                else self._describe(bank._fast_current),
                tuple(self._describe(r) for r in bank._pending),
            )
            for bank in self.banks
        )
        mfc_states = []
        for mfc in self.mfcs:
            if mfc._order_waiters or mfc._parked:
                raise FastForwardDisabled("ordering/parked commands present")
            outstanding = mfc._outstanding
            for tag, count in outstanding.items():
                if count and tag not in (0, 1):
                    raise FastForwardDisabled(f"unexpected tag group {tag}")
            slots = mfc._fast_slots
            mfc_states.append(
                (
                    mfc.node,
                    slots.count,
                    tuple(self._describe(w) for w in slots.queue),
                    outstanding[0],
                    outstanding[1],
                    max(mfc._memory_path_free_at - now, 0),
                    tuple(
                        (self._describe(w), tags)
                        for w, tags in mfc._tag_waiters
                    ),
                )
            )
        kernels = tuple(self._describe(k) for k in self.kernels)
        return (heap, eib_state, banks, tuple(mfc_states), kernels)

    # -- counters --------------------------------------------------------------

    def _counters(self) -> tuple:
        # A kernel still in its warm-up phase has no _issued yet; it
        # reads as 0 progress, which _margin turns into a refusal.
        vals: list[int] = [getattr(k, "_issued", 0) for k in self.kernels]
        # _since_sync advances linearly between recurrences: +d per
        # period on a sync-free kernel, +0 on a synced one (there it is
        # also in the fingerprint, so recurrence pins its value).
        vals += (getattr(k, "_since_sync", 0) for k in self.kernels)
        for mfc in self.mfcs:
            vals += (
                mfc._total_enqueued,
                mfc._total_completed,
                mfc._tag_enqueued[0],
                mfc._tag_enqueued[1],
                mfc._tag_completed[0],
                mfc._tag_completed[1],
                mfc.commands_completed,
                mfc.bytes_transferred,
            )
        eib = self.eib
        vals += (eib.grants, eib.conflicts, eib.wait_cycles, eib.bytes_moved)
        for bank in self.banks:
            vals += (bank.bytes_served, bank.commands_served)
        calls = self.memory._placement_calls
        vals += (calls.get(r, 0) for r in self._requesters)
        return tuple(vals)

    def _apply_counters(self, vals: tuple) -> None:
        it = iter(vals)
        for k in self.kernels:
            k._issued = next(it)
        for k in self.kernels:
            k._since_sync = next(it)
        for mfc in self.mfcs:
            mfc._total_enqueued = next(it)
            mfc._total_completed = next(it)
            mfc._tag_enqueued[0] = next(it)
            mfc._tag_enqueued[1] = next(it)
            mfc._tag_completed[0] = next(it)
            mfc._tag_completed[1] = next(it)
            mfc.commands_completed = next(it)
            mfc.bytes_transferred = next(it)
        eib = self.eib
        eib.grants = next(it)
        eib.conflicts = next(it)
        eib.wait_cycles = next(it)
        eib.bytes_moved = next(it)
        for bank in self.banks:
            bank.bytes_served = next(it)
            bank.commands_served = next(it)
        calls = self.memory._placement_calls
        for r in self._requesters:
            calls[r] = next(it)

    # -- margins ---------------------------------------------------------------

    def _margin(self, deltas: tuple) -> int:
        """Most periods that can be warped without any kernel crossing
        a control-flow boundary (see module docstring), or 0."""
        margin: int | None = None
        for index, kernel in enumerate(self.kernels):
            d = deltas[index]
            if kernel.finished:
                if d:
                    return 0
                continue
            if d <= 0:
                # Unfinished but not progressing per period: its wakeup
                # is aperiodic relative to this anchor — refuse.
                return 0
            issued = kernel._issued
            n = kernel._n
            if kernel.workload.mode == "elem":
                room = (n - 1 - issued) // d
            else:
                room = (n - issued - kernel._batch - 1) // d
            if room <= 0:
                return 0
            margin = room if margin is None else min(margin, room)
        return 0 if margin is None else margin

    # -- placement accumulators -----------------------------------------------

    def _acc_snapshot(self) -> tuple:
        accs = self.memory._placement_accumulator
        fraction = self.memory._placement_fraction
        start = 1.0 - fraction
        return tuple(accs.get(r, start) for r in self._requesters)

    @staticmethod
    def _roll(acc: float, steps: int, fraction: float) -> tuple[float, int]:
        """Replay ``steps`` iterations of assign_bank's accumulator
        update — the identical float operations, so the end value is
        bit-exact — returning (end value, decision bit pattern)."""
        pattern = 0
        for _ in range(steps):
            acc = acc + fraction
            if acc >= 1.0 - 1e-12:
                acc -= 1.0
                pattern = (pattern << 1) | 1
            else:
                pattern <<= 1
        return acc, pattern

    def _roll_accumulators(
        self, n: int, prev_accs: tuple, accs: tuple, deltas: tuple
    ) -> tuple[int, list[float]]:
        """Verify and advance the placement accumulators across up to
        ``n`` periods.  Returns (periods provably identical, the rolled
        accumulator values at that horizon)."""
        fraction = self.memory._placement_fraction
        base = (
            2 * len(self.kernels) + 8 * len(self.mfcs) + 4 + 2 * len(self.banks)
        )
        steps = deltas[base:]
        # The observed period's decision pattern per requester, replayed
        # from the previous snapshot; landing exactly on the current
        # value cross-checks the per-requester call counting.
        patterns: list[int] = []
        for prev, cur, k in zip(prev_accs, accs, steps):
            if k < 0:
                raise FastForwardDisabled("placement call count went backward")
            end, pattern = self._roll(prev, k, fraction)
            if end != cur:
                raise FastForwardDisabled("accumulator replay mismatch")
            patterns.append(pattern)
        rolled = list(accs)
        roll = self._roll
        for j in range(n):
            nxt = []
            for i, k in enumerate(steps):
                end, pattern = roll(rolled[i], k, fraction)
                if pattern != patterns[i]:
                    # Ulp drift finally moved a decision across the
                    # epsilon: the regime ends here.  Warp only the
                    # fully-verified periods.
                    return j, rolled
                nxt.append(end)
            rolled = nxt
        return n, rolled

    # -- the warp --------------------------------------------------------------

    def _apply(
        self,
        n: int,
        period: int,
        counters: tuple,
        deltas: tuple,
        pops_per_period: int,
        rolled: list[float],
    ) -> None:
        env = self.env
        shift = n * period
        before = env.now
        env.warp(shift)
        # Absolute-time stamps carried by model state move with the
        # clock.  A pacer already in the past stays stale (only
        # ``free_at > now`` is ever read).
        for mfc in self.mfcs:
            if mfc._memory_path_free_at > before:
                mfc._memory_path_free_at += shift
        for actor, _src, _dst, _leg in self.eib._waiters:
            actor._eib_wait_started += shift
        for _time, _seq, item in env._queue:
            cont = getattr(item, "_run_callbacks", None)
            if getattr(cont, "__name__", None) == "_eib_granted":
                item._eib_wait_started += shift
        self._apply_counters(
            tuple(c + n * d for c, d in zip(counters, deltas))
        )
        accs = self.memory._placement_accumulator
        base = (
            2 * len(self.kernels) + 8 * len(self.mfcs) + 4 + 2 * len(self.banks)
        )
        for r, value, k in zip(self._requesters, rolled, deltas[base:]):
            if k:
                accs[r] = value
        self.windows_warped += 1
        self.cycles_warped += shift
        self.events_elided += n * pops_per_period

    # -- reporting -------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "windows_warped": self.windows_warped,
            "cycles_warped": self.cycles_warped,
            "events_elided": self.events_elided,
            "captures": self.captures,
        }
