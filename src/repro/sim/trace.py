"""Structured tracing for the DES kernel and the hardware models.

The simulator's explanatory power comes from chip mechanisms (ring
conflicts, MFC queue saturation, bank turnarounds), but scalar counters
cannot show *when* or *between whom* those mechanisms fired.  This module
adds a first-class trace stream:

* typed records (process resume/terminate, EIB grant/wait/release,
  MFC enqueue/issue/complete, memory bank activate/turnaround);
* a :class:`TraceRecorder` — a bounded ring buffer attached to an
  :class:`~repro.sim.core.Environment`;
* a zero-overhead :data:`NULL_TRACE` default (models guard every emit
  with ``if trace.enabled``, so a run without tracing pays one attribute
  load per potential record);
* :class:`TraceSummary` — counters, per-ring and per-flow statistics and
  bytes-landed-per-interval flow timelines, recomputed purely from the
  record stream (the analysis layer consumes this for its saturation
  claims, and tests assert it reproduces the live counters exactly);
* a Chrome trace-event JSON exporter (loadable in Perfetto or
  ``chrome://tracing``) whose events carry the full record payload, so a
  trace file round-trips back into records (``records_from_chrome``).

Every record carries ``ts`` in integer CPU cycles, the simulator's time
unit; the exporter converts to microseconds when given a clock rate.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass, fields
from typing import Any
from collections.abc import Iterable
#: Default ring-buffer capacity (records). ~100 B/record -> ~100 MB max.
DEFAULT_CAPACITY = 1_000_000


# ---------------------------------------------------------------------------
# Record types
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ProcessResume:
    """A process generator was resumed (sent a value or thrown into)."""

    KIND = "process.resume"
    ts: int
    proc_id: int
    name: str


@dataclass(frozen=True)
class ProcessTerminate:
    """A process generator returned (ok) or raised (not ok)."""

    KIND = "process.terminate"
    ts: int
    proc_id: int
    name: str
    ok: bool


@dataclass(frozen=True)
class EibGrant:
    """The EIB arbiter committed a path (ring + span set + both ports).

    ``immediate`` is False when the requester sat in the arbiter's wait
    queue first — the count of non-immediate grants is the live
    ``Eib.conflicts`` counter.
    """

    KIND = "eib.grant"
    ts: int
    src: str
    dst: str
    ring: str
    spans: tuple[int, ...]
    immediate: bool


@dataclass(frozen=True)
class EibWait:
    """A requester left the arbiter wait queue after ``cycles`` cycles
    (``ts`` is the moment the wait *ended*)."""

    KIND = "eib.wait"
    ts: int
    src: str
    dst: str
    cycles: int


@dataclass(frozen=True)
class EibRelease:
    """A granted path was released after moving ``nbytes`` (one grant
    quantum or less).  ``start`` is the matching grant's commit time, so
    (start, ts) is the busy interval of the ring slot."""

    KIND = "eib.release"
    ts: int
    src: str
    dst: str
    ring: str
    nbytes: int
    start: int


@dataclass(frozen=True)
class EibTransfer:
    """A whole ``Eib.transfer`` call (possibly many grants) finished;
    the sum of these ``nbytes`` is the live ``Eib.bytes_moved``."""

    KIND = "eib.transfer"
    ts: int
    src: str
    dst: str
    nbytes: int


@dataclass(frozen=True)
class MfcEnqueue:
    """A DMA command occupied an MFC queue slot."""

    KIND = "mfc.enqueue"
    ts: int
    node: str
    cmd_id: int
    tag: int
    nbytes: int
    is_list: bool
    queue_depth: int


@dataclass(frozen=True)
class MfcIssue:
    """The MFC started executing a command (fence/barrier satisfied)."""

    KIND = "mfc.issue"
    ts: int
    node: str
    cmd_id: int
    tag: int
    nbytes: int


@dataclass(frozen=True)
class MfcComplete:
    """A command completed and freed its queue slot."""

    KIND = "mfc.complete"
    ts: int
    node: str
    cmd_id: int
    tag: int
    nbytes: int
    enqueued_at: int
    issued_at: int


@dataclass(frozen=True)
class BankActivate:
    """A memory bank started serving a command.  ``overhead_cycles`` is
    the turnaround/switch cost added on top of ``service_cycles``."""

    KIND = "mem.activate"
    ts: int
    bank: str
    requester: str
    direction: str
    nbytes: int
    service_cycles: int
    overhead_cycles: int


@dataclass(frozen=True)
class BankTurnaround:
    """Bank dead time: same-requester turnaround or a requester switch."""

    KIND = "mem.turnaround"
    ts: int
    bank: str
    requester: str
    cycles: int
    reason: str


@dataclass(frozen=True)
class FaultInjected:
    """The fault engine fired at a model site (see
    :mod:`repro.sim.faults`).  ``fault`` is the spec kind (the field is
    not called ``kind`` because every exported record's args carry the
    record-type discriminator under that key); ``cycles`` is the latency
    added, 0 for drops/crashes/hangs whose cost shows up elsewhere."""

    KIND = "fault.inject"
    ts: int
    site: str
    fault: str
    node: str
    cycles: int


@dataclass(frozen=True)
class DmaHazard:
    """The DMA sanitizer flagged two concurrent commands touching
    overlapping bytes with no ordering edge (see
    :mod:`repro.sim.sanitizer`).  ``hazard`` is the race flavour
    (``write-write``/``write-read``/``read-write``); ``space`` names the
    address space (``ls:<node>`` or ``ea``); [``lo``, ``hi``) is the
    overlapping byte range."""

    KIND = "sanitizer.hazard"
    ts: int
    node: str
    space: str
    hazard: str
    first_cmd: int
    second_cmd: int
    first_tag: int
    second_tag: int
    lo: int
    hi: int


RECORD_TYPES = (
    ProcessResume,
    ProcessTerminate,
    FaultInjected,
    DmaHazard,
    EibGrant,
    EibWait,
    EibRelease,
    EibTransfer,
    MfcEnqueue,
    MfcIssue,
    MfcComplete,
    BankActivate,
    BankTurnaround,
)

_KIND_TO_TYPE = {record_type.KIND: record_type for record_type in RECORD_TYPES}


# ---------------------------------------------------------------------------
# Recorders
# ---------------------------------------------------------------------------

class NullTraceRecorder:
    """The default recorder: tracing disabled, every emit skipped.

    Models guard emits with ``if trace.enabled``, so the disabled cost is
    one attribute read and a branch per potential record.
    """

    enabled = False

    def emit(self, record) -> None:  # pragma: no cover - never called via guard
        pass

    @property
    def records(self) -> list:
        return []

    def __len__(self) -> int:
        return 0


#: Shared do-nothing recorder every Environment starts with.
NULL_TRACE = NullTraceRecorder()


class TraceRecorder:
    """A bounded ring buffer of trace records.

    When the buffer is full the *oldest* records are dropped (the tail of
    a run explains its steady state better than its warm-up); ``dropped``
    counts how many were lost.
    """

    enabled = True

    def __init__(self, capacity: int | None = DEFAULT_CAPACITY):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._records: deque = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, record) -> None:
        if self.capacity is not None and len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(record)

    @property
    def records(self) -> list:
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)

    def summary(self) -> TraceSummary:
        return TraceSummary(self.records)


# ---------------------------------------------------------------------------
# Summary / analysis API
# ---------------------------------------------------------------------------

class TraceSummary:
    """Statistics recomputed purely from a record stream.

    This is the API the analysis layer consumes: the same numbers the
    live counters report (``counters()`` reproduces ``Eib.grants``,
    ``conflicts``, ``wait_cycles`` and ``bytes_moved`` exactly for a
    completed run), plus the per-ring, per-flow, per-bank and per-MFC
    breakdowns the scalar counters cannot express.
    """

    def __init__(self, records: Iterable):
        self.records = list(records)

    @classmethod
    def from_recorder(cls, recorder: TraceRecorder) -> TraceSummary:
        return cls(recorder.records)

    def _of(self, record_type) -> list:
        return [r for r in self.records if isinstance(r, record_type)]

    @property
    def duration(self) -> int:
        """Span of the record stream in cycles (0 when empty)."""
        if not self.records:
            return 0
        begins = [r.ts for r in self.records]
        begins += [r.start for r in self._of(EibRelease)]
        begins += [r.enqueued_at for r in self._of(MfcComplete)]
        return max(r.ts for r in self.records) - min(begins)

    # -- EIB ------------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """The live ``Eib`` counters, rebuilt from the stream."""
        grants = self._of(EibGrant)
        return {
            "grants": len(grants),
            "conflicts": sum(1 for g in grants if not g.immediate),
            "wait_cycles": sum(w.cycles for w in self._of(EibWait)),
            "bytes_moved": sum(t.nbytes for t in self._of(EibTransfer)),
        }

    def per_ring(self) -> dict[str, dict[str, int]]:
        """Per-ring grants, conflicts, busy cycles and bytes."""
        rings: dict[str, dict[str, int]] = {}

        def entry(name: str) -> dict[str, int]:
            return rings.setdefault(
                name, {"grants": 0, "conflicts": 0, "busy_cycles": 0, "bytes": 0}
            )

        for grant in self._of(EibGrant):
            row = entry(grant.ring)
            row["grants"] += 1
            if not grant.immediate:
                row["conflicts"] += 1
        for release in self._of(EibRelease):
            row = entry(release.ring)
            row["busy_cycles"] += release.ts - release.start
            row["bytes"] += release.nbytes
        return rings

    def per_flow(self) -> dict[tuple[str, str], dict[str, int]]:
        """Per (src, dst) flow: bytes landed, grant count, wait cycles,
        first/last landing time."""
        flows: dict[tuple[str, str], dict[str, int]] = {}

        def entry(src: str, dst: str) -> dict[str, int]:
            return flows.setdefault(
                (src, dst),
                {
                    "bytes": 0,
                    "chunks": 0,
                    "grants": 0,
                    "wait_cycles": 0,
                    "first_ts": -1,
                    "last_ts": -1,
                },
            )

        for grant in self._of(EibGrant):
            entry(grant.src, grant.dst)["grants"] += 1
        for wait in self._of(EibWait):
            entry(wait.src, wait.dst)["wait_cycles"] += wait.cycles
        for release in self._of(EibRelease):
            row = entry(release.src, release.dst)
            row["bytes"] += release.nbytes
            row["chunks"] += 1
            if row["first_ts"] < 0:
                row["first_ts"] = release.ts
            row["last_ts"] = release.ts
        return flows

    def flow_timeline(
        self, interval: int
    ) -> dict[tuple[str, str], list[tuple[int, int]]]:
        """Bytes landed per ``interval``-cycle bucket per (src, dst) flow.

        Buckets are keyed by their start time; empty buckets between a
        flow's first and last landing are present with 0 bytes, so the
        series plots directly as a bandwidth timeline.
        """
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        landings: dict[tuple[str, str], dict[int, int]] = {}
        for release in self._of(EibRelease):
            bucket = (release.ts // interval) * interval
            flow = landings.setdefault((release.src, release.dst), {})
            flow[bucket] = flow.get(bucket, 0) + release.nbytes
        timelines: dict[tuple[str, str], list[tuple[int, int]]] = {}
        for flow_key, buckets in landings.items():
            lo, hi = min(buckets), max(buckets)
            timelines[flow_key] = [
                (bucket, buckets.get(bucket, 0))
                for bucket in range(lo, hi + interval, interval)
            ]
        return timelines

    # -- MFC ------------------------------------------------------------------

    def mfc_stats(self) -> dict[str, dict[str, int]]:
        """Per-node enqueue/complete counts, bytes and queue high-water."""
        nodes: dict[str, dict[str, int]] = {}

        def entry(node: str) -> dict[str, int]:
            return nodes.setdefault(
                node,
                {
                    "enqueued": 0,
                    "completed": 0,
                    "bytes": 0,
                    "max_queue_depth": 0,
                    "queue_cycles": 0,
                },
            )

        for enqueue in self._of(MfcEnqueue):
            row = entry(enqueue.node)
            row["enqueued"] += 1
            row["max_queue_depth"] = max(
                row["max_queue_depth"], enqueue.queue_depth
            )
        for complete in self._of(MfcComplete):
            row = entry(complete.node)
            row["completed"] += 1
            row["bytes"] += complete.nbytes
            row["queue_cycles"] += complete.ts - complete.enqueued_at
        return nodes

    # -- faults ---------------------------------------------------------------

    def fault_stats(self) -> dict[tuple[str, str], dict[str, int]]:
        """Injected faults per (site, kind): count and added cycles."""
        faults: dict[tuple[str, str], dict[str, int]] = {}
        for fault in self._of(FaultInjected):
            row = faults.setdefault(
                (fault.site, fault.fault), {"count": 0, "cycles": 0}
            )
            row["count"] += 1
            row["cycles"] += fault.cycles
        return faults

    # -- memory ---------------------------------------------------------------

    def bank_stats(self) -> dict[str, dict[str, int]]:
        """Per-bank commands, bytes, busy cycles and turnaround cycles."""
        banks: dict[str, dict[str, int]] = {}
        for activate in self._of(BankActivate):
            row = banks.setdefault(
                activate.bank,
                {"commands": 0, "bytes": 0, "busy_cycles": 0, "turnaround_cycles": 0},
            )
            row["commands"] += 1
            row["bytes"] += activate.nbytes
            row["busy_cycles"] += activate.service_cycles + activate.overhead_cycles
        for turnaround in self._of(BankTurnaround):
            row = banks.setdefault(
                turnaround.bank,
                {"commands": 0, "bytes": 0, "busy_cycles": 0, "turnaround_cycles": 0},
            )
            row["turnaround_cycles"] += turnaround.cycles
        return banks


# ---------------------------------------------------------------------------
# Chrome trace-event export / import
# ---------------------------------------------------------------------------

#: Stable pid assignment for the exported process rows.
_PIDS = {"EIB": 1, "MFC": 2, "Memory": 3, "Processes": 4, "Faults": 5,
         "Sanitizer": 6}

#: Records exported as async spans: type -> (pid name, start attr).
_SPAN_EXPORTS = {
    EibRelease: ("EIB", "start"),
    MfcComplete: ("MFC", "issued_at"),
}


def _record_args(record) -> dict[str, Any]:
    args = asdict(record)
    args["kind"] = record.KIND
    return args


def _tid(record) -> str:
    if isinstance(record, (EibGrant, EibRelease)):
        return record.ring
    if isinstance(record, EibWait):
        return "arbiter"
    if isinstance(record, EibTransfer):
        return f"{record.src}->{record.dst}"
    if isinstance(record, (MfcEnqueue, MfcIssue, MfcComplete)):
        return record.node
    if isinstance(record, (BankActivate, BankTurnaround)):
        return record.bank
    if isinstance(record, FaultInjected):
        return record.site
    if isinstance(record, DmaHazard):
        return record.node
    return "sched"


def _pid_name(record) -> str:
    if isinstance(record, (EibGrant, EibWait, EibRelease, EibTransfer)):
        return "EIB"
    if isinstance(record, (MfcEnqueue, MfcIssue, MfcComplete)):
        return "MFC"
    if isinstance(record, (BankActivate, BankTurnaround)):
        return "Memory"
    if isinstance(record, FaultInjected):
        return "Faults"
    if isinstance(record, DmaHazard):
        return "Sanitizer"
    return "Processes"


def to_chrome_trace(
    records: Iterable,
    cpu_hz: float | None = None,
    metadata: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Convert records to the Chrome trace-event JSON object format.

    Spans (EIB path occupancy, bank service, MFC command lifetime) become
    async begin/end pairs so concurrent spans on one row stay valid;
    everything else becomes an instant event.  Each record's full payload
    rides in the canonical event's ``args`` (with a ``kind`` key), so
    :func:`records_from_chrome` reconstructs the exact stream.

    ``cpu_hz`` converts timestamps to microseconds (the trace-event
    unit); without it timestamps stay in raw cycles, which Perfetto also
    loads fine.
    """
    scale = 1e6 / cpu_hz if cpu_hz else 1.0
    events: list[dict[str, Any]] = []
    for name, pid in _PIDS.items():
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    span_id = 0
    for record in records:
        pid = _PIDS[_pid_name(record)]
        tid = _tid(record)
        args = _record_args(record)
        span = _SPAN_EXPORTS.get(type(record))
        if span is not None:
            _pid_label, start_attr = span
            span_id += 1
            start = getattr(record, start_attr)
            name = (
                f"{record.src}->{record.dst}"
                if isinstance(record, EibRelease)
                else f"cmd {record.cmd_id} tag {record.tag}"
            )
            common = {"cat": record.KIND, "name": name, "pid": pid,
                      "id": span_id}
            events.append(
                {**common, "ph": "b", "ts": start * scale, "tid": tid,
                 "args": args}
            )
            events.append(
                {**common, "ph": "e", "ts": record.ts * scale, "tid": tid}
            )
        elif isinstance(record, BankActivate):
            # Bank service is strictly serial per bank: a synchronous
            # complete ("X") event renders as a solid track.
            duration = record.service_cycles + record.overhead_cycles
            events.append(
                {
                    "ph": "X",
                    "cat": record.KIND,
                    "name": f"{record.requester} {record.direction}",
                    "pid": pid,
                    "tid": tid,
                    "ts": record.ts * scale,
                    "dur": duration * scale,
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "cat": record.KIND,
                    "name": record.KIND,
                    "pid": pid,
                    "tid": tid,
                    "ts": record.ts * scale,
                    "args": args,
                }
            )
    trace: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.sim.trace", "cpu_hz": cpu_hz},
    }
    if metadata:
        trace["otherData"].update(metadata)
    return trace


def records_from_chrome(trace: dict[str, Any]) -> list:
    """Rebuild the record stream from a Chrome trace produced by
    :func:`to_chrome_trace` (inverse up to record order, which is kept)."""
    if "traceEvents" not in trace:
        raise ValueError(
            "not a Chrome trace-event file: no 'traceEvents' key"
        )
    records: list = []
    for event in trace["traceEvents"]:
        args = event.get("args") or {}
        kind = args.get("kind")
        if kind is None:
            continue
        record_type = _KIND_TO_TYPE.get(kind)
        if record_type is None:
            raise ValueError(f"unknown trace record kind {kind!r}")
        payload = {
            f.name: args[f.name] for f in fields(record_type)
        }
        if "spans" in payload:
            payload["spans"] = tuple(payload["spans"])
        records.append(record_type(**payload))
    return records


def write_chrome_trace(
    path: str,
    records: Iterable,
    cpu_hz: float | None = None,
    metadata: dict[str, Any] | None = None,
) -> None:
    """Serialise records to a Chrome trace-event JSON file."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(records, cpu_hz, metadata), handle)


def read_chrome_trace(path: str) -> tuple[list, dict[str, Any]]:
    """Load a trace file; returns (records, otherData metadata)."""
    with open(path) as handle:
        trace = json.load(handle)
    return records_from_chrome(trace), trace.get("otherData", {})
