"""Shared resources for the DES kernel: Resource, Store, Container.

All three follow the same protocol: the acquiring methods return an
:class:`~repro.sim.core.Event` that a process yields; the event succeeds
when the resource is granted.  Grant order is strictly FIFO, which keeps
hardware-model arbitration deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.core import Environment, Event, SimulationError


class Request(Event):
    """A pending or granted claim on a :class:`Resource`."""

    def __init__(self, resource: Resource):
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """A counted resource with ``capacity`` slots and a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        req = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed(req)
        else:
            self.queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        if request not in self.users:
            raise SimulationError("releasing a request that is not held")
        self.users.remove(request)
        if self.queue:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed(nxt)

    def cancel(self, request: Request) -> None:
        """Withdraw a still-queued request (no-op if already granted)."""
        if request in self.queue:
            self.queue.remove(request)


class Store:
    """An unordered-capacity FIFO buffer of Python objects."""

    def __init__(self, env: Environment, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[Event] = deque()
        self._put_payload: dict = {}

    def put(self, item: Any) -> Event:
        """Insert ``item``; fires when there is room."""
        event = Event(self.env)
        if self.capacity is None or len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
            self._serve_getters()
        else:
            self._put_payload[id(event)] = item
            self._putters.append(event)
        return event

    def get(self) -> Event:
        """Remove the oldest item; the event's value is the item."""
        event = Event(self.env)
        if self.items:
            event.succeed(self.items.popleft())
            self._serve_putters()
        else:
            self._getters.append(event)
        return event

    def _serve_getters(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            getter.succeed(self.items.popleft())
            self._serve_putters()

    def _serve_putters(self) -> None:
        while self._putters and (
            self.capacity is None or len(self.items) < self.capacity
        ):
            putter = self._putters.popleft()
            self.items.append(self._put_payload.pop(id(putter)))
            putter.succeed()
            self._serve_getters()

    def __len__(self) -> int:
        return len(self.items)


class Container:
    """A continuous quantity (e.g. credits) with blocking get/put."""

    def __init__(self, env: Environment, capacity: float, init: float = 0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self.level = init
        self._getters: deque = deque()  # (event, amount)
        self._putters: deque = deque()

    def put(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError(f"put amount must be positive, got {amount}")
        if amount > self.capacity:
            # Could never fit even into an empty container: queuing it
            # would deadlock the putter silently.
            raise ValueError(
                f"put of {amount} exceeds capacity {self.capacity}"
            )
        event = Event(self.env)
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError(f"get amount must be positive, got {amount}")
        if amount > self.capacity:
            # Could never be satisfied even by a full container: queuing
            # it would deadlock the getter silently.
            raise ValueError(
                f"get of {amount} exceeds capacity {self.capacity}"
            )
        event = Event(self.env)
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                event, amount = self._putters[0]
                if self.level + amount <= self.capacity:
                    self._putters.popleft()
                    self.level += amount
                    event.succeed()
                    progress = True
            if self._getters:
                event, amount = self._getters[0]
                if amount <= self.level:
                    self._getters.popleft()
                    self.level -= amount
                    event.succeed()
                    progress = True
