"""Deterministic, seed-driven fault injection for the chip models.

The paper's guidelines assume a chip where every DMA completes and every
SPE answers.  A production runtime must also behave well when they
don't, so faults are a first-class mechanism here, not silent hangs: a
:class:`FaultEngine` attaches to an
:class:`~repro.sim.core.Environment` (exactly like the trace recorder —
the shared do-nothing :data:`NULL_FAULTS` by default) and the hardware
models consult it at the points where real Cell hardware misbehaves:

* **MFC** — command stalls (a queued command takes an extra service
  delay) and command drops (the command parks until the SPU program
  re-drives its tag group, the model of a lost bus transaction);
* **EIB** — ring-segment degradation / grant starvation (a committed
  grant pays extra dead cycles);
* **memory banks** — ECC-retry latency spikes (scrub-and-retry added to
  a command's service time);
* **SPE contexts** — crash (the program dies with
  ``SpeCrashError``) or hang (the program blocks forever) after a
  seed-chosen number of operations.

Every decision comes from one ``random.Random(seed)`` stream, and the
simulator itself is deterministic, so a given ``(spec, seed)`` pair
reproduces the same faults at the same cycles run after run.  Models
guard every consultation with a cached ``faults.enabled`` flag, so a run
without an engine pays one attribute load and a branch.

The fault spec grammar is ``kind:value`` pairs joined by commas::

    spe_crash:1,dma_drop:0.02,ecc_retry:0.01

``spe_crash`` / ``spe_hang`` take integer victim counts; the other kinds
take per-event probabilities in ``[0, 1]``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sim.trace import FaultInjected

if TYPE_CHECKING:
    from repro.sim.core import Environment

#: Spec kinds taking an integer victim count.
COUNT_KINDS = ("spe_crash", "spe_hang")

#: Spec kinds taking a per-event probability.
RATE_KINDS = ("dma_stall", "dma_drop", "eib_degrade", "ecc_retry")

FAULT_KINDS = COUNT_KINDS + RATE_KINDS

#: Default magnitudes (cycles) of the latency-spike faults.
DEFAULT_STALL_CYCLES = 2_000
DEFAULT_DEGRADE_CYCLES = 500
DEFAULT_ECC_RETRY_CYCLES = 1_200

#: A crashed/hung SPE program dies after this many operations (yields),
#: the exact point drawn from the seed stream per victim.
SPE_FAULT_OPS_RANGE = (3, 40)


class FaultSpecError(ValueError):
    """A fault spec string that does not parse or is out of range."""


def parse_fault_spec(spec: str) -> dict[str, float]:
    """Parse ``kind:value`` pairs (comma separated) into a dict.

    >>> parse_fault_spec("spe_crash:1,dma_drop:0.02")
    {'spe_crash': 1, 'dma_drop': 0.02}
    """
    faults: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" not in part:
            raise FaultSpecError(
                f"fault {part!r} is not of the form kind:value"
            )
        kind, _, raw = part.partition(":")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r}; known: {', '.join(FAULT_KINDS)}"
            )
        try:
            value = float(raw)
        except ValueError:
            raise FaultSpecError(
                f"fault {kind!r} has non-numeric value {raw!r}"
            ) from None
        if kind in COUNT_KINDS:
            if value != int(value) or value < 0:
                raise FaultSpecError(
                    f"fault {kind!r} takes a non-negative integer count, got {raw}"
                )
            faults[kind] = int(value)
        else:
            if not 0.0 <= value <= 1.0:
                raise FaultSpecError(
                    f"fault {kind!r} takes a probability in [0, 1], got {raw}"
                )
            faults[kind] = value
    if not faults:
        raise FaultSpecError(f"empty fault spec {spec!r}")
    return faults


@dataclass(frozen=True)
class SpeFaultPlan:
    """A context's fate: crash or hang after ``after_ops`` operations."""

    kind: str  # "crash" | "hang"
    after_ops: int


class NullFaultEngine:
    """The default engine: fault injection disabled, every probe skipped.

    Models guard probes with ``if faults.enabled``, so the disabled cost
    is one attribute read and a branch per potential fault site.
    """

    enabled = False
    injected = 0

    def counts(self) -> dict[str, int]:
        return {}


#: Shared do-nothing engine every Environment starts with.
NULL_FAULTS = NullFaultEngine()


class FaultEngine:
    """Seed-driven fault injector consulted by the hardware models.

    ``spec`` is a parsed dict (see :func:`parse_fault_spec`) or a spec
    string.  Magnitudes of the latency faults are per-engine knobs so
    experiments can sweep severity without touching the models.
    """

    enabled = True

    def __init__(
        self,
        spec: str | dict[str, float],
        seed: int = 0,
        stall_cycles: int = DEFAULT_STALL_CYCLES,
        degrade_cycles: int = DEFAULT_DEGRADE_CYCLES,
        ecc_retry_cycles: int = DEFAULT_ECC_RETRY_CYCLES,
    ):
        if isinstance(spec, str):
            spec = parse_fault_spec(spec)
        unknown = set(spec) - set(FAULT_KINDS)
        if unknown:
            raise FaultSpecError(f"unknown fault kinds {sorted(unknown)}")
        self.spec = dict(spec)
        self.seed = seed
        self.stall_cycles = stall_cycles
        self.degrade_cycles = degrade_cycles
        self.ecc_retry_cycles = ecc_retry_cycles
        self._rng = random.Random(seed)
        self._p_stall = float(spec.get("dma_stall", 0.0))
        self._p_drop = float(spec.get("dma_drop", 0.0))
        self._p_degrade = float(spec.get("eib_degrade", 0.0))
        self._p_ecc = float(spec.get("ecc_retry", 0.0))
        self._crash_budget = int(spec.get("spe_crash", 0))
        self._hang_budget = int(spec.get("spe_hang", 0))
        self.injected = 0
        self._counts: dict[str, int] = {}
        self._env = None

    def bind(self, env: Environment) -> None:
        """Called by the Environment that adopts this engine (needed to
        stamp trace records with simulation time)."""
        self._env = env

    # -- bookkeeping -----------------------------------------------------------

    def _record(self, site: str, kind: str, node: str, cycles: int) -> None:
        self.injected += 1
        self._counts[kind] = self._counts.get(kind, 0) + 1
        env = self._env
        if env is not None and env.trace.enabled:
            env.trace.emit(
                FaultInjected(
                    ts=env.now, site=site, fault=kind, node=node, cycles=cycles
                )
            )

    def counts(self) -> dict[str, int]:
        """Injected-fault counts by kind (for stats and reports)."""
        return dict(self._counts)

    # -- MFC -------------------------------------------------------------------

    def mfc_stall_cycles(self, node: str) -> int:
        """Extra service cycles for this command (0 = no fault)."""
        if self._p_stall and self._rng.random() < self._p_stall:
            self._record("mfc", "dma_stall", node, self.stall_cycles)
            return self.stall_cycles
        return 0

    def mfc_dropped(self, node: str) -> bool:
        """True when this command is lost and must be re-driven."""
        if self._p_drop and self._rng.random() < self._p_drop:
            self._record("mfc", "dma_drop", node, 0)
            return True
        return False

    # -- EIB -------------------------------------------------------------------

    def eib_penalty_cycles(self, src: str, dst: str) -> int:
        """Extra dead cycles on a committed grant (segment degradation
        or starvation by a misbehaving requester)."""
        if self._p_degrade and self._rng.random() < self._p_degrade:
            self._record("eib", "eib_degrade", f"{src}->{dst}", self.degrade_cycles)
            return self.degrade_cycles
        return 0

    # -- memory ----------------------------------------------------------------

    def bank_retry_cycles(self, bank: str) -> int:
        """Extra service cycles from an ECC scrub-and-retry."""
        if self._p_ecc and self._rng.random() < self._p_ecc:
            self._record("memory", "ecc_retry", bank, self.ecc_retry_cycles)
            return self.ecc_retry_cycles
        return 0

    # -- SPE contexts ----------------------------------------------------------

    def spe_plan(self, logical_index: int) -> SpeFaultPlan | None:
        """The fate of a newly loaded SPE program, or None.

        Victims are the first contexts loaded (deterministic); the
        *moment* each dies is drawn from the seed stream, so different
        seeds fail at different points of the run.
        """
        if self._crash_budget > 0:
            self._crash_budget -= 1
            after = self._rng.randint(*SPE_FAULT_OPS_RANGE)
            return SpeFaultPlan(kind="crash", after_ops=after)
        if self._hang_budget > 0:
            self._hang_budget -= 1
            after = self._rng.randint(*SPE_FAULT_OPS_RANGE)
            return SpeFaultPlan(kind="hang", after_ops=after)
        return None

    def record_spe_fault(self, kind: str, node: str) -> None:
        """Called by the context wrapper at the moment the fault fires."""
        self._record("spe", f"spe_{kind}", node, 0)

    def describe(self) -> str:
        pairs = ",".join(f"{kind}:{value}" for kind, value in sorted(self.spec.items()))
        return f"FaultEngine({pairs}, seed={self.seed})"

    __repr__ = describe


@dataclass
class FaultReport:
    """Summary of what an engine injected over one run."""

    spec: dict[str, float] = field(default_factory=dict)
    seed: int = 0
    injected: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_engine(cls, engine: FaultEngine | NullFaultEngine) -> FaultReport:
        if not engine.enabled:
            return cls()
        return cls(
            spec=dict(engine.spec),
            seed=engine.seed,
            injected=engine.injected,
            by_kind=engine.counts(),
        )
