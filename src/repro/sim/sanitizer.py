"""Runtime DMA hazard sanitizer: happens-before over MFC tag groups.

The static rules in :mod:`repro.analysis.lint` catch what is decidable
from source; this module catches what is not — whether two *actual*
in-flight commands touched overlapping bytes with no ordering between
them.  It is the model's equivalent of a thread sanitizer, specialised to
the MFC's memory model:

* commands in one MFC queue complete **out of order**, even within a tag
  group — a tag group is a *completion-detection* domain, not an
  ordering domain;
* the only intra-queue ordering edges are a **fenced** command (ordered
  after earlier commands of its tag group) and a **barriered** command
  (ordered after every earlier command in the queue);
* the only cross-command happens-before the SPU can construct is
  **tag-group completion**: ``wait_tags`` blocks until a group is quiet,
  so a command enqueued afterwards cannot overlap those transfers.

That yields a simple and exact check: when command *B* is enqueued while
command *A* is still in flight on the same MFC, no completion edge can
exist between them; if *B* carries no fence/barrier covering *A* and the
two touch overlapping local-store or effective-address ranges with at
least one write, the pair is a data race on real hardware.  (Commands on
*different* MFCs are never checked: ordering between SPEs flows through
mailboxes and signals the MFC cannot see, so flagging cross-SPE overlap
would be noise by construction.)

The sanitizer is a pure observer: it never yields, never schedules, and
never touches simulation state, so enabling it cannot change a single
event — ``--sanitize`` off or on, the trace stream is byte-identical.
Hazards are recorded as :class:`~repro.sim.trace.DmaHazard` findings on
the sanitizer itself and, when a trace recorder is attached, emitted
into the trace stream too.

Attach it like the trace recorder and fault engine::

    from repro.sim.sanitizer import DmaSanitizer
    sanitizer = DmaSanitizer()
    chip = CellChip(sanitizer=sanitizer)
    ...
    for hazard in sanitizer.findings: print(hazard)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.trace import DmaHazard

if TYPE_CHECKING:
    from repro.cell.dma import DmaCommand, DmaList
    from repro.cell.local_store import Allocation
    from repro.sim.core import Environment

#: Address space name for main memory (EA side of a transfer).
EA_SPACE = "ea"

#: Default cap on retained findings (a racy loop floods otherwise).
DEFAULT_CAPACITY = 10_000


def ls_space(node: str) -> str:
    """Address-space name of a local store."""
    return f"ls:{node}"


@dataclass(frozen=True)
class Access:
    """One byte range a command touches: [lo, hi) in ``space``."""

    space: str
    lo: int
    hi: int
    writes: bool


def command_accesses(node: str, command: DmaCommand | DmaList) -> tuple[Access, ...]:
    """The byte ranges a command touches, on both sides of the transfer.

    A GET writes the issuing SPE's local store and reads the remote side;
    a PUT reads the local store and writes the remote side.  A DMA list
    is summarised by its bounding ranges (local cursor span, min..max of
    the element offsets) — coarser than per-element, never misses an
    overlap that exists.

    Duck-typed on the :mod:`repro.cell.dma` command shapes (a DMA list
    has ``elements``) so the sim layer keeps zero import-time
    dependencies on the hardware models.
    """
    is_get = command.direction.name == "GET"
    elements = getattr(command, "elements", None)
    local_lo = command.local_offset
    local_hi = local_lo + command.size
    if elements is not None:
        remote_lo = min(e.remote_offset for e in elements)
        remote_hi = max(e.remote_offset + e.size for e in elements)
    else:
        remote_lo = command.remote_offset
        remote_hi = remote_lo + command.size
    remote_space = (
        EA_SPACE
        if command.target.name == "MAIN_MEMORY"
        else ls_space(command.remote_node or "?")
    )
    return (
        Access(space=ls_space(node), lo=local_lo, hi=local_hi, writes=is_get),
        Access(space=remote_space, lo=remote_lo, hi=remote_hi,
               writes=not is_get),
    )


def _ordered_after(
    earlier: DmaCommand | DmaList, later: DmaCommand | DmaList
) -> bool:
    """True when the MFC guarantees ``later`` starts after ``earlier``
    completes: a barrier covers the whole queue, a fence its tag group."""
    if getattr(later, "barrier", False):
        return True
    return bool(getattr(later, "fence", False)) and later.tag == earlier.tag


class NullSanitizer:
    """The default sanitizer: disabled, every hook skipped.

    Models guard hooks with ``if sanitizer.enabled`` (cached, like trace
    and faults), so the disabled cost is one attribute load and a branch
    per command.
    """

    enabled = False

    def bind(self, env: Environment) -> None:  # pragma: no cover - no-op
        pass

    def command_enqueued(self, node: str, command) -> None:  # pragma: no cover
        pass

    def command_completed(self, node: str, command) -> None:  # pragma: no cover
        pass

    def note_allocation(self, node: str | None, allocation) -> None:  # pragma: no cover
        pass

    @property
    def findings(self) -> list[DmaHazard]:
        return []

    def __len__(self) -> int:
        return 0


#: Shared do-nothing sanitizer every Environment starts with.
NULL_SANITIZER = NullSanitizer()


class DmaSanitizer:
    """Tracks in-flight MFC commands and flags unordered overlap.

    One instance watches every MFC on a chip (hooks carry the node).
    Purely observational — see the module docstring for the memory model
    and why enabling it cannot perturb the simulation.
    """

    enabled = True

    def __init__(self, capacity: int | None = DEFAULT_CAPACITY):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.findings: list[DmaHazard] = []
        self.dropped = 0
        self.commands_checked = 0
        self._env: Environment | None = None
        # node -> {command_id: (command, accesses)}
        self._inflight: dict[str, dict[int, tuple[object, tuple[Access, ...]]]] = {}
        # (node, allocation name) -> Allocation, for readable reports.
        self._allocations: dict[str, list["Allocation"]] = {}

    def bind(self, env: Environment) -> None:
        """Called by the Environment so hazards carry timestamps and can
        ride the trace stream."""
        self._env = env

    # -- model hooks ----------------------------------------------------------

    def command_enqueued(self, node: str, command) -> None:
        """A command occupied an MFC queue slot: race-check it against
        every command still in flight on this MFC, then track it."""
        self.commands_checked += 1
        accesses = command_accesses(node, command)
        inflight = self._inflight.setdefault(node, {})
        for earlier, earlier_accesses in inflight.values():
            if _ordered_after(earlier, command):
                continue
            for before in earlier_accesses:
                for after in accesses:
                    if (
                        before.space == after.space
                        and before.lo < after.hi
                        and after.lo < before.hi
                        and (before.writes or after.writes)
                    ):
                        self._record(node, earlier, command, before, after)
        inflight[command.command_id] = (command, accesses)

    def command_completed(self, node: str, command) -> None:
        inflight = self._inflight.get(node)
        if inflight is not None:
            inflight.pop(command.command_id, None)

    def note_allocation(self, node: str | None, allocation: Allocation) -> None:
        """Local stores report named allocations so hazard reports can
        say which buffer a range belongs to."""
        if node is None:
            return
        self._allocations.setdefault(ls_space(node), []).append(allocation)

    # -- recording ------------------------------------------------------------

    def _record(
        self,
        node: str,
        earlier,
        later,
        before: Access,
        after: Access,
    ) -> None:
        kind = (
            "write-write" if before.writes and after.writes
            else "write-read" if before.writes
            else "read-write"
        )
        hazard = DmaHazard(
            ts=self._env.now if self._env is not None else 0,
            node=node,
            space=before.space,
            hazard=kind,
            first_cmd=earlier.command_id,
            second_cmd=later.command_id,
            first_tag=earlier.tag,
            second_tag=later.tag,
            lo=max(before.lo, after.lo),
            hi=min(before.hi, after.hi),
        )
        if self.capacity is not None and len(self.findings) >= self.capacity:
            self.dropped += 1
        else:
            self.findings.append(hazard)
        if self._env is not None and self._env.trace.enabled:
            self._env.trace.emit(hazard)

    # -- reporting ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.findings)

    def inflight(self, node: str | None = None) -> int:
        """Commands currently tracked (all nodes, or one)."""
        if node is not None:
            return len(self._inflight.get(node, ()))
        return sum(len(commands) for commands in self._inflight.values())

    def _describe_range(self, space: str, lo: int, hi: int) -> str:
        base = f"[{lo:#x}, {hi:#x})"
        names = [
            allocation.name
            for allocation in self._allocations.get(space, ())
            if allocation.offset < hi and lo < allocation.end
        ]
        if names:
            return f"{base} ({', '.join(names)})"
        return base

    def describe(self, hazard: DmaHazard) -> str:
        """One human-readable line for a hazard finding."""
        return (
            f"t={hazard.ts} {hazard.node}: {hazard.hazard} race on "
            f"{hazard.space} {self._describe_range(hazard.space, hazard.lo, hazard.hi)}: "
            f"cmd {hazard.first_cmd} (tag {hazard.first_tag}) vs "
            f"cmd {hazard.second_cmd} (tag {hazard.second_tag}) with no "
            f"fence/barrier/tag-wait between them"
        )

    def report(self, limit: int = 20) -> str:
        """Multi-line summary of the findings (first ``limit`` shown)."""
        if not self.findings:
            return (
                f"dma-sanitizer: no hazards in {self.commands_checked} "
                f"commands"
            )
        lines = [
            f"dma-sanitizer: {len(self.findings)} hazard(s) in "
            f"{self.commands_checked} commands"
            + (f" ({self.dropped} dropped)" if self.dropped else "")
        ]
        lines += [f"  {self.describe(h)}" for h in self.findings[:limit]]
        if len(self.findings) > limit:
            lines.append(f"  ... and {len(self.findings) - limit} more")
        return "\n".join(lines)
