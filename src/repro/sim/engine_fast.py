"""The coalescing fast engine: flat actor state machines on the heap.

The reference engine (:class:`~repro.sim.core.Environment` driving
generator processes) spends most of a DMA-bound run resuming 4-deep
``yield from`` chains — kernel → intrinsic → MFC → EIB/bank — one full
generator resume per heap pop.  Bandwidth-limited streaming loops are
described exactly by piecewise occupancy intervals (Treibig & Hager),
so a bulk transfer does not need a generator frame per hop: the fast
engine replaces each per-command generator pipeline with a flat
**actor** whose continuation is a plain bound method, re-assigned per
state transition and dispatched straight off the heap.

Equivalence contract (the reference engine is the byte-identical
oracle, gated by ``tests/test_engine_fast.py``):

* every actor occupies exactly the heap slots the generator pipeline
  occupied — same times, same relative order — except for
  *proven-exact* coalescings: no-op pops are elided (process
  terminations, already-granted request events whose pop runs no
  callbacks), adjacent same-pop push pairs (a pre-granted request's
  succeed plus the resume relay) merge into one slot, an actor may
  run a zero-delay hop inline when nothing else is scheduled at the
  current time, an uncontended EIB leg's chunk train collapses to one
  slot, and an all-tail continuation chain may *tail-warp* — advance
  ``now`` to a strictly-earliest target and run inline (see
  :meth:`FastActor._after`);
* on top of per-slot coalescing, :mod:`repro.sim.fastforward` detects
  a periodic steady state at a kernel anchor and warps whole periods
  in O(1) — heap times shift uniformly, counters advance linearly,
  placement accumulators are replayed bit-exactly;
* model *decisions* (bank scheduling, EIB arbitration, pacing) run the
  reference code itself — the fast paths call ``Eib._try_grant`` /
  ``_commit`` / ``_release``, ``MemoryBank._pick`` / ``_plan_service``
  and ``Mfc._finish`` directly, so there is no second copy of the
  timing model to drift;
* the fast engine only drives **unobserved** runs: trace, faults,
  sanitizer and watchdog-style observation need per-event resolution,
  so :func:`resolve_engine` silently falls back to the reference engine
  whenever any observer is attached.  ``run_spec`` results are
  therefore contractually identical across engines, which is why the
  persistent result cache key does *not* include the engine.
"""

from __future__ import annotations

import sys
from heapq import heappush
from typing import Any
from collections.abc import Callable

from heapq import heappop

from repro.sim.core import Environment, SimulationError
from repro.sim.fastforward import FastForward
from repro.sim.faults import FaultEngine
from repro.sim.sanitizer import DmaSanitizer
from repro.sim.trace import TraceRecorder

#: The engines a driver may request.
ENGINES = ("reference", "fast")

#: Whether the observer-downgrade warning already fired this process
#: (one line per run, not one per chip — a sweep builds thousands).
_downgrade_warned = False


def resolve_engine(
    engine: str,
    trace: TraceRecorder | None = None,
    faults: FaultEngine | None = None,
    sanitizer: DmaSanitizer | None = None,
) -> str:
    """Validate an engine request and apply the observer-fallback rule.

    The fast engine coalesces occurrences that observers need to see
    one by one, so any attached-and-enabled observer (trace recorder,
    fault engine, DMA sanitizer) downgrades ``fast`` to ``reference``
    for the whole run.  Results are identical either way — the fallback
    only costs speed, never bytes — but it is announced once on stderr
    so nobody mistakes an observed run for a fast-engine benchmark.
    """
    global _downgrade_warned
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    if engine == "fast":
        for name, observer in (
            ("trace", trace), ("faults", faults), ("sanitizer", sanitizer)
        ):
            if observer is not None and observer.enabled:
                if not _downgrade_warned:
                    _downgrade_warned = True
                    print(
                        "warning: engine 'fast' downgraded to 'reference' "
                        f"because {name} observation is enabled (observers "
                        "need per-event resolution; results are identical, "
                        "only speed differs)",
                        file=sys.stderr,
                    )
                return "reference"
    return engine


class FastActor:
    """Base of every fast-engine state machine.

    ``_run_callbacks`` is an *instance slot* holding the current
    continuation (a bound method), so a heap pop dispatches straight
    into model code — no generator resume, no callback list.  The name
    matches :class:`~repro.sim.core.Event` on purpose: the reference
    run loop drives actors unchanged.
    """

    __slots__ = ("env", "_run_callbacks", "_value")

    def __init__(self, env: FastEnvironment):
        self.env = env
        self._value: Any = None
        self._run_callbacks: Callable[[], None] = self._unscheduled

    def _unscheduled(self) -> None:
        raise SimulationError(f"{type(self).__name__} fired with no continuation")

    def succeed(self, value: Any = None) -> None:
        """:class:`~repro.sim.core.Completion` surface: deliver a value
        and schedule the parked continuation at the current time —
        exactly where the reference engine pushes the waiter's event."""
        self._value = value
        env = self.env
        env._sequence = sequence = env._sequence + 1
        heappush(env._queue, (env.now, sequence, self))

    # -- scheduling helpers (hot path: heappush inlined) ----------------------

    def _after(self, delay: int, continuation: Callable[[], None]) -> None:
        """Run ``continuation`` ``delay`` cycles from now (one heap slot).

        A non-zero delay takes a real heap slot *unless the push site
        qualifies for a tail warp*.  Advancing the clock and inlining
        the continuation is exact only when (a) the slot would be the
        strictly earliest heap entry (``queue[0][0] > target`` — ties
        excluded, because a tied entry with a lower sequence number
        must pop first) and (b) every frame between the run loop's pop
        and the push site is in tail position, so the warped chain
        never returns into a frame that reads the mutated ``now``.
        Sites that satisfy (b) structurally implement the warp inline
        (``FastDmaCommand._mv_done``, the kernel issue/sync delays);
        everything else uses this helper, which never warps.  Only
        zero-delay hops, which leave ``now`` untouched, may be inlined
        without the tail-position proof; see :meth:`_hop`.
        """
        self._run_callbacks = continuation
        env = self.env
        env._sequence = sequence = env._sequence + 1
        heappush(env._queue, (env.now + delay, sequence, self))

    def _park(self, continuation: Callable[[], None]) -> None:
        """Suspend until some waiter list calls :meth:`succeed`."""
        self._run_callbacks = continuation

    def _hop(self, continuation: Callable[[], None]) -> None:
        """A zero-delay hop: occupy one heap slot at the current time.

        When nothing else is scheduled at ``now`` the slot provably
        cannot interleave with anything, so the continuation runs
        inline — same observable order, one pop cheaper.
        """
        env = self.env
        queue = env._queue
        if queue and queue[0][0] == env.now:
            self._run_callbacks = continuation
            env._sequence = sequence = env._sequence + 1
            heappush(queue, (env.now, sequence, self))
        else:
            continuation()


class FastEnvironment(Environment):
    """The coalescing engine: the reference event loop, driving actors.

    Everything of :class:`~repro.sim.core.Environment` still works —
    generator processes, timeouts, resources, the watched and unwatched
    run loops — because actors are popped and dispatched through the
    same ``_run_callbacks()`` call.  What changes is what the *models*
    put on the heap: with ``coalescing`` set, memory banks skip their
    server generators (:meth:`repro.cell.memory.MemoryBank.submit_fast`)
    and kernels run as :class:`repro.core.kernels.FastStreamKernel`
    actors instead of SPU generator programs.
    """

    engine_name = "fast"
    coalescing = True

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        for observer in (self.trace, self.faults, self.sanitizer):
            if observer.enabled:
                raise SimulationError(
                    "the fast engine runs unobserved only; resolve_engine() "
                    "should have fallen back to the reference engine"
                )
        # Registered FastStreamKernel-style actors, for the deadlock
        # diagnostic (actors are not processes, so the base _blocked()
        # cannot see them).
        self._fast_kernels: list[Any] = []
        # Steady-state fast-forward (repro.sim.fastforward): the first
        # registered kernel anchors detection; the run loop checks the
        # pending flag between pops, never inside a callback.
        self._ff_on = True
        self._ff_pending = False
        self._ff: FastForward | None = None

    def register_kernel(self, kernel: Any) -> bool:
        """Track a top-level actor with a ``finished`` flag and ``name``.

        Returns whether this kernel is the fast-forward anchor (the
        first registered one — one anchor per run keeps the fingerprint
        capture cost bounded)."""
        self._fast_kernels.append(kernel)
        return len(self._fast_kernels) == 1

    @property
    def fastforward(self) -> FastForward | None:
        """The fast-forward engine, if any anchor ever fired."""
        return self._ff

    def run(
        self,
        until: Any | None = None,
        max_events: int | None = None,
        stall_after: int | None = None,
    ) -> Any:
        """The unwatched drain loop with the fast-forward check between
        pops; every other mode defers to the reference loop (watched
        runs need per-event resolution, ``until`` runs are bounded and
        not worth warping)."""
        if until is not None or max_events is not None or stall_after is not None:
            return super().run(until, max_events, stall_after)
        queue = self._queue
        pop = heappop
        popped = 0
        try:
            while queue:
                if self._ff_pending:
                    self._ff_pending = False
                    ff = self._ff
                    if ff is None:
                        ff = self._ff = FastForward(self)
                    # Flush the local pop count so the fingerprint
                    # entries record real per-period pop deltas
                    # (events_elided accounting).
                    self.events_popped += popped
                    popped = 0
                    ff.attempt()
                time, _seq, event = pop(queue)
                self.now = time
                popped += 1
                event._run_callbacks()
        finally:
            self.events_popped += popped
        self._raise_orphaned_failures()
        if self._blocked():
            raise SimulationError(
                "event queue drained with processes still waiting "
                "(deadlock)" + self._blocked_report(),
            )
        return None

    def _blocked(self) -> list:
        blocked = super()._blocked()
        for index, kernel in enumerate(self._fast_kernels):
            if not getattr(kernel, "finished", True):
                blocked.append(
                    (
                        -(index + 1),
                        getattr(kernel, "name", type(kernel).__name__),
                        "fast-engine actor still running",
                    )
                )
        return blocked
