"""Core of the discrete-event simulation kernel.

Time is an integer in arbitrary units (the Cell models use CPU cycles).
Events are scheduled on a binary heap keyed by ``(time, sequence)`` so
simultaneous events fire in a deterministic FIFO order, which keeps every
simulation in this repository reproducible run-to-run.

Hot-path invariants (the trace stream is the oracle — see
docs/MODEL.md):

* every resumption of a process goes through the heap, even when the
  yielded event is already triggered: the fast path uses a lightweight
  :class:`_Relay` instead of a full :class:`Event`, but it occupies the
  exact same heap slot (one ``_schedule`` call, one sequence number) the
  relay event used to, so event ordering is byte-identical;
* ``run()`` without watchdogs executes a tight inlined loop; the
  watchdog variant (``max_events``/``stall_after``) is a separate loop
  so untraced, unwatched runs never pay a per-event guard;
* kernel time is an integer; :class:`Timeout` coerces integral floats
  and rejects non-integral delays outright.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Protocol, runtime_checkable
from collections.abc import Callable, Generator, Iterable

from repro.sim.faults import NULL_FAULTS, FaultEngine
from repro.sim.sanitizer import NULL_SANITIZER, DmaSanitizer
from repro.sim.trace import (
    NULL_TRACE,
    ProcessResume,
    ProcessTerminate,
    TraceRecorder,
)


class SimulationError(RuntimeError):
    """Raised for illegal kernel operations (double trigger, bad yield...)."""


class SimulationStall(SimulationError):
    """The run watchdog fired: the event loop is spinning without the
    clock advancing (livelock) or past its event budget.

    ``blocked`` lists ``(proc_id, name, wait_description)`` for every
    live non-daemon process at the moment the watchdog fired.
    """

    def __init__(self, message: str, blocked: Iterable[tuple] = ()):
        super().__init__(message)
        self.blocked = list(blocked)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


_PENDING = object()


@runtime_checkable
class Completion(Protocol):
    """Anything a model can notify when an awaited occurrence fires.

    The reference engine's waiters are :class:`Event` objects; the
    coalescing engine's (:mod:`repro.sim.engine_fast`) are flat actor
    state machines.  Both expose the same ``succeed`` surface, so the
    hardware models' waiter lists (EIB arbitration queue, MFC tag/order
    waiters, memory-bank completions) hold either interchangeably.
    """

    def succeed(self, value: Any = None) -> Any: ...


@runtime_checkable
class Engine(Protocol):
    """The event-loop surface the hardware models and drivers rely on.

    :class:`Environment` is the reference implementation (one event per
    occurrence); ``repro.sim.engine_fast.FastEnvironment`` is the
    coalescing one.  ``engine_name`` identifies the implementation in
    reports, and ``coalescing`` tells models whether to submit interval
    descriptions (flat callback actors) instead of generator processes.
    """

    now: int
    engine_name: str
    coalescing: bool

    def schedule(self, item: Any, delay: int = 0) -> None: ...

    def peek(self) -> int | None: ...

    def step(self) -> None: ...

    def run(
        self,
        until: Any | None = None,
        max_events: int | None = None,
        stall_after: int | None = None,
    ) -> Any: ...


class Event:
    """A waitable, one-shot occurrence.

    An event starts *pending*; it becomes *triggered* when :meth:`succeed`
    or :meth:`fail` is called, at which point it is scheduled and its
    callbacks run at the current simulation time.  Processes wait on an
    event by yielding it.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "__weakref__")

    def __init__(self, env: Environment):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = _PENDING
        self._ok: bool | None = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """True when the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> Event:
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._sequence = sequence = env._sequence + 1
        heappush(env._queue, (env.now, sequence, self))
        return self

    def fail(self, exception: BaseException) -> Event:
        """Trigger the event with an exception.

        The exception is re-raised inside every waiting process.  If no
        process ever waits on a failed event the kernel raises it at the
        end of the run instead of passing silently.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        self.env._failed_events.append(self)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    Unlike a plain :class:`Event`, a Timeout schedules itself; it becomes
    *triggered* only when the clock reaches its fire time, so a process
    yielding it really does suspend for ``delay`` units.

    Kernel time is an integer (CPU cycles).  Integral floats (``5.0``)
    are coerced to ``int`` for callers that computed a delay through a
    float expression; a non-integral delay (``5.5``) raises
    :class:`ValueError` — silently truncating it would make run-to-run
    determinism depend on float rounding in model code.
    """

    __slots__ = ("delay", "_payload")

    def __init__(self, env: Environment, delay: int, value: Any = None):
        if type(delay) is not int:
            try:
                coerced = int(delay)
            except (TypeError, ValueError):
                raise TypeError(
                    f"timeout delay must be an integer cycle count, "
                    f"got {delay!r}"
                ) from None
            if coerced != delay:
                raise ValueError(
                    f"non-integral timeout delay {delay!r}: kernel time "
                    f"is an integer cycle count"
                )
            delay = coerced
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__: Timeout construction is the hottest
        # allocation in DMA-bound runs.
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self.delay = delay
        self._payload = value
        env._sequence = sequence = env._sequence + 1
        heappush(env._queue, (env.now + delay, sequence, self))

    def _run_callbacks(self) -> None:
        self._ok = True
        self._value = self._payload
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class _Relay:
    """A lightweight, pre-decided resume slot for exactly one process.

    Scheduled on the heap wherever the kernel used to schedule a relay
    :class:`Event` (process start, resuming off an already-triggered
    yield target, interrupt delivery), so event ordering is identical to
    the Event-based implementation — without allocating the callbacks
    list and dict a full Event carries.  ``Process._resume`` accepts it
    in place of an Event (it only reads ``_ok``/``_value`` and sets
    ``_defused``).  ``Process.interrupt`` detaches a relay by setting
    ``cancelled``: the heap slot still fires, but resumes nobody.
    """

    __slots__ = ("proc", "_ok", "_value", "_defused", "cancelled")

    def __init__(self, proc: Process, ok: bool, value: Any):
        self.proc = proc
        self._ok = ok
        self._value = value
        self._defused = False
        self.cancelled = False

    def _run_callbacks(self) -> None:
        if not self.cancelled:
            self.proc._resume(self)


class Process(Event):
    """A running generator; also an event that fires when it terminates.

    The generator yields events; the process is resumed with the event's
    value (or the event's exception is thrown into it).
    """

    __slots__ = (
        "_generator", "_waiting_on", "proc_id", "name", "daemon",
        "_trace", "_tracing",
    )

    def __init__(self, env: Environment, generator: Generator,
                 daemon: bool = False):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process() needs a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        # Identity is always assigned: the deadlock/stall diagnostics
        # name blocked processes even in untraced runs.
        env._proc_count += 1
        self.proc_id = env._proc_count
        self.name = getattr(generator, "__name__", type(generator).__name__)
        # Daemon processes (service loops that legitimately wait forever,
        # like a memory bank's server) are exempt from the drained-queue
        # deadlock check.
        self.daemon = daemon
        env._live_processes[self.proc_id] = self
        trace = env.trace
        self._trace = trace
        self._tracing = trace.enabled
        # Kick the process off at the current time.  The start relay is
        # tracked in _waiting_on so an interrupt() *before the start
        # fires* detaches it like any other wait target — otherwise the
        # generator would be started normally and later resumed a second
        # time by the stale start callback.
        start = _Relay(self, True, None)
        self._waiting_on: Event | None = start
        env._schedule(start)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        # Detach from whatever we were waiting on so that the original
        # event's later trigger does not resume us twice.  A relay (the
        # start slot, or a resume off an already-triggered target) is
        # cancelled in place; a real event has our callback removed.
        waited = self._waiting_on
        if waited is not None:
            if type(waited) is _Relay:
                waited.cancelled = True
            else:
                try:  # noqa: SIM105 - bare try beats suppress() on this path
                    waited.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._waiting_on = None
        relay = _Relay(self, False, Interrupt(cause))
        relay._defused = True
        self.env._schedule(relay)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        env = self.env
        env._active_process = self
        if self._tracing:
            self._trace.emit(
                ProcessResume(ts=env.now, proc_id=self.proc_id, name=self.name)
            )
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event._defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            env._live_processes.pop(self.proc_id, None)
            if self._tracing:
                self._trace.emit(
                    ProcessTerminate(
                        ts=env.now, proc_id=self.proc_id, name=self.name, ok=True
                    )
                )
            self.succeed(stop.value)
            return
        except BaseException as exc:
            env._active_process = None
            env._live_processes.pop(self.proc_id, None)
            if self._tracing:
                self._trace.emit(
                    ProcessTerminate(
                        ts=env.now, proc_id=self.proc_id, name=self.name, ok=False
                    )
                )
            self.fail(exc)
            return
        env._active_process = None

        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes may only yield Events"
            )
        if target._value is _PENDING:
            self._waiting_on = target
            target.callbacks.append(self._resume)
        else:
            # Already done: resume at the current time via a lightweight
            # relay occupying the same heap slot a relay Event used to,
            # so ordering is unchanged.  The relay is tracked in
            # _waiting_on so interrupt() detaches (cancels) it like any
            # other wait target — otherwise the generator would be
            # resumed twice, once with the Interrupt and once with the
            # stale value.
            relay = _Relay(self, target._ok, target._value)
            if not target._ok:
                target._defused = True
            env._sequence = sequence = env._sequence + 1
            heappush(env._queue, (env.now, sequence, relay))
            self._waiting_on = relay


class _Condition(Event):
    """Base for AllOf / AnyOf."""

    __slots__ = ("_events", "_pending")

    def __init__(self, env: Environment, events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events from different environments")
        self._pending = sum(1 for e in self._events if not e.triggered)
        for event in self._events:
            if event.triggered:
                self._observe(event, immediate=True)
            else:
                event.callbacks.append(self._observe)
        self._check(initial=True)

    def _observe(self, event: Event, immediate: bool = False) -> None:
        if not immediate:
            self._pending -= 1
        if not event._ok:
            event._defused = True
            if not self.triggered:
                self.fail(event._value)
            return
        if not self.triggered:
            self._check(initial=False)

    def _check(self, initial: bool) -> None:
        raise NotImplementedError

    def _values(self) -> list[Any]:
        return [e._value for e in self._events if e.triggered and e._ok]


class AllOf(_Condition):
    """Succeeds when every component event has succeeded."""

    __slots__ = ()

    def _check(self, initial: bool) -> None:
        if self._pending == 0 and not self.triggered:
            self.succeed(self._values())


class AnyOf(_Condition):
    """Succeeds as soon as any component event succeeds.

    An empty event list succeeds immediately with ``[]``, matching
    ``AllOf([])`` — there is no component left to wait for.
    """

    __slots__ = ()

    def _check(self, initial: bool) -> None:
        if self.triggered:
            return
        if not self._events or any(
            e.triggered and e._ok for e in self._events
        ):
            self.succeed(self._values())


class Environment:
    """The event loop.  ``now`` is the current integer simulation time.

    This is the **reference engine** of the :class:`Engine` protocol:
    one heap slot per occurrence, generator processes, byte-identical
    ordering — the oracle every other engine is gated against.

    ``trace`` is the tracing sink (:mod:`repro.sim.trace`): the shared
    do-nothing :data:`~repro.sim.trace.NULL_TRACE` by default, or a
    :class:`~repro.sim.trace.TraceRecorder` to capture a structured
    record stream.  Models guard every emit with ``trace.enabled``, so a
    run without a recorder pays nothing.  Attach the recorder at
    construction time: processes and hardware models cache ``env.trace``
    when they are built, so swapping it mid-run has no effect.
    """

    #: Engine-protocol identity (subclasses override).
    engine_name = "reference"
    #: True when models should submit coalescible interval descriptions
    #: (flat callback actors) instead of generator processes.
    coalescing = False

    def __init__(
        self,
        initial_time: int = 0,
        trace: TraceRecorder | None = None,
        faults: FaultEngine | None = None,
        sanitizer: DmaSanitizer | None = None,
    ):
        self.now = int(initial_time)
        self.trace = NULL_TRACE if trace is None else trace
        self.faults = NULL_FAULTS if faults is None else faults
        if self.faults.enabled:
            self.faults.bind(self)
        self.sanitizer = NULL_SANITIZER if sanitizer is None else sanitizer
        if self.sanitizer.enabled:
            self.sanitizer.bind(self)
        self._queue: list = []
        self._sequence = 0
        # Heap pops actually executed by the run loops — the engine's
        # cost denominator.  The reference engine models one occurrence
        # per pop, so here popped == modeled; coalescing engines pop
        # fewer events than they model.
        self.events_popped = 0
        self._proc_count = 0
        self._active_process: Process | None = None
        self._failed_events: list[Event] = []
        # proc_id -> live Process, for deadlock/stall diagnostics.
        self._live_processes: dict = {}

    # -- construction helpers -------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, daemon: bool = False) -> Process:
        return Process(self, generator, daemon=daemon)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------------

    def _schedule(self, event: Event, delay: int = 0) -> None:
        self._sequence = sequence = self._sequence + 1
        heappush(self._queue, (self.now + delay, sequence, event))

    def schedule(self, item: Any, delay: int = 0) -> None:
        """Public scheduling entry of the :class:`Engine` protocol: put
        any item with a ``_run_callbacks()`` method on the heap at
        ``now + delay``.  The coalescing engine's actors schedule
        themselves through this; it is exactly :meth:`_schedule`."""
        self._sequence = sequence = self._sequence + 1
        heappush(self._queue, (self.now + delay, sequence, item))

    def peek(self) -> int | None:
        """Time of the next scheduled event, or None if the queue is empty."""
        if not self._queue:
            return None
        return self._queue[0][0]

    def step(self) -> None:
        """Process a single event."""
        time, _seq, event = heappop(self._queue)
        self.now = time
        self.events_popped += 1
        event._run_callbacks()

    def warp(self, delta: int) -> None:
        """Advance ``now`` and every scheduled event by ``delta`` cycles.

        The steady-state fast-forward hook: a uniform time shift leaves
        every pairwise comparison in the heap unchanged (times move
        together, sequence numbers do not move at all), so the heap
        invariant and the pop order are preserved exactly — the future
        of a shifted schedule is the future of the original schedule,
        shifted.  Callers are responsible for shifting any model state
        that carries absolute times (pacers, wait-start stamps)."""
        if delta < 0:
            raise ValueError(f"warp must be non-negative, got {delta}")
        if not delta:
            return
        self.now += delta
        # Shift in place: the run loop holds a reference to this exact
        # list object across the warp, so rebinding would strand it.
        queue = self._queue
        queue[:] = [
            (time + delta, sequence, item)
            for time, sequence, item in queue
        ]

    def run(
        self,
        until: Any | None = None,
        max_events: int | None = None,
        stall_after: int | None = None,
    ) -> Any:
        """Run until the queue drains, ``until`` time, or ``until`` event.

        Returns the value of the ``until`` event when one is given.

        ``max_events`` caps the total number of events processed;
        exceeding it raises :class:`SimulationStall` (a runaway run).
        ``stall_after`` is the no-progress watchdog: if that many
        consecutive events fire without the clock advancing, the run is
        livelocked and :class:`SimulationStall` is raised with a
        diagnostic naming every blocked process, what each is waiting
        on, and the tail of the trace stream (when tracing).

        When the queue drains with ``until=None`` while non-daemon
        processes are still alive, the run did *not* complete — it
        deadlocked — and :class:`SimulationError` is raised with the
        same blocked-process diagnostic instead of returning ``None``.
        """
        if max_events is not None or stall_after is not None:
            return self._run_watched(until, max_events, stall_after)

        # Unwatched fast path: the heap pop and callback dispatch are
        # inlined (no per-event step() call, no watchdog guard).  Event
        # processing order is identical to the watched loop.
        queue = self._queue
        pop = heappop
        popped = 0
        if isinstance(until, Event):
            stop_event = until
            try:
                while stop_event._value is _PENDING:
                    if not queue:
                        raise SimulationError(
                            "event queue drained before the awaited event fired"
                            + self._blocked_report()
                        )
                    time, _seq, event = pop(queue)
                    self.now = time
                    popped += 1
                    event._run_callbacks()
            finally:
                self.events_popped += popped
            self._raise_orphaned_failures()
            if not stop_event._ok:
                stop_event._defused = True
                raise stop_event._value
            return stop_event._value

        if until is None:
            try:
                while queue:
                    time, _seq, event = pop(queue)
                    self.now = time
                    popped += 1
                    event._run_callbacks()
            finally:
                self.events_popped += popped
            self._raise_orphaned_failures()
            if self._blocked():
                raise SimulationError(
                    "event queue drained with processes still waiting "
                    "(deadlock)" + self._blocked_report(),
                )
            return None

        horizon = int(until)
        try:
            while queue:
                if queue[0][0] > horizon:
                    self.now = horizon
                    break
                time, _seq, event = pop(queue)
                self.now = time
                popped += 1
                event._run_callbacks()
            else:
                self.now = horizon
        finally:
            self.events_popped += popped
        self._raise_orphaned_failures()
        return None

    def _run_watched(
        self,
        until: Any | None,
        max_events: int | None,
        stall_after: int | None,
    ) -> Any:
        """The ``run`` loop with the event-budget / no-progress watchdogs.

        Kept out of :meth:`run` so unwatched runs never pay the per-event
        bookkeeping; processes events in exactly the same order.
        """
        events_processed = 0
        events_at_now = 0
        last_now = self.now

        def tick_watchdogs() -> None:
            nonlocal events_processed, events_at_now, last_now
            events_processed += 1
            if max_events is not None and events_processed > max_events:
                raise SimulationStall(
                    f"simulation exceeded max_events={max_events} "
                    f"(now={self.now})" + self._blocked_report(),
                    blocked=self._blocked(),
                )
            if stall_after is None:
                return
            if self.now != last_now:
                last_now = self.now
                events_at_now = 0
            events_at_now += 1
            if events_at_now > stall_after:
                raise SimulationStall(
                    f"no-progress livelock: {events_at_now} events fired "
                    f"at t={self.now} without the clock advancing"
                    + self._blocked_report() + self._trace_tail(),
                    blocked=self._blocked(),
                )

        if isinstance(until, Event):
            stop_event = until
            while not stop_event.triggered:
                if not self._queue:
                    raise SimulationError(
                        "event queue drained before the awaited event fired"
                        + self._blocked_report()
                    )
                self.step()
                tick_watchdogs()
            self._raise_orphaned_failures()
            if not stop_event._ok:
                stop_event._defused = True
                raise stop_event._value
            return stop_event._value

        horizon = None if until is None else int(until)
        while self._queue:
            if horizon is not None and self._queue[0][0] > horizon:
                self.now = horizon
                break
            self.step()
            tick_watchdogs()
        else:
            if horizon is not None:
                self.now = horizon
        self._raise_orphaned_failures()
        if horizon is None:
            blocked = self._blocked()
            if blocked:
                raise SimulationError(
                    "event queue drained with processes still waiting "
                    "(deadlock)" + self._blocked_report(),
                )
        return None

    def _raise_orphaned_failures(self) -> None:
        for event in self._failed_events:
            if not event._defused:
                self._failed_events = []
                raise event._value
        self._failed_events = []

    # -- diagnostics ----------------------------------------------------------

    def _blocked(self) -> list:
        """(proc_id, name, wait description) per live non-daemon process."""
        return [
            (proc.proc_id, proc.name, _describe_wait(proc._waiting_on))
            for proc in self._live_processes.values()
            if not proc.daemon
        ]

    def _blocked_report(self) -> str:
        blocked = self._blocked()
        if not blocked:
            return ""
        lines = [
            f"  process {proc_id} ({name}) waiting on {wait}"
            for proc_id, name, wait in blocked
        ]
        return "\nblocked processes:\n" + "\n".join(lines)

    def _trace_tail(self, n: int = 10) -> str:
        if not self.trace.enabled:
            return ""
        tail = self.trace.records[-n:]
        if not tail:
            return ""
        return "\ntrace tail:\n" + "\n".join(f"  {record}" for record in tail)


def _describe_wait(event: Event | None) -> str:
    if event is None or type(event) is _Relay:
        return "nothing (scheduled to resume)"
    if isinstance(event, Process):
        return f"process {event.proc_id} ({event.name})"
    if isinstance(event, Timeout):
        return f"timeout(delay={event.delay})"
    return repr(event)


class ProgressGuard:
    """A no-progress counter for unbounded service loops.

    A loop calls :meth:`tick` once per iteration with a *progress key*
    (anything that changes when real work happened — typically
    ``(env.now, items_served)``).  If the key stays identical for more
    than ``limit`` consecutive ticks the loop is spinning on a model bug
    and the guard raises :class:`SimulationStall` with the environment's
    blocked-process diagnostic, instead of spinning the event queue
    forever.
    """

    def __init__(self, env: Environment, name: str, limit: int = 10_000):
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.env = env
        self.name = name
        self.limit = limit
        self._last_key: Any = object()
        self._spins = 0

    def tick(self, key: Any) -> None:
        if key != self._last_key:
            self._last_key = key
            self._spins = 0
            return
        self._spins += 1
        if self._spins > self.limit:
            raise SimulationStall(
                f"service loop {self.name!r} made no progress for "
                f"{self._spins} iterations at t={self.env.now}"
                + self.env._blocked_report(),
                blocked=self.env._blocked(),
            )
