"""Generic discrete-event simulation kernel.

This subpackage knows nothing about the Cell Broadband Engine: it provides
the event loop, process (generator) scheduling, waitable events, shared
resources and instrumentation that ``repro.cell`` builds its hardware
models on.  The API intentionally mirrors a small subset of SimPy so the
hardware models read like standard DES code.

Typical usage::

    from repro.sim import Environment

    env = Environment()

    def producer(env, store):
        for i in range(3):
            yield env.timeout(10)
            yield store.put(i)

    env.process(producer(env, store))
    env.run()
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Completion,
    Engine,
    Environment,
    Event,
    Interrupt,
    Process,
    ProgressGuard,
    SimulationError,
    SimulationStall,
    Timeout,
)
from repro.sim.engine_fast import (
    ENGINES,
    FastActor,
    FastEnvironment,
    resolve_engine,
)
from repro.sim.faults import (
    FaultEngine,
    FaultReport,
    FaultSpecError,
    NULL_FAULTS,
    NullFaultEngine,
    SpeFaultPlan,
    parse_fault_spec,
)
from repro.sim.resources import Container, Resource, Store
from repro.sim.monitor import BusyMonitor, Counter, TimeSeries
from repro.sim.sanitizer import (
    DmaSanitizer,
    NULL_SANITIZER,
    NullSanitizer,
)
from repro.sim.trace import (
    DmaHazard,
    FaultInjected,
    NULL_TRACE,
    NullTraceRecorder,
    TraceRecorder,
    TraceSummary,
    read_chrome_trace,
    records_from_chrome,
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "BusyMonitor",
    "Completion",
    "Container",
    "Counter",
    "DmaHazard",
    "DmaSanitizer",
    "ENGINES",
    "Engine",
    "Environment",
    "Event",
    "FastActor",
    "FastEnvironment",
    "FaultEngine",
    "FaultInjected",
    "FaultReport",
    "FaultSpecError",
    "Interrupt",
    "NULL_FAULTS",
    "NULL_SANITIZER",
    "NULL_TRACE",
    "NullFaultEngine",
    "NullSanitizer",
    "NullTraceRecorder",
    "Process",
    "ProgressGuard",
    "Resource",
    "SimulationError",
    "SimulationStall",
    "SpeFaultPlan",
    "Store",
    "TimeSeries",
    "Timeout",
    "TraceRecorder",
    "TraceSummary",
    "parse_fault_spec",
    "read_chrome_trace",
    "resolve_engine",
    "records_from_chrome",
    "to_chrome_trace",
    "write_chrome_trace",
]
