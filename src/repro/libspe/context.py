"""SPE contexts and the SPU-side intrinsic surface.

An SPU program is a generator function::

    def spu_main(spu, out):
        start = spu.read_decrementer()
        for i in range(n):
            yield from spu.mfc_get(size=16384, tag=0)
        yield from spu.wait_tags([0])
        out["cycles"] = spu.read_decrementer() - start

    context = SpeContext(chip, logical_index=0)
    context.load(spu_main, out)
    chip.run()

The runtime charges SPU cycles for the operations the paper identifies
as performance-relevant: programming a DMA command (cheaper when the
loop is unrolled), building list elements, and the tag-mask/tag-status
synchronisation sequence.
"""

from __future__ import annotations
from typing import Any
from collections.abc import Callable, Generator, Iterable

from repro.cell.chip import CellChip
from repro.cell.dma import DmaCommand, DmaDirection, DmaList, TargetKind
from repro.cell.errors import CellError, DmaTimeoutError, SpeCrashError
from repro.cell.mailbox import MailboxPair
from repro.cell.spe import Spe
from repro.sim import AnyOf, Event, Interrupt, Process


class SpuRuntime:
    """The intrinsics an SPU program sees.

    ``unrolled`` models the paper's "it is imperative to manually unroll
    loops": rolled loops multiply the DMA issue cost (extra branches and
    address arithmetic; the SPU has no branch prediction).
    """

    def __init__(self, spe: Spe, unrolled: bool = True):
        self.spe = spe
        self.env = spe.env
        self.unrolled = unrolled
        self.mailbox = MailboxPair(spe.env, spe_name=spe.node)

    # -- timing --------------------------------------------------------------

    def read_decrementer(self) -> int:
        """The SPU decrementer, i.e. the current cycle count."""
        return self.env.now

    def compute(self, cycles: int):
        """Spend SPU cycles on (modelled) computation."""
        return self.env.timeout(cycles)

    # -- DMA intrinsics --------------------------------------------------------

    @property
    def _elem_issue_cycles(self) -> int:
        cost = self.spe.config.mfc.elem_issue_cycles
        if not self.unrolled:
            cost *= self.spe.config.mfc.rolled_loop_issue_factor
        return cost

    def mfc_get(
        self,
        size: int,
        tag: int = 0,
        remote_spe: Spe | None = None,
        local_offset: int = 0,
        remote_offset: int = 0,
        fence: bool = False,
        barrier: bool = False,
    ) -> Generator[Event, object, None]:
        """GET: remote (memory or another SPE's LS) into this LS."""
        yield from self._issue_elem(
            DmaDirection.GET, size, tag, remote_spe, local_offset,
            remote_offset, fence, barrier,
        )

    def mfc_put(
        self,
        size: int,
        tag: int = 0,
        remote_spe: Spe | None = None,
        local_offset: int = 0,
        remote_offset: int = 0,
        fence: bool = False,
        barrier: bool = False,
    ) -> Generator[Event, object, None]:
        """PUT: this LS out to memory or another SPE's LS."""
        yield from self._issue_elem(
            DmaDirection.PUT, size, tag, remote_spe, local_offset,
            remote_offset, fence, barrier,
        )

    def mfc_getf(self, size: int, tag: int = 0, **kwargs):
        """Fenced GET: ordered after earlier commands of its tag group."""
        yield from self.mfc_get(size, tag, fence=True, **kwargs)

    def mfc_putf(self, size: int, tag: int = 0, **kwargs):
        """Fenced PUT: ordered after earlier commands of its tag group."""
        yield from self.mfc_put(size, tag, fence=True, **kwargs)

    def mfc_getb(self, size: int, tag: int = 0, **kwargs):
        """Barriered GET: ordered after every earlier queued command."""
        yield from self.mfc_get(size, tag, barrier=True, **kwargs)

    def mfc_putb(self, size: int, tag: int = 0, **kwargs):
        """Barriered PUT: ordered after every earlier queued command."""
        yield from self.mfc_put(size, tag, barrier=True, **kwargs)

    def mfc_getl(
        self,
        element_size: int,
        n_elements: int,
        tag: int = 0,
        remote_spe: Spe | None = None,
    ) -> Generator[Event, object, None]:
        """GET through a DMA list of equal elements."""
        yield from self._issue_list(
            DmaDirection.GET, element_size, n_elements, tag, remote_spe
        )

    def mfc_putl(
        self,
        element_size: int,
        n_elements: int,
        tag: int = 0,
        remote_spe: Spe | None = None,
    ) -> Generator[Event, object, None]:
        """PUT through a DMA list of equal elements."""
        yield from self._issue_list(
            DmaDirection.PUT, element_size, n_elements, tag, remote_spe
        )

    def wait_tags(
        self,
        tags: Iterable[int],
        timeout: int | None = None,
        retries: int = 0,
        backoff: int = 2,
    ) -> Generator[Event, object, None]:
        """``mfc_write_tag_mask`` + ``mfc_read_tag_status_all``.

        Without ``timeout`` this blocks until the tag groups are quiet
        (the architectural behaviour — and a silent hang when a command
        was lost).  With ``timeout`` the wait is bounded: on expiry the
        MFC's parked commands for these tags are re-driven
        (:meth:`repro.cell.mfc.Mfc.redrive`) and the wait repeats with
        the timeout scaled by ``backoff``, up to ``retries`` re-drives;
        exhausting them raises :class:`~repro.cell.errors.DmaTimeoutError`.
        """
        yield self.env.timeout(self.spe.config.mfc.sync_cycles)
        if timeout is None:
            yield self.spe.mfc.tag_group_quiet(tags)
            return
        if timeout < 1:
            raise CellError(f"wait_tags timeout must be >= 1, got {timeout}")
        tags = tuple(tags)
        started = self.env.now
        deadline = timeout
        for attempt in range(retries + 1):
            quiet = self.spe.mfc.tag_group_quiet(tags)
            if quiet.triggered:
                return
            yield AnyOf(self.env, [quiet, self.env.timeout(deadline)])
            if quiet.triggered:
                return
            if attempt < retries:
                self.spe.mfc.redrive(tags)
                deadline *= backoff
        raise DmaTimeoutError(
            self.spe.node, tags, self.env.now - started, retries + 1
        )

    # -- mailboxes ---------------------------------------------------------------

    def read_in_mbox(self) -> Event:
        return self.mailbox.inbound.read()

    def write_out_mbox(self, message: int) -> Event:
        return self.mailbox.outbound.write(message)

    # -- internals ---------------------------------------------------------------

    def _issue_elem(
        self,
        direction: DmaDirection,
        size: int,
        tag: int,
        remote_spe: Spe | None,
        local_offset: int,
        remote_offset: int,
        fence: bool = False,
        barrier: bool = False,
    ):
        yield self.env.timeout(self._elem_issue_cycles)
        target, node = (
            (TargetKind.MAIN_MEMORY, None)
            if remote_spe is None
            else (TargetKind.LOCAL_STORE, remote_spe.node)
        )
        command = DmaCommand(
            direction=direction,
            target=target,
            size=size,
            tag=tag,
            local_offset=local_offset,
            remote_offset=remote_offset,
            remote_node=node,
            fence=fence,
            barrier=barrier,
        )
        yield from self.spe.mfc.enqueue(command)

    def _issue_list(
        self,
        direction: DmaDirection,
        element_size: int,
        n_elements: int,
        tag: int,
        remote_spe: Spe | None,
    ):
        limit = self.spe.config.mfc.list_max_elements
        if n_elements > limit:
            raise CellError(
                f"a DMA list holds at most {limit} elements, got {n_elements}"
            )
        yield self.env.timeout(self.spe.config.mfc.list_issue_cycles)
        target, node = (
            (TargetKind.MAIN_MEMORY, None)
            if remote_spe is None
            else (TargetKind.LOCAL_STORE, remote_spe.node)
        )
        dma_list = DmaList.uniform(
            direction=direction,
            target=target,
            element_size=element_size,
            n_elements=n_elements,
            tag=tag,
            remote_node=node,
        )
        yield from self.spe.mfc.enqueue(dma_list)


class SpeContext:
    """A libspe context: one logical SPE plus a loaded program."""

    def __init__(self, chip: CellChip, logical_index: int, unrolled: bool = True):
        self.chip = chip
        self.spe = chip.spe(logical_index)
        self.runtime = SpuRuntime(self.spe, unrolled=unrolled)
        self.process: Process | None = None

    def load(self, program: Callable, *args: Any, **kwargs: Any) -> Process:
        """Start ``program(runtime, *args, **kwargs)`` on this SPE.

        Mirrors ``spe_create_thread``: the program begins running when
        the simulation advances.  Returns the process (an event that
        fires when the program terminates).
        """
        if self.process is not None and self.process.is_alive:
            raise CellError(
                f"logical SPE {self.spe.logical_index} is already running a program"
            )
        generator = program(self.runtime, *args, **kwargs)
        faults = self.chip.env.faults
        if faults.enabled:
            plan = faults.spe_plan(self.spe.logical_index)
            if plan is not None:
                generator = self._doomed(generator, plan)
        self.process = self.chip.env.process(generator)
        return self.process

    def _doomed(self, generator: Generator, plan) -> Generator:
        """Relay the program's yields, then kill it after the planned
        number of operations: ``crash`` raises
        :class:`~repro.cell.errors.SpeCrashError` inside the process
        (its event fails, which a resilience monitor can observe and
        defuse); ``hang`` blocks forever on an event nobody triggers,
        until a watchdog interrupts the process to retire it.
        """
        env = self.chip.env
        spe = self.spe
        ops = 0
        send_value: Any = None
        throw_exc: BaseException | None = None
        while True:
            try:
                if throw_exc is None:
                    target = generator.send(send_value)
                else:
                    exc, throw_exc = throw_exc, None
                    target = generator.throw(exc)
            except StopIteration as stop:
                return stop.value
            ops += 1
            if ops >= plan.after_ops:
                generator.close()
                env.faults.record_spe_fault(plan.kind, spe.node)
                spe.mark_lost()
                if plan.kind == "crash":
                    raise SpeCrashError(spe.logical_index, spe.node, ops)
                try:
                    yield env.event()
                except Interrupt:
                    return None  # quarantined by a watchdog
                raise CellError("hung SPE context resumed without an interrupt")
            try:
                send_value = yield target
            except BaseException as exc:  # noqa: BLE001 - relayed to the program
                send_value = None
                throw_exc = exc

    @property
    def finished(self) -> bool:
        return self.process is not None and self.process.triggered


def run_programs(
    chip: CellChip,
    program: Callable,
    logical_indices: Iterable[int],
    args_for: Callable[[int], tuple] | None = None,
    unrolled: bool = True,
) -> list[SpeContext]:
    """Load the same program on several SPEs and run to completion.

    ``args_for(logical_index)`` supplies per-SPE arguments (defaults to
    none).  Returns the contexts, whose processes have all terminated.
    """
    contexts = []
    for logical in logical_indices:
        context = SpeContext(chip, logical, unrolled=unrolled)
        extra = args_for(logical) if args_for is not None else ()
        context.load(program, *extra)
        contexts.append(context)
    chip.run()
    unfinished = [c.spe.logical_index for c in contexts if not c.finished]
    if unfinished:
        raise CellError(f"SPE programs never terminated: {unfinished}")
    return contexts
