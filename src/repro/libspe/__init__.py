"""A libspe-1.1-shaped programming API over the chip model.

The paper's benchmarks are C programs: a PPE main that creates SPE
contexts and SPU programs that issue MFC commands through intrinsics
(``mfc_get``/``mfc_put``/``mfc_getl``/``mfc_putl``,
``mfc_write_tag_mask`` + ``mfc_read_tag_status_all``) and time themselves
with the decrementer.  This package mirrors that shape so the experiment
code in :mod:`repro.core` reads like the paper's codes:

* an *SPU program* is a Python generator function taking an
  :class:`~repro.libspe.context.SpuRuntime` first argument;
* :class:`~repro.libspe.context.SpeContext` loads and runs a program on
  one logical SPE;
* the runtime exposes the MFC intrinsics with their SPU-side costs
  (issue cycles, synchronisation cycles) so the paper's programming
  rules — unroll, delay synchronisation, prefer lists for small
  elements — have observable consequences.
"""

from repro.libspe.context import SpeContext, SpuRuntime, run_programs

__all__ = ["SpeContext", "SpuRuntime", "run_programs"]
