"""PPE cache hierarchy geometry and buffer-placement helpers.

The PPE experiments (Figures 3, 4 and 6) differ only in where the
traversed buffer lives: fits in the 32 KB L1, fits in the 512 KB L2, or
misses both.  This module owns that classification and the buffer sizes
the experiment framework picks for each level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cell.config import PpeConfig
from repro.cell.errors import ConfigError

#: The three residence levels the paper measures.
LEVELS: tuple[str, ...] = ("l1", "l2", "mem")

#: Memory operations the paper measures at every level.
OPS: tuple[str, ...] = ("load", "store", "copy")

#: Element sizes the paper sweeps: 1 char up to a full VMX register.
ELEMENT_SIZES: tuple[int, ...] = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class CacheHierarchy:
    """Geometry of the PPE's two cache levels."""

    config: PpeConfig

    def classify_buffer(self, nbytes: int, working_sets: int = 1) -> str:
        """Residence level of a streaming working set of ``working_sets``
        buffers of ``nbytes`` each (copy uses two)."""
        if nbytes <= 0:
            raise ConfigError(f"buffer of {nbytes} bytes")
        total = nbytes * working_sets
        if total <= self.config.l1_bytes:
            return "l1"
        if total <= self.config.l2_bytes:
            return "l2"
        return "mem"

    def buffer_bytes_for(self, level: str, working_sets: int = 1) -> int:
        """A buffer size that comfortably pins the working set at a level:
        half the cache for cache levels, 32x the L2 for memory."""
        if level == "l1":
            return self.config.l1_bytes // (2 * working_sets)
        if level == "l2":
            return self.config.l2_bytes // (2 * working_sets)
        if level == "mem":
            return self.config.l2_bytes * 32
        raise ConfigError(f"unknown cache level {level!r}; expected one of {LEVELS}")

    def fits(self, level: str, nbytes: int, working_sets: int = 1) -> bool:
        order = {name: i for i, name in enumerate(LEVELS)}
        if level not in order:
            raise ConfigError(f"unknown cache level {level!r}")
        return order[self.classify_buffer(nbytes, working_sets)] <= order[level]
