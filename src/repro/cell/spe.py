"""A Synergistic Processor Element: SPU + local store + MFC.

The SPU side of the model is structural, like the PPE's: the paper's
SPU-to-LS experiment (section 4.2.2) is a streaming load/store loop with
no OS interference, and it reaches the architectural peak — one quadword
per cycle, 33.6 GB/s — exactly.  Narrower accesses are still full
quadword LS reads with a mask/merge (loads) or a read-modify-write
(stores), so delivered bandwidth is proportional to the element size.
"""

from __future__ import annotations


from repro.cell.config import CellConfig
from repro.cell.errors import ConfigError
from repro.cell.local_store import LocalStore
from repro.cell.mfc import Mfc
from repro.sim import Environment

#: Element sizes the SPU experiment sweeps (same as the PPE's).
SPU_ELEMENT_SIZES = (1, 2, 4, 8, 16)


class Spe:
    """One SPE, addressed by logical index, living at a physical node."""

    def __init__(
        self,
        env: Environment,
        logical_index: int,
        node: str,
        chip: CellChip,
    ):
        self.env = env
        self.logical_index = logical_index
        self.node = node
        self.chip = chip
        self.config: CellConfig = chip.config
        self.local_store = LocalStore(
            self.config.local_store, node=node, sanitizer=env.sanitizer
        )
        self.mfc = Mfc(env, node, chip)
        # Cleared when an injected fault kills this SPE's context; a
        # dead SPE's local store is gone, so schedulers must stop
        # forwarding from it and fall back to write-through copies.
        self.healthy = True

    def mark_lost(self) -> None:
        """Quarantine: the SPE's context crashed or hung; its LS state
        died with it."""
        self.healthy = False

    def ls_bytes_per_cycle(self, op: str, element_bytes: int) -> float:
        """SPU <-> LS delivered bytes per CPU cycle."""
        if op not in ("load", "store", "copy"):
            raise ConfigError(f"op must be load/store/copy, got {op!r}")
        if element_bytes not in SPU_ELEMENT_SIZES:
            raise ConfigError(
                f"element size must be one of {SPU_ELEMENT_SIZES}, got {element_bytes}"
            )
        spu = self.config.spu
        if op == "load":
            rate = min(element_bytes, spu.load_bytes_per_cycle)
            if element_bytes < 16:
                rate *= spu.subword_load_penalty
            return rate
        if op == "store":
            rate = min(element_bytes, spu.store_bytes_per_cycle)
            if element_bytes < 16:
                rate *= spu.subword_store_penalty
            return rate
        # copy: one load + one store per element, sharing the single LS
        # port; counts read+write bytes like the PPE copy experiments.
        load = self.ls_bytes_per_cycle("load", element_bytes)
        store = self.ls_bytes_per_cycle("store", element_bytes)
        return 2.0 / (1.0 / load + 1.0 / store)

    def ls_bandwidth_gbps(self, op: str, element_bytes: int) -> float:
        rate = self.ls_bytes_per_cycle(op, element_bytes)
        return rate * self.config.clock.cpu_hz / 1e9

    def __repr__(self) -> str:
        health = "" if self.healthy else ", LOST"
        return f"Spe(logical={self.logical_index}, node={self.node!r}{health})"
