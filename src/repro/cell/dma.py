"""DMA command types and the MFC's validation rules.

A :class:`DmaCommand` describes one MFC transfer: direction (GET moves
data *into* the issuing SPE's local store, PUT moves data out), the
remote target (main memory or another SPE's local store), size and tag
group.  A :class:`DmaList` bundles up to 2048 elements behind a single
queue entry; the MFC streams the elements without further SPU work.

Validation follows the CBE Programming Handbook: transfers are 1, 2, 4,
8 or a multiple of 16 bytes up to 16 KiB, with matching 16-byte alignment
on both sides.  The model additionally flags sub-128 B transfers as
*inefficient* (the paper: "the experiments show a very high performance
degradation" below 128 B) so experiments can report it.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from repro.cell.errors import DmaAlignmentError, DmaSizeError

#: Transfer sizes allowed below one quadword.
_SMALL_SIZES = (1, 2, 4, 8)

#: Maximum bytes in one MFC command.
MAX_TRANSFER_BYTES = 16384

#: Bus-packet size; transfers below this are legal but slow.
EFFICIENT_MIN_BYTES = 128

_command_ids = itertools.count()


class DmaDirection(enum.Enum):
    """Transfer direction relative to the issuing SPE's local store."""

    GET = "get"
    PUT = "put"


class TargetKind(enum.Enum):
    """What the remote side of a transfer is."""

    MAIN_MEMORY = "memory"
    LOCAL_STORE = "local_store"


def validate_transfer(size: int, local_offset: int, remote_offset: int) -> None:
    """Raise unless (size, alignments) form a legal MFC transfer."""
    if size <= 0:
        raise DmaSizeError(f"transfer size must be positive, got {size}")
    if size > MAX_TRANSFER_BYTES:
        raise DmaSizeError(
            f"{size} B exceeds the {MAX_TRANSFER_BYTES} B single-command "
            "limit; split the transfer or use a DMA list"
        )
    if size < 16:
        if size not in _SMALL_SIZES:
            raise DmaSizeError(
                f"sub-quadword transfers must be 1, 2, 4 or 8 bytes, got {size}"
            )
        if local_offset % size or remote_offset % size:
            raise DmaAlignmentError(
                f"a {size} B transfer must be naturally aligned "
                f"(local {local_offset:#x}, remote {remote_offset:#x})"
            )
    else:
        if size % 16:
            raise DmaSizeError(
                f"transfers of 16 B and above must be quadword multiples, got {size}"
            )
        if local_offset % 16 or remote_offset % 16:
            raise DmaAlignmentError(
                f"quadword transfers need 16 B alignment "
                f"(local {local_offset:#x}, remote {remote_offset:#x})"
            )
    if local_offset % 16 != remote_offset % 16:
        raise DmaAlignmentError(
            "source and destination must share 16 B alignment "
            f"(local {local_offset:#x}, remote {remote_offset:#x})"
        )


@dataclass
class DmaCommand:
    """One MFC queue entry moving ``size`` bytes.

    ``remote_node`` is the EIB element on the far side: ``"MEM"`` for main
    memory (the model resolves the bank from the address), or a physical
    SPE node name for LS-to-LS transfers.
    """

    direction: DmaDirection
    target: TargetKind
    size: int
    tag: int = 0
    local_offset: int = 0
    remote_offset: int = 0
    remote_node: str | None = None
    # Ordering variants (the MFC's <cmd>f / <cmd>b forms): a *fenced*
    # command is ordered after all earlier commands of its tag group; a
    # *barriered* command after all earlier commands in the queue.
    fence: bool = False
    barrier: bool = False
    command_id: int = field(default_factory=lambda: next(_command_ids))

    def __post_init__(self):
        validate_transfer(self.size, self.local_offset, self.remote_offset)
        if not 0 <= self.tag < 32:
            raise DmaSizeError(f"tag group must be in [0, 32), got {self.tag}")
        if self.target is TargetKind.LOCAL_STORE and self.remote_node is None:
            raise DmaSizeError("LS-to-LS transfers need a remote_node")
        if self.fence and self.barrier:
            raise DmaSizeError("a command is fenced or barriered, not both")

    @property
    def is_efficient(self) -> bool:
        """True when the transfer meets the 128 B bus-packet size."""
        return self.size >= EFFICIENT_MIN_BYTES


@dataclass(frozen=True)
class DmaListElement:
    """One element of a DMA list: size plus remote offset."""

    size: int
    remote_offset: int = 0

    def __post_init__(self):
        # List elements inherit the list's local-store cursor, which the
        # MFC advances element by element; validate size and the remote
        # side's alignment here.
        validate_transfer(self.size, self.remote_offset, self.remote_offset)


@dataclass
class DmaList:
    """A list command: one queue entry, many streamed elements.

    All elements share a direction, target and tag.  The MFC fetches
    elements from the local store and issues them back-to-back, which is
    why list bandwidth is flat down to 128 B elements.
    """

    direction: DmaDirection
    target: TargetKind
    elements: Sequence[DmaListElement]
    tag: int = 0
    local_offset: int = 0
    remote_node: str | None = None
    command_id: int = field(default_factory=lambda: next(_command_ids))

    def __post_init__(self):
        if not self.elements:
            raise DmaSizeError("a DMA list needs at least one element")
        if not 0 <= self.tag < 32:
            raise DmaSizeError(f"tag group must be in [0, 32), got {self.tag}")
        if self.target is TargetKind.LOCAL_STORE and self.remote_node is None:
            raise DmaSizeError("LS-to-LS lists need a remote_node")

    @property
    def size(self) -> int:
        """Total bytes moved by the list."""
        return sum(element.size for element in self.elements)

    @classmethod
    def uniform(
        cls,
        direction: DmaDirection,
        target: TargetKind,
        element_size: int,
        n_elements: int,
        tag: int = 0,
        remote_node: str | None = None,
    ) -> DmaList:
        """Build a list of ``n_elements`` equal chunks, contiguous on the
        remote side — the shape every benchmark in the paper uses."""
        if n_elements < 1:
            raise DmaSizeError(f"n_elements must be >= 1, got {n_elements}")
        elements: list[DmaListElement] = [
            DmaListElement(size=element_size, remote_offset=i * element_size)
            for i in range(n_elements)
        ]
        return cls(
            direction=direction,
            target=target,
            elements=elements,
            tag=tag,
            remote_node=remote_node,
        )


def coalesce_bursts(sizes: Iterable[int], quantum: int) -> list[tuple[int, int]]:
    """Coalesce consecutive element sizes into (count, bytes) bursts of
    at most one EIB grant quantum each — the MFC's list-streaming rule.

    An element larger than the quantum still forms its own burst (the
    flush only triggers when a burst already holds something).
    """
    bursts: list[tuple[int, int]] = []
    count = 0
    nbytes = 0
    for size in sizes:
        if count and nbytes + size > quantum:
            bursts.append((count, nbytes))
            count, nbytes = 0, 0
        count += 1
        nbytes += size
    if count:
        bursts.append((count, nbytes))
    return bursts


def uniform_bursts(
    element_size: int, n_elements: int, quantum: int
) -> list[tuple[int, int]]:
    """:func:`coalesce_bursts` for equal-sized elements, in closed form.

    Equal elements pack ``quantum // element_size`` (at least one) per
    burst, so the burst list is ``full`` maximal bursts plus an optional
    remainder — no per-element loop.  ``tests/test_engine_fast.py``
    pins equality with the generic fold.
    """
    per = quantum // element_size if element_size <= quantum else 1
    full, rest = divmod(n_elements, per)
    bursts = [(per, per * element_size)] * full
    if rest:
        bursts.append((rest, rest * element_size))
    return bursts


def legal_command_sizes(nbytes: int) -> list[int]:
    """Split an arbitrary byte count into legal single-command sizes:
    16 KiB pieces plus a quadword-aligned remainder.

    The sub-quadword tail is dropped (never over-covered), except that a
    request below one quadword rounds up to the 16 B minimum so the
    result is never empty.
    """
    if nbytes <= 0:
        raise DmaSizeError(f"cannot split {nbytes} bytes")
    sizes: list[int] = []
    remaining = nbytes
    while remaining >= MAX_TRANSFER_BYTES:
        sizes.append(MAX_TRANSFER_BYTES)
        remaining -= MAX_TRANSFER_BYTES
    tail = (remaining // 16) * 16
    if tail:
        sizes.append(tail)
    elif not sizes:
        sizes.append(16)
    return sizes


def split_into_commands(
    total_bytes: int,
    element_size: int,
    direction: DmaDirection,
    target: TargetKind,
    tag: int = 0,
    remote_node: str | None = None,
) -> list[DmaCommand]:
    """Split a buffer into equal DMA-elem commands, as the paper's
    DMA-elem benchmarks do.  ``total_bytes`` must divide evenly."""
    if element_size <= 0:
        raise DmaSizeError(f"element_size must be positive, got {element_size}")
    if total_bytes % element_size:
        raise DmaSizeError(
            f"{total_bytes} B does not divide into {element_size} B elements"
        )
    return [
        DmaCommand(
            direction=direction,
            target=target,
            size=element_size,
            tag=tag,
            local_offset=(i * element_size) % (2 ** 18),
            remote_offset=i * element_size,
            remote_node=remote_node,
        )
        for i in range(total_bytes // element_size)
    ]
