"""Machine configuration for the Cell BE model.

Every architectural constant and every calibration knob lives here, in
frozen dataclasses, so an experiment's machine is a value that can be
copied, perturbed (for ablations) and printed into reports.

Two kinds of parameters coexist:

* *Architectural* parameters are documented facts about the CBE (ring
  count, local-store size, 16 KiB DMA limit, bus at half core speed...).
* *Calibration* parameters are abstractions standing in for mechanisms
  the paper observes but cannot control (memory turnaround, requester
  spread penalties, SPU issue costs).  Each one names the paper
  observation it is calibrated against.

``CellConfig.paper_blade()`` returns the configuration matching the
paper's dual-Cell blade at 2.1 GHz.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.cell.errors import ConfigError


@dataclass(frozen=True)
class ClockConfig:
    """Clock domains.  The EIB runs at exactly half the core clock."""

    cpu_hz: float = 2.1e9
    bus_divisor: int = 2

    def __post_init__(self):
        if self.cpu_hz <= 0:
            raise ConfigError(f"cpu_hz must be positive, got {self.cpu_hz}")
        if self.bus_divisor < 1:
            raise ConfigError(f"bus_divisor must be >= 1, got {self.bus_divisor}")

    @property
    def bus_hz(self) -> float:
        return self.cpu_hz / self.bus_divisor

    def cycles_to_seconds(self, cycles: int) -> float:
        """Convert CPU cycles (the simulator's time unit) to seconds."""
        return cycles / self.cpu_hz

    def gbps(self, nbytes: int, cycles: int) -> float:
        """Bandwidth in GB/s (10^9 bytes per second) for a timed transfer."""
        if cycles <= 0:
            raise ConfigError("bandwidth over a non-positive interval")
        return nbytes / self.cycles_to_seconds(cycles) / 1e9


@dataclass(frozen=True)
class EibConfig:
    """Element Interconnect Bus: 4 data rings over 12 elements.

    Each ring moves 16 bytes per bus cycle per transfer, supports up to
    three concurrent transfers with non-overlapping segments, and a
    transfer may travel at most halfway around the ring (6 hops).  Every
    element has one on-ramp and one off-ramp of 16 bytes per bus cycle,
    which is what saturates the cycle-of-SPEs experiment at 33.6 GB/s for
    two SPEs.
    """

    rings_per_direction: int = 2
    max_transfers_per_ring: int = 3
    max_hops: int = 6
    bytes_per_bus_cycle: int = 16
    # Fidelity/speed tradeoff: a transfer holds its path for this much
    # data per grant instead of re-arbitrating every 128 B bus packet.
    grant_quantum_bytes: int = 2048
    # CPU cycles of arbitration dead time per grant (command bus +
    # data arbiter round).  Calibrated against "almost peak" single-pair
    # bandwidth (a few percent under 16.8 GB/s per direction).
    arbitration_cycles: int = 8
    # Re-arbitration dead time added to a grant that had to wait,
    # multiplied by the backlog of still-waiting requests: the data
    # arbiter round-robins among pending requesters, so heavily
    # contended phases lose cycles per grant.  Calibrated against the
    # cycle-of-SPEs results (the paper: "saturating the EIB is
    # counterproductive in terms of performance").  Transfers touching
    # the MIC/IOIF are exempt: their bus interfaces stream across grant
    # boundaries, and memory-side inefficiency is modelled in the banks.
    conflict_retry_cycles: int = 30
    # The IOIF carries 7 GB/s, not the full ring rate: its on/off ramps
    # are modelled with this rate (bytes per CPU cycle at 2.1 GHz).
    ioif_bytes_per_cpu_cycle: float = 7.0e9 / 2.1e9

    def __post_init__(self):
        if self.rings_per_direction < 1:
            raise ConfigError("need at least one ring per direction")
        if self.max_transfers_per_ring < 1:
            raise ConfigError("rings must accept at least one transfer")
        if self.grant_quantum_bytes < 128:
            raise ConfigError("grant quantum below the 128 B EIB packet size")
        if self.bytes_per_bus_cycle <= 0 or self.max_hops < 1:
            raise ConfigError("invalid EIB geometry")


@dataclass(frozen=True)
class MfcConfig:
    """Memory Flow Controller (one per SPE)."""

    queue_depth: int = 16
    max_transfer_bytes: int = 16384
    list_max_elements: int = 2048
    # SPU-side cost (CPU cycles) of programming one DMA-elem command with
    # an unrolled loop.  Calibrated against the paper's observation that
    # DMA-elem bandwidth degrades below 1024 B elements (issue-bound) and
    # is near peak at and above 1024 B (port-bound): a GET+PUT pair costs
    # 120 cycles per 1024 B chunk, exactly the 2 x 128-cycle transfer.
    elem_issue_cycles: int = 60
    # Multiplier applied to issue cost when the benchmark loop is not
    # manually unrolled ("it is imperative to manually unroll loops").
    rolled_loop_issue_factor: int = 4
    # SPU-side cost of programming one DMA-list command (the list itself
    # is built during setup, outside the timed region).
    list_issue_cycles: int = 160
    # MFC-internal gap between consecutive list elements.  Small enough
    # that 128 B list elements stay port-bound: DMA-list bandwidth is
    # flat across element sizes, as the paper measures.
    list_element_cycles: int = 14
    # SPU-side cost of one synchronisation (write tag mask + read tag
    # status), paid every time the code waits for outstanding DMA.
    sync_cycles: int = 100
    # Completion latency from last data beat to tag update.
    completion_cycles: int = 20
    # Extra per-command cost for transfers under the 128 B bus packet:
    # the paper reports "very high performance degradation" below 128 B.
    small_transfer_penalty_cycles: int = 400
    # How many list elements the MFC keeps in flight at once (internal
    # buffering); enough to stay port-bound at 128 B elements.
    list_inflight_limit: int = 8
    # Outstanding-transaction window towards main memory, expressed as a
    # sustained rate (bytes per CPU cycle).  A single SPE cannot exceed
    # this against memory no matter the element size: the paper measures
    # a flat ~10 GB/s (60% of the MIC bank peak) for one SPE.
    memory_path_bytes_per_cpu_cycle: float = 10.2e9 / 2.1e9

    def __post_init__(self):
        if self.queue_depth < 1:
            raise ConfigError("MFC queue depth must be >= 1")
        if self.max_transfer_bytes < 16:
            raise ConfigError("MFC max transfer below one quadword")
        if self.memory_path_bytes_per_cpu_cycle <= 0:
            raise ConfigError("memory path rate must be positive")


@dataclass(frozen=True)
class LocalStoreConfig:
    """The 256 KiB single-ported local store of each SPE."""

    size_bytes: int = 262144
    bytes_per_cpu_cycle: int = 16

    def __post_init__(self):
        if self.size_bytes < 1024:
            raise ConfigError("local store unrealistically small")


@dataclass(frozen=True)
class SpuConfig:
    """Structural limits of the SPU load/store path to its local store.

    The SPU ISA only has 16-byte loads/stores; narrower accesses pay a
    mask/merge overhead (Brokenshire, tip list).  Peak is one quadword
    per cycle: 33.6 GB/s at 2.1 GHz, which the paper reports reaching.
    """

    load_bytes_per_cycle: int = 16
    store_bytes_per_cycle: int = 16
    # Sub-quadword stores are read-modify-write: they cost two LS slots.
    subword_store_penalty: float = 0.5
    # Sub-quadword loads rotate/mask the wanted bytes out of a quadword;
    # the extracted bytes are what counts as delivered bandwidth.
    subword_load_penalty: float = 1.0


@dataclass(frozen=True)
class MemoryConfig:
    """The blade's memory: a local XDR bank behind the MIC plus the
    second chip's bank reached through the IOIF.

    The paper's numbers: 16.8 GB/s peak through the MIC, 7 GB/s through
    the IOIF, 23.8 GB/s combined; one SPE sustains only ~60% of the MIC
    bank ("memory having to do other operations, like refreshing,
    snooping, etc.").
    """

    local_bank_peak_bytes_per_cpu_cycle: float = 16.8e9 / 2.1e9
    remote_bank_peak_bytes_per_cpu_cycle: float = 7.0e9 / 2.1e9
    # Fraction of a command's transfer time the bank stays unavailable to
    # the *same* requester afterwards.  A single streaming requester
    # therefore sees efficiency 1 / (1 + fraction) ~= 0.6; interleaved
    # requesters hide it in each other's transfers.
    same_requester_turnaround_fraction: float = 0.65
    # Cost of switching between requesters (row-buffer and scheduler
    # disturbance), as a fraction of the incoming command's transfer
    # time.  Gives the ~0.92 multi-stream efficiency the 2-4 SPE results
    # imply.
    requester_switch_fraction: float = 0.09
    # Beyond this many concurrently active requesters the switch cost
    # grows: command-queue thrash.  Produces the 8-SPE drop the paper
    # attributes to saturation.
    requester_spread_threshold: int = 4
    requester_spread_factor: float = 0.35
    # Read/write duplex: alternating directions overlap this fraction of
    # the service time (copy reaches 23 GB/s where GET/PUT stop at ~21).
    duplex_overlap_fraction: float = 0.15
    # NUMA page placement: fraction of each buffer's pages on the local
    # bank.  Linux on the blade preferred node 0 but spilled to node 1;
    # 2-SPE GET at ~20 GB/s = ~14 (MIC) + ~6 (IOIF) pins this ratio.
    local_placement_fraction: float = 0.70
    page_bytes: int = 65536
    # Sliding window used to count concurrently active requesters.
    requester_window: int = 16
    # How far into its queue the bank scheduler looks to pick a command
    # from a different requester / opposite direction (command reorder).
    scheduler_window: int = 8

    def __post_init__(self):
        if not 0.0 <= self.local_placement_fraction <= 1.0:
            raise ConfigError("local_placement_fraction outside [0, 1]")
        if self.local_bank_peak_bytes_per_cpu_cycle <= 0:
            raise ConfigError("local bank peak must be positive")
        if self.remote_bank_peak_bytes_per_cpu_cycle <= 0:
            raise ConfigError("remote bank peak must be positive")
        if not 0.0 <= self.duplex_overlap_fraction < 1.0:
            raise ConfigError("duplex_overlap_fraction outside [0, 1)")


@dataclass(frozen=True)
class PpeConfig:
    """Structural model of PPU load/store bandwidth (Figs. 3, 4, 6).

    The PPU issues at most one load or store per cycle per thread and the
    L1 port moves at most one quadword per cycle, so bandwidth is
    proportional to the element size up to a per-level, per-op, per-
    thread-count derating factor.  The factors are calibration values:
    the OCR of the paper lost the figures' absolute axes, but the prose
    fixes the ordering and ratios (see ``repro.core.reference``).

    Factors are expressed as effective bytes per CPU cycle for >= 8 B
    elements; elements below ``saturating_element_bytes`` scale linearly.
    """

    l1_bytes: int = 32768
    l2_bytes: int = 524288
    line_bytes: int = 128
    # Elements of at least this size reach the op's plateau bandwidth.
    saturating_element_bytes: int = 8
    # Effective plateau bytes/cycle per (level, op, threads).
    # L1 load: half the 16 B/cycle peak, no gain from 16 B elements.
    l1_load_plateau: tuple[float, float] = (8.0, 8.0)  # (1 thread, 2 threads)
    # L1 store: limited by the write-through path to L2; 16 B elements
    # and a second thread recover part of it.
    l1_store_plateau: tuple[float, float] = (5.0, 6.4)
    l1_store_16b_bonus: tuple[float, float] = (1.3, 1.6)
    # L1 copy counts read+write bytes; half peak for one thread, 16 B
    # elements show a significant advantage over 8 B.
    l1_copy_plateau: tuple[float, float] = (4.4, 5.2)
    l1_copy_16b_bonus: tuple[float, float] = (1.8, 1.85)
    # L2: bound by outstanding L1 misses; stores almost twice the loads
    # for one thread; per-thread miss structures double with 2 threads.
    l2_load_plateau: tuple[float, float] = (1.6, 2.8)
    l2_store_plateau: tuple[float, float] = (3.0, 4.2)
    l2_copy_plateau: tuple[float, float] = (2.1, 3.4)
    # Memory: loads match L2 loads (same pending-miss limit); stores are
    # far lower (memory write throughput, saturated L2-to-memory queue).
    # Everything here stays under the paper's "very low (under 6)".
    mem_load_plateau: tuple[float, float] = (1.6, 2.8)
    mem_store_plateau: tuple[float, float] = (0.95, 1.2)
    mem_copy_plateau: tuple[float, float] = (0.75, 1.0)

    def plateau(self, level: str, op: str, threads: int) -> float:
        """Effective plateau bytes/cycle for a level ('l1','l2','mem'),
        op ('load','store','copy') and thread count (1 or 2)."""
        if threads not in (1, 2):
            raise ConfigError(f"the PPU has 2 SMT threads; got {threads}")
        name = f"{level}_{op}_plateau"
        if not hasattr(self, name):
            raise ConfigError(f"unknown PPE path {level}/{op}")
        return getattr(self, name)[threads - 1]

    def bonus_16b(self, level: str, op: str, threads: int) -> float:
        """Multiplier for full-quadword (16 B) accesses, where the paper
        reports a distinct step up; 1.0 elsewhere."""
        name = f"{level}_{op}_16b_bonus"
        if hasattr(self, name):
            return getattr(self, name)[threads - 1]
        return 1.0


@dataclass(frozen=True)
class CellConfig:
    """A complete machine: clocks, EIB, MFC, memory, PPE, SPE count."""

    clock: ClockConfig = field(default_factory=ClockConfig)
    eib: EibConfig = field(default_factory=EibConfig)
    mfc: MfcConfig = field(default_factory=MfcConfig)
    local_store: LocalStoreConfig = field(default_factory=LocalStoreConfig)
    spu: SpuConfig = field(default_factory=SpuConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    ppe: PpeConfig = field(default_factory=PpeConfig)
    n_spes: int = 8

    def __post_init__(self):
        if self.n_spes < 1:
            raise ConfigError(f"n_spes must be >= 1, got {self.n_spes}")

    @classmethod
    def paper_blade(cls) -> CellConfig:
        """The paper's machine: one CBE of a dual-Cell blade at 2.1 GHz,
        both memory banks reachable (256 MB local + 256 MB through the
        IOIF), Linux with 64 KB pages, libspe 1.1."""
        return cls()

    def replace(self, **kwargs) -> CellConfig:
        """A copy with top-level fields replaced (ablation helper)."""
        return dataclasses.replace(self, **kwargs)

    # -- derived rates, used throughout the model and the reports --------------

    @property
    def eib_bytes_per_cpu_cycle(self) -> float:
        """Per-transfer (and per-port-direction) EIB rate in bytes/CPU cycle."""
        return self.eib.bytes_per_bus_cycle / self.clock.bus_divisor

    @property
    def eib_peak_gbps(self) -> float:
        """Peak of a single EIB transfer: 16.8 GB/s on the paper machine."""
        return self.eib_bytes_per_cpu_cycle * self.clock.cpu_hz / 1e9

    @property
    def pair_peak_gbps(self) -> float:
        """Simultaneous read+write between two SPEs: 33.6 GB/s."""
        return 2 * self.eib_peak_gbps

    @property
    def local_store_peak_gbps(self) -> float:
        """SPU <-> LS peak: one quadword per CPU cycle, 33.6 GB/s."""
        return self.local_store.bytes_per_cpu_cycle * self.clock.cpu_hz / 1e9

    @property
    def memory_peak_gbps(self) -> float:
        """Combined GET-or-PUT peak through MIC + IOIF: 23.8 GB/s."""
        rate = (
            self.memory.local_bank_peak_bytes_per_cpu_cycle
            + self.memory.remote_bank_peak_bytes_per_cpu_cycle
        )
        return rate * self.clock.cpu_hz / 1e9

    def couples_peak_gbps(self, n_spes: int) -> float:
        """Peak for the couples experiment: 33.6 GB/s per active pair."""
        if n_spes % 2:
            raise ConfigError("couples need an even number of SPEs")
        return (n_spes // 2) * self.pair_peak_gbps

    def node_rate_bytes_per_cpu_cycle(self, node: str) -> float:
        """On/off-ramp rate of an EIB element (IOIFs are slower)."""
        if node.startswith("IOIF"):
            return self.eib.ioif_bytes_per_cpu_cycle
        return self.eib_bytes_per_cpu_cycle

    def describe(self) -> dict[str, float]:
        """Headline rates, for reports."""
        return {
            "cpu_ghz": self.clock.cpu_hz / 1e9,
            "eib_peak_gbps": self.eib_peak_gbps,
            "pair_peak_gbps": self.pair_peak_gbps,
            "local_store_peak_gbps": self.local_store_peak_gbps,
            "memory_peak_gbps": self.memory_peak_gbps,
        }
