"""Exception hierarchy for the Cell BE model.

Everything the model can reject derives from :class:`CellError` so callers
can catch model-level problems without masking kernel bugs.
"""


class CellError(Exception):
    """Base class for all Cell model errors."""


class ConfigError(CellError):
    """An inconsistent or out-of-range machine configuration."""


class DmaError(CellError):
    """Base class for invalid DMA requests."""


class DmaAlignmentError(DmaError):
    """A DMA transfer violates the MFC's alignment rules.

    The MFC requires source and destination addresses to share the same
    16-byte alignment; naturally aligned transfers of 1, 2, 4 or 8 bytes
    are also allowed.  (CBE Programming Handbook, DMA transfer rules.)
    """


class DmaSizeError(DmaError):
    """A DMA transfer size is not representable by a single MFC command.

    A single command moves 1, 2, 4, 8 or a multiple of 16 bytes, up to
    16 KiB.  Larger transfers must be split into multiple commands or
    expressed as a DMA list.
    """


class LocalStoreError(CellError):
    """An allocation does not fit in the 256 KiB local store."""


class MailboxError(CellError):
    """Illegal mailbox operation (e.g. reading an empty mailbox without
    blocking)."""
