"""Exception hierarchy for the Cell BE model.

Everything the model can reject derives from :class:`CellError` so callers
can catch model-level problems without masking kernel bugs.

Injected faults (see :mod:`repro.sim.faults`) derive from
:class:`FaultError`, so callers can catch them separately from
model-usage bugs; :class:`~repro.sim.core.SimulationStall` (a kernel
watchdog diagnosis, not a model error) is re-exported here for the same
one-stop import.
"""

from typing import TYPE_CHECKING

from repro.sim.core import SimulationStall  # noqa: F401  (re-export)

if TYPE_CHECKING:
    from collections.abc import Iterable


class CellError(Exception):
    """Base class for all Cell model errors."""


class ConfigError(CellError):
    """An inconsistent or out-of-range machine configuration."""


class DmaError(CellError):
    """Base class for invalid DMA requests."""


class DmaAlignmentError(DmaError):
    """A DMA transfer violates the MFC's alignment rules.

    The MFC requires source and destination addresses to share the same
    16-byte alignment; naturally aligned transfers of 1, 2, 4 or 8 bytes
    are also allowed.  (CBE Programming Handbook, DMA transfer rules.)
    """


class DmaSizeError(DmaError):
    """A DMA transfer size is not representable by a single MFC command.

    A single command moves 1, 2, 4, 8 or a multiple of 16 bytes, up to
    16 KiB.  Larger transfers must be split into multiple commands or
    expressed as a DMA list.
    """


class LocalStoreError(CellError):
    """An allocation does not fit in the 256 KiB local store."""


class MailboxError(CellError):
    """Illegal mailbox operation (e.g. reading an empty mailbox without
    blocking)."""


class FaultError(CellError):
    """Base class for errors raised by *injected* faults.

    Distinct from the rest of the hierarchy so resilience code can catch
    hardware misbehaviour (and recover) without masking genuine
    model-usage bugs, which keep raising plain :class:`CellError`.
    """


class SpeCrashError(FaultError):
    """An SPE context died mid-program (injected ``spe_crash``).

    Raised inside the SPU program's process; the offload runtime
    quarantines the SPE and re-dispatches its in-flight work.
    """

    def __init__(self, logical_index: int, node: str, after_ops: int):
        super().__init__(
            f"SPE {logical_index} ({node}) crashed after {after_ops} operations"
        )
        self.logical_index = logical_index
        self.node = node
        self.after_ops = after_ops


class DmaTimeoutError(FaultError):
    """A tag-group wait exceeded its timeout and exhausted its retries."""

    def __init__(self, node: str, tags: "Iterable[int]", waited_cycles: int, attempts: int):
        tags = tuple(tags)
        super().__init__(
            f"tag group(s) {tags} on {node} still busy after "
            f"{waited_cycles} cycles and {attempts} attempt(s)"
        )
        self.node = node
        self.tags = tags
        self.waited_cycles = waited_cycles
        self.attempts = attempts
