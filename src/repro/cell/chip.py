"""Assembly of a full Cell BE chip model.

A :class:`CellChip` owns the simulation environment and wires together
the EIB, the memory system, the eight SPEs (placed on the physical ring
according to a logical-to-physical mapping) and the PPE model.  Every
experiment builds a fresh chip per repetition so runs are independent,
exactly like re-running the paper's binary.
"""

from __future__ import annotations

from typing import Any

from repro.cell.config import CellConfig
from repro.cell.eib import Eib
from repro.cell.errors import ConfigError
from repro.cell.memory import MemorySystem
from repro.cell.ppe import PpeModel
from repro.cell.spe import Spe
from repro.cell.topology import RingTopology, SpeMapping
from repro.sim import DmaSanitizer, Environment, FaultEngine, TraceRecorder
from repro.sim.engine_fast import FastEnvironment, resolve_engine


class CellChip:
    """One Cell Broadband Engine (plus the second chip's memory bank
    reachable through the IOIF, as on the paper's blade)."""

    def __init__(
        self,
        config: CellConfig | None = None,
        mapping: SpeMapping | None = None,
        topology: RingTopology | None = None,
        trace: TraceRecorder | None = None,
        faults: FaultEngine | None = None,
        sanitizer: DmaSanitizer | None = None,
        engine: str = "reference",
    ):
        """``trace`` is an optional :class:`repro.sim.TraceRecorder`;
        when given, every model on the chip emits structured records
        into it (see :mod:`repro.sim.trace`).  ``faults`` is an optional
        :class:`repro.sim.FaultEngine`; when given, every model injects
        its typed faults deterministically (see :mod:`repro.sim.faults`).
        ``sanitizer`` is an optional :class:`repro.sim.DmaSanitizer`;
        when given, every MFC reports command enqueue/completion so
        unordered overlapping transfers are flagged as data races (see
        :mod:`repro.sim.sanitizer`).  ``engine`` selects the execution
        engine (``"reference"`` or ``"fast"``); attaching any enabled
        observer falls the chip back to the reference engine, so results
        never depend on the choice (see :mod:`repro.sim.engine_fast`)."""
        self.config = config or CellConfig.paper_blade()
        self.topology = topology or RingTopology()
        self.mapping = mapping or SpeMapping.identity(self.config.n_spes)
        if len(self.mapping) != self.config.n_spes:
            raise ConfigError(
                f"mapping covers {len(self.mapping)} SPEs, config has "
                f"{self.config.n_spes}"
            )
        physical_spes = self.topology.spe_nodes()
        if len(physical_spes) < self.config.n_spes:
            raise ConfigError(
                f"topology has {len(physical_spes)} SPE positions, config "
                f"needs {self.config.n_spes}"
            )
        self.engine = resolve_engine(
            engine, trace=trace, faults=faults, sanitizer=sanitizer
        )
        env_cls = FastEnvironment if self.engine == "fast" else Environment
        self.env = env_cls(trace=trace, faults=faults, sanitizer=sanitizer)
        self.trace = self.env.trace
        self.faults = self.env.faults
        self.sanitizer = self.env.sanitizer
        self.eib = Eib(self.env, self.topology, self.config)
        self.memory = MemorySystem(self.env, self.config)
        self.spes: list[Spe] = [
            Spe(self.env, logical, self.mapping.node(logical), self)
            for logical in range(self.config.n_spes)
        ]
        self.ppe = PpeModel(self.config)

    def spe(self, logical_index: int) -> Spe:
        if not 0 <= logical_index < len(self.spes):
            raise ConfigError(
                f"logical SPE {logical_index} out of range 0..{len(self.spes) - 1}"
            )
        return self.spes[logical_index]

    def run(self, until: Any | None = None, max_events: int | None = None,
            stall_after: int | None = None) -> Any:
        """Advance the simulation (delegates to the environment; the
        watchdog knobs are forwarded — see
        :meth:`repro.sim.Environment.run`)."""
        return self.env.run(
            until=until, max_events=max_events, stall_after=stall_after
        )

    def elapsed_seconds(self) -> float:
        return self.config.clock.cycles_to_seconds(self.env.now)

    def gbps(self, nbytes: int) -> float:
        """Bandwidth of ``nbytes`` moved over the elapsed simulation time."""
        return self.config.clock.gbps(nbytes, self.env.now)

    def __repr__(self) -> str:
        return (
            f"CellChip(n_spes={self.config.n_spes}, "
            f"mapping={self.mapping.physical_of}, now={self.env.now})"
        )
