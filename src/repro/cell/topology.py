"""Physical layout of the EIB ring and the logical-to-physical SPE mapping.

The EIB connects twelve elements in a fixed physical order (Krolak's MPR
presentation; Chen et al.).  Data travels clockwise on two rings and
counterclockwise on the other two, and a transfer may move at most six
hops.  Which *logical* SPE (the index libspe hands the programmer) sits
at which *physical* position is decided by the OS/runtime and cannot be
controlled or even observed through the libspe 1.1 API — which is why the
paper runs every experiment ten times and reports min/max/median/mean.
The model reproduces that with seeded random mappings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Sequence

from repro.cell.errors import ConfigError

#: Physical ring order of the CBE's twelve EIB elements.  SPE names here
#: are *physical* positions.
DEFAULT_RING_ORDER: tuple[str, ...] = (
    "PPE",
    "SPE1",
    "SPE3",
    "SPE5",
    "SPE7",
    "IOIF1",
    "IOIF0",
    "SPE6",
    "SPE4",
    "SPE2",
    "SPE0",
    "MIC",
)

#: Direction constants: +1 walks the tuple forward, -1 backward.
CLOCKWISE = 1
COUNTERCLOCKWISE = -1


class RingTopology:
    """The ring: node order, spans, shortest paths.

    A *span* is the physical wire segment between ring neighbours; span
    ``i`` joins node ``i`` and node ``i + 1`` (mod N).  A path is the
    tuple of spans a transfer occupies, which is what the arbiter checks
    for overlap.
    """

    def __init__(self, order: Sequence[str] = DEFAULT_RING_ORDER):
        if len(order) != len(set(order)):
            raise ConfigError(f"duplicate nodes in ring order: {order}")
        if len(order) < 3:
            raise ConfigError("a ring needs at least three nodes")
        self.order: tuple[str, ...] = tuple(order)
        self._index = {node: i for i, node in enumerate(self.order)}
        # Paths and routing decisions are pure functions of the fixed
        # ring order; memoise them (the EIB arbiter asks constantly).
        self._path_cache: dict = {}
        self._directions_cache: dict = {}

    def __len__(self) -> int:
        return len(self.order)

    def __contains__(self, node: str) -> bool:
        return node in self._index

    def index(self, node: str) -> int:
        if node not in self._index:
            raise ConfigError(f"unknown EIB element {node!r}")
        return self._index[node]

    def hops(self, src: str, dst: str, direction: int) -> int:
        """Number of spans travelled from src to dst in a direction."""
        self._check_direction(direction)
        delta = (self.index(dst) - self.index(src)) % len(self)
        if direction == CLOCKWISE:
            return delta
        return (len(self) - delta) % len(self)

    def path(self, src: str, dst: str, direction: int) -> tuple[int, ...]:
        """Spans occupied travelling from src to dst in a direction."""
        key = (src, dst, direction)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        self._check_direction(direction)
        if src == dst:
            raise ConfigError(f"transfer from {src!r} to itself")
        n = len(self)
        i = self.index(src)
        spans: list[int] = []
        for _ in range(self.hops(src, dst, direction)):
            if direction == CLOCKWISE:
                spans.append(i)
                i = (i + 1) % n
            else:
                i = (i - 1) % n
                spans.append(i)
        result = tuple(spans)
        self._path_cache[key] = result
        return result

    def directions_by_distance(self, src: str, dst: str) -> list[int]:
        """Directions ordered shortest-first, restricted to legal (at most
        half-ring) travel.  Both are returned on a tie."""
        key = (src, dst)
        cached = self._directions_cache.get(key)
        if cached is not None:
            return cached
        cw = self.hops(src, dst, CLOCKWISE)
        ccw = self.hops(src, dst, COUNTERCLOCKWISE)
        half = len(self) // 2
        candidates = []
        if cw <= half:
            candidates.append((cw, CLOCKWISE))
        if ccw <= half:
            candidates.append((ccw, COUNTERCLOCKWISE))
        if not candidates:
            raise ConfigError(f"no legal route from {src!r} to {dst!r}")
        candidates.sort()
        result = [direction for _hops, direction in candidates]
        self._directions_cache[key] = result
        return result

    @staticmethod
    def _check_direction(direction: int) -> None:
        if direction not in (CLOCKWISE, COUNTERCLOCKWISE):
            raise ConfigError(f"direction must be +1 or -1, got {direction}")

    def spe_nodes(self) -> list[str]:
        """Physical SPE node names in physical-index order."""
        return sorted(
            (node for node in self.order if node.startswith("SPE")),
            key=lambda node: int(node[3:]),
        )


@dataclass(frozen=True)
class SpeMapping:
    """Logical SPE index -> physical SPE index permutation.

    ``physical_of[i]`` is the physical position of logical SPE ``i``.
    """

    physical_of: tuple[int, ...]

    def __post_init__(self):
        if sorted(self.physical_of) != list(range(len(self.physical_of))):
            raise ConfigError(
                f"mapping must be a permutation of 0..{len(self.physical_of) - 1}, "
                f"got {self.physical_of}"
            )

    def __len__(self) -> int:
        return len(self.physical_of)

    def node(self, logical: int) -> str:
        """Physical EIB node name of a logical SPE."""
        if not 0 <= logical < len(self.physical_of):
            raise ConfigError(
                f"logical SPE {logical} out of range 0..{len(self.physical_of) - 1}"
            )
        return f"SPE{self.physical_of[logical]}"

    @classmethod
    def identity(cls, n_spes: int = 8) -> SpeMapping:
        return cls(tuple(range(n_spes)))

    @classmethod
    def random(cls, seed: int, n_spes: int = 8) -> SpeMapping:
        """The mapping the OS happened to pick on one run: a seeded
        shuffle, so runs are reproducible and a seed sweep plays the role
        of the paper's ten repetitions."""
        rng = random.Random(seed)
        physical = list(range(n_spes))
        rng.shuffle(physical)
        return cls(tuple(physical))
