"""The 256 KiB local store of an SPE.

The model does not carry data contents (bandwidth experiments never look
at values), but it does enforce the one hard constraint the paper's codes
had to respect: everything — code, DMA buffers, DMA lists — must fit in
256 KiB.  A simple named bump allocator supports the double-buffering
layouts the benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.cell.config import LocalStoreConfig
from repro.cell.errors import LocalStoreError

if TYPE_CHECKING:
    from repro.sim.sanitizer import DmaSanitizer


@dataclass(frozen=True)
class Allocation:
    """A named region of the local store."""

    name: str
    offset: int
    size: int

    @property
    def end(self) -> int:
        return self.offset + self.size


class LocalStore:
    """Bump allocator over the LS address space."""

    def __init__(self, config: LocalStoreConfig | None = None,
                 node: str | None = None,
                 sanitizer: DmaSanitizer | None = None):
        """``node``/``sanitizer`` let the DMA hazard sanitizer resolve
        flagged byte ranges back to named allocations (see
        :mod:`repro.sim.sanitizer`); both default to off."""
        self.config = config or LocalStoreConfig()
        self._cursor = 0
        self._allocations: dict[str, Allocation] = {}
        self._anonymous = 0
        self._node = node
        self._sanitizer = sanitizer
        self._sanitizing = sanitizer is not None and sanitizer.enabled

    @property
    def size(self) -> int:
        return self.config.size_bytes

    @property
    def used(self) -> int:
        return self._cursor

    @property
    def remaining(self) -> int:
        return self.size - self._cursor

    def alloc(self, nbytes: int, name: str | None = None, align: int = 16) -> Allocation:
        """Reserve ``nbytes`` aligned to ``align``; raises when it cannot fit."""
        if nbytes <= 0:
            raise LocalStoreError(f"allocation of {nbytes} bytes")
        if align <= 0 or align & (align - 1):
            raise LocalStoreError(f"alignment must be a power of two, got {align}")
        if name is None:
            name = f"anon{self._anonymous}"
            self._anonymous += 1
        if name in self._allocations:
            raise LocalStoreError(f"allocation {name!r} already exists")
        offset = (self._cursor + align - 1) & ~(align - 1)
        if offset + nbytes > self.size:
            raise LocalStoreError(
                f"{name!r} ({nbytes} B at {offset:#x}) exceeds the "
                f"{self.size} B local store ({self.remaining} B free)"
            )
        allocation = Allocation(name=name, offset=offset, size=nbytes)
        self._allocations[name] = allocation
        self._cursor = offset + nbytes
        if self._sanitizing:
            self._sanitizer.note_allocation(self._node, allocation)
        return allocation

    def get(self, name: str) -> Allocation:
        if name not in self._allocations:
            raise LocalStoreError(f"no allocation named {name!r}")
        return self._allocations[name]

    def reset(self) -> None:
        """Release everything (a fresh SPU program image)."""
        self._cursor = 0
        self._allocations.clear()
        self._anonymous = 0

    def __contains__(self, name: str) -> bool:
        return name in self._allocations

    def __repr__(self) -> str:
        return (
            f"LocalStore(used={self.used}, free={self.remaining}, "
            f"allocations={sorted(self._allocations)})"
        )
