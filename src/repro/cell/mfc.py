"""The Memory Flow Controller: one DMA engine per SPE.

The MFC owns a 16-entry command queue.  Commands complete out of order;
the SPU observes completion through *tag groups* (32 tags; a command
joins one group, and the SPU can wait until a set of groups has no
outstanding commands).  Everything the paper's programming rules touch is
modelled:

* queue-full back-pressure (an ``enqueue`` blocks when 16 commands are in
  flight — which is why delaying synchronisation matters: it keeps the
  queue saturated);
* DMA-elem vs DMA-list (a list occupies a single queue slot and the MFC
  streams its elements with a small internal gap, so list bandwidth is
  flat down to 128 B elements);
* the outstanding-transaction window towards main memory that caps a
  single SPE at ~10 GB/s aggregate regardless of direction;
* the sub-128 B penalty.

The MFC does not know about experiment policy (sync-every-k, unrolling):
that lives in the SPU program (:mod:`repro.libspe`).
"""

from __future__ import annotations

import math
from collections.abc import Generator, Iterable

from repro.cell.dma import (
    DmaCommand,
    DmaDirection,
    DmaList,
    EFFICIENT_MIN_BYTES,
    TargetKind,
)
from repro.cell.errors import CellError
from repro.sim import AllOf, Environment, Event, Resource
from repro.sim.trace import MfcComplete, MfcEnqueue, MfcIssue


class Mfc:
    """The DMA engine of one SPE (identified by its physical node name)."""

    def __init__(self, env: Environment, node: str, chip: CellChip):
        self.env = env
        self.node = node
        self.chip = chip
        self.config = chip.config
        self._slots = Resource(env, capacity=self.config.mfc.queue_depth)
        # The PPE-visible proxy command queue is shallower (8 entries).
        self._proxy_slots = Resource(env, capacity=8)
        self._outstanding: dict[int, int] = {tag: 0 for tag in range(32)}
        self._tag_waiters: list[tuple[Event, tuple[int, ...]]] = []
        # Ordering state for fenced/barriered commands.
        self._tag_enqueued: dict[int, int] = {tag: 0 for tag in range(32)}
        self._tag_completed: dict[int, int] = {tag: 0 for tag in range(32)}
        self._total_enqueued = 0
        self._total_completed = 0
        self._order_waiters: list[tuple[Event, int | None, int]] = []
        # Next cycle at which the memory path can dispatch another byte.
        self._memory_path_free_at = 0
        self.commands_completed = 0
        self.bytes_transferred = 0
        # Monotonic command id for the trace stream (deterministic).
        self._cmd_seq = 0
        self._trace = env.trace
        self._tracing = env.trace.enabled
        # Fault injection (repro.sim.faults); cached guard keeps the
        # no-fault path to one branch per command.
        self._faults = env.faults
        self._faulting = env.faults.enabled
        # DMA hazard sanitizer (repro.sim.sanitizer); same cached-guard
        # pattern, and the sanitizer is a pure observer, so enabling it
        # cannot perturb the event stream.
        self._sanitizer = env.sanitizer
        self._sanitizing = env.sanitizer.enabled
        # Dropped (injected-fault) commands parked per tag, waiting for
        # the SPU program to re-drive them.
        self._parked: dict[int, list[Event]] = {}
        self.commands_redriven = 0

    # -- SPU-facing API ----------------------------------------------------------

    def enqueue(self, command: DmaCommand | DmaList) -> Generator[Event, object, None]:
        """Put a command (DmaCommand or DmaList) in the queue.

        A sub-generator (``yield from``): it returns as soon as the
        command occupies a queue slot, blocking only when all slots are
        full.  The transfer itself proceeds asynchronously.
        """
        if not isinstance(command, (DmaCommand, DmaList)):
            raise CellError(f"cannot enqueue {command!r}")
        slot = self._slots.request()
        yield slot
        ordering = self._ordering_threshold(command)
        self._register_enqueue(command)
        cmd_id = (
            self._trace_enqueue(command, self._slots)
            if self._tracing
            else 0
        )
        # Executors are daemons: a command parked by an injected drop may
        # never resume (when its SPU died before re-driving it), and that
        # must not read as a scheduler deadlock at end of run — the
        # blocked SPU process itself is what the diagnostics should name.
        if isinstance(command, DmaCommand):
            self.env.process(
                self._execute_command(
                    command, slot, self._slots, ordering, cmd_id, self.env.now
                ),
                daemon=True,
            )
        else:
            self.env.process(
                self._execute_list(command, slot, cmd_id, self.env.now),
                daemon=True,
            )

    def proxy_enqueue(self, command: DmaCommand) -> Event:
        """PPE-initiated (proxy) DMA through the MFC's MMIO registers.

        The proxy queue is 8 deep and needs no SPU involvement; the
        returned event fires when the transfer completes.  This is how
        the PPE stages data into an SPE before starting its program.
        """
        if not isinstance(command, DmaCommand):
            raise CellError("the proxy queue takes single commands only")
        done = self.env.event()
        self.env.process(self._proxy_process(command, done))
        return done

    def _proxy_process(self, command: DmaCommand, done: Event):
        slot = self._proxy_slots.request()
        yield slot
        ordering = self._ordering_threshold(command)
        self._register_enqueue(command)
        cmd_id = (
            self._trace_enqueue(command, self._proxy_slots)
            if self._tracing
            else 0
        )
        yield self.env.process(
            self._execute_command(
                command, slot, self._proxy_slots, ordering, cmd_id, self.env.now
            )
        )
        done.succeed()

    def _trace_enqueue(self, command, slots: Resource) -> int:
        """Assign the command's trace id and record its enqueue.
        Only called when a recorder is attached."""
        self._cmd_seq += 1
        self._trace.emit(
            MfcEnqueue(
                ts=self.env.now,
                node=self.node,
                cmd_id=self._cmd_seq,
                tag=command.tag,
                nbytes=command.size,
                is_list=isinstance(command, DmaList),
                queue_depth=slots.count,
            )
        )
        return self._cmd_seq

    def outstanding(self, tag: int) -> int:
        """Commands of a tag group still in flight."""
        return self._outstanding[tag]

    def tag_group_quiet(self, tags: Iterable[int]) -> Event:
        """Event that fires when every listed tag group is empty —
        the model's ``mfc_read_tag_status_all``."""
        tags = tuple(tags)
        for tag in tags:
            if tag not in self._outstanding:
                raise CellError(f"unknown tag group {tag}")
        event = self.env.event()
        if all(self._outstanding[tag] == 0 for tag in tags):
            event.succeed()
            return event
        self._tag_waiters.append((event, tags))
        return event

    def redrive(self, tags: Iterable[int]) -> int:
        """Restart the parked (dropped) commands of the listed tag
        groups — the model's MFC command re-drive after a transfer was
        lost.  Returns how many commands were restarted."""
        restarted = 0
        for tag in tags:
            parked = self._parked.pop(tag, None)
            if not parked:
                continue
            for resume in parked:
                resume.succeed()
                restarted += 1
        self.commands_redriven += restarted
        return restarted

    def parked_commands(self, tags: Iterable[int] | None = None) -> int:
        """Dropped commands currently waiting for a re-drive."""
        if tags is None:
            return sum(len(parked) for parked in self._parked.values())
        return sum(len(self._parked.get(tag, ())) for tag in tags)

    @property
    def queue_free_slots(self) -> int:
        return self.config.mfc.queue_depth - self._slots.count

    # -- ordering (fence / barrier) ------------------------------------------------

    def _ordering_threshold(self, command) -> tuple[int | None, int] | None:
        """(tag-or-None, completion count to wait for), or None."""
        if isinstance(command, DmaCommand) and command.barrier:
            return (None, self._total_enqueued)
        if isinstance(command, DmaCommand) and command.fence:
            return (command.tag, self._tag_enqueued[command.tag])
        return None

    def _register_enqueue(self, command) -> None:
        self._tag_enqueued[command.tag] += 1
        self._total_enqueued += 1
        self._outstanding[command.tag] += 1
        if self._sanitizing:
            self._sanitizer.command_enqueued(self.node, command)

    def _ordering_satisfied(self, tag: int | None, threshold: int) -> bool:
        if tag is None:
            return self._total_completed >= threshold
        return self._tag_completed[tag] >= threshold

    def _wait_ordering(self, ordering: tuple[int | None, int] | None):
        if ordering is None:
            return
        tag, threshold = ordering
        if self._ordering_satisfied(tag, threshold):
            return
        event = self.env.event()
        self._order_waiters.append((event, tag, threshold))
        yield event

    # -- command execution -------------------------------------------------------

    def _execute_command(
        self,
        command: DmaCommand,
        slot,
        slots: Resource,
        ordering: tuple[int | None, int] | None = None,
        cmd_id: int = 0,
        enqueued_at: int = 0,
    ):
        yield from self._wait_ordering(ordering)
        if self._faulting:
            yield from self._inject_faults(command.tag)
        issued_at = self.env.now
        if self._tracing:
            self._trace.emit(
                MfcIssue(
                    ts=issued_at,
                    node=self.node,
                    cmd_id=cmd_id,
                    tag=command.tag,
                    nbytes=command.size,
                )
            )
        yield from self._move(
            direction=command.direction,
            target=command.target,
            remote_node=command.remote_node,
            nbytes=command.size,
        )
        yield self.env.timeout(self.config.mfc.completion_cycles)
        self._finish(command, slot, slots)
        if self._tracing:
            self._trace.emit(
                MfcComplete(
                    ts=self.env.now,
                    node=self.node,
                    cmd_id=cmd_id,
                    tag=command.tag,
                    nbytes=command.size,
                    enqueued_at=enqueued_at,
                    issued_at=issued_at,
                )
            )

    def _execute_list(self, dma_list: DmaList, slot, cmd_id: int = 0,
                      enqueued_at: int = 0):
        """Stream the list's elements.

        The MFC fetches list elements back-to-back and feeds the bus a
        continuous packet stream, so consecutive elements coalesce into
        bus bursts of up to one grant quantum: this is why DMA-list
        bandwidth is flat across element sizes where DMA-elem pays a
        per-command issue cost.  Element fetch time is still charged per
        element, and burst concurrency is bounded by the MFC's internal
        buffering.
        """
        if self._faulting:
            yield from self._inject_faults(dma_list.tag)
        inflight = Resource(self.env, capacity=self.config.mfc.list_inflight_limit)
        issued_at = self.env.now
        if self._tracing:
            self._trace.emit(
                MfcIssue(
                    ts=issued_at,
                    node=self.node,
                    cmd_id=cmd_id,
                    tag=dma_list.tag,
                    nbytes=dma_list.size,
                )
            )
        pending: list[Event] = []
        for n_elements, nbytes in self._list_bursts(dma_list.elements):
            yield self.env.timeout(self.config.mfc.list_element_cycles * n_elements)
            token = inflight.request()
            yield token
            done = self.env.event()
            self.env.process(
                self._list_burst(dma_list, nbytes, inflight, token, done),
                daemon=True,
            )
            pending.append(done)
        if pending:
            yield AllOf(self.env, pending)
        yield self.env.timeout(self.config.mfc.completion_cycles)
        self._finish(dma_list, slot, self._slots)
        if self._tracing:
            self._trace.emit(
                MfcComplete(
                    ts=self.env.now,
                    node=self.node,
                    cmd_id=cmd_id,
                    tag=dma_list.tag,
                    nbytes=dma_list.size,
                    enqueued_at=enqueued_at,
                    issued_at=issued_at,
                )
            )

    def _inject_faults(self, tag: int):
        """Fault probes on the issue path (only reached when an engine
        is attached): an injected stall delays the command; an injected
        drop parks it until :meth:`redrive` — the SPU side notices via a
        tag-group timeout and re-drives (see ``SpuRuntime.wait_tags``)."""
        stall = self._faults.mfc_stall_cycles(self.node)
        if stall:
            yield self.env.timeout(stall)
        if self._faults.mfc_dropped(self.node):
            resume = self.env.event()
            self._parked.setdefault(tag, []).append(resume)
            yield resume

    def _list_bursts(self, elements) -> list[tuple[int, int]]:
        """Coalesce consecutive list elements into (count, bytes) bursts
        of at most one EIB grant quantum each."""
        quantum = self.config.eib.grant_quantum_bytes
        bursts: list[tuple[int, int]] = []
        count = 0
        nbytes = 0
        for element in elements:
            if count and nbytes + element.size > quantum:
                bursts.append((count, nbytes))
                count, nbytes = 0, 0
            count += 1
            nbytes += element.size
        if count:
            bursts.append((count, nbytes))
        return bursts

    def _list_burst(
        self,
        dma_list: DmaList,
        nbytes: int,
        inflight: Resource,
        token,
        done: Event,
    ):
        yield from self._move(
            direction=dma_list.direction,
            target=dma_list.target,
            remote_node=dma_list.remote_node,
            nbytes=nbytes,
        )
        inflight.release(token)
        done.succeed()

    def _move(
        self,
        direction: DmaDirection,
        target: TargetKind,
        remote_node,
        nbytes: int,
    ):
        """The data movement common to commands and list elements."""
        if nbytes < EFFICIENT_MIN_BYTES:
            yield self.env.timeout(self.config.mfc.small_transfer_penalty_cycles)
        if target is TargetKind.MAIN_MEMORY:
            yield from self._pace_memory_path(nbytes)
            bank = self.chip.memory.assign_bank(self.node)
            if direction is DmaDirection.GET:
                yield self.chip.memory.read(self.node, nbytes, bank)
                yield from self.chip.eib.transfer(bank.node, self.node, nbytes)
            else:
                yield from self.chip.eib.transfer(self.node, bank.node, nbytes)
                yield self.chip.memory.write(self.node, nbytes, bank)
        else:
            if remote_node == self.node:
                raise CellError("LS-to-LS DMA with itself")
            if direction is DmaDirection.GET:
                yield from self.chip.eib.transfer(remote_node, self.node, nbytes)
            else:
                yield from self.chip.eib.transfer(self.node, remote_node, nbytes)
        self.bytes_transferred += nbytes

    def _pace_memory_path(self, nbytes: int):
        """Outstanding-transaction window to main memory, expressed as a
        dispatch pacer: a single MFC cannot push more than ~10 GB/s of
        GET+PUT traffic at memory no matter how many commands it queues."""
        rate = self.config.mfc.memory_path_bytes_per_cpu_cycle
        start = max(self.env.now, self._memory_path_free_at)
        self._memory_path_free_at = start + math.ceil(nbytes / rate)
        if start > self.env.now:
            yield self.env.timeout(start - self.env.now)

    def _finish(self, command, slot, slots: Resource) -> None:
        slots.release(slot)
        self._outstanding[command.tag] -= 1
        if self._outstanding[command.tag] < 0:
            raise CellError(f"tag group {command.tag} under-run")
        self._tag_completed[command.tag] += 1
        self._total_completed += 1
        self.commands_completed += 1
        if self._sanitizing:
            self._sanitizer.command_completed(self.node, command)
        self._wake_tag_waiters()
        self._wake_order_waiters()

    def _wake_tag_waiters(self) -> None:
        still_waiting = []
        for event, tags in self._tag_waiters:
            if all(self._outstanding[tag] == 0 for tag in tags):
                event.succeed()
            else:
                still_waiting.append((event, tags))
        self._tag_waiters = still_waiting

    def _wake_order_waiters(self) -> None:
        still_waiting = []
        for event, tag, threshold in self._order_waiters:
            if self._ordering_satisfied(tag, threshold):
                event.succeed()
            else:
                still_waiting.append((event, tag, threshold))
        self._order_waiters = still_waiting
