"""The Memory Flow Controller: one DMA engine per SPE.

The MFC owns a 16-entry command queue.  Commands complete out of order;
the SPU observes completion through *tag groups* (32 tags; a command
joins one group, and the SPU can wait until a set of groups has no
outstanding commands).  Everything the paper's programming rules touch is
modelled:

* queue-full back-pressure (an ``enqueue`` blocks when 16 commands are in
  flight — which is why delaying synchronisation matters: it keeps the
  queue saturated);
* DMA-elem vs DMA-list (a list occupies a single queue slot and the MFC
  streams its elements with a small internal gap, so list bandwidth is
  flat down to 128 B elements);
* the outstanding-transaction window towards main memory that caps a
  single SPE at ~10 GB/s aggregate regardless of direction;
* the sub-128 B penalty.

The MFC does not know about experiment policy (sync-every-k, unrolling):
that lives in the SPU program (:mod:`repro.libspe`).
"""

from __future__ import annotations

import math
from collections import deque
from heapq import heappush
from collections.abc import Generator, Iterable
from typing import Any

from repro.cell.dma import (
    DmaCommand,
    DmaDirection,
    DmaList,
    EFFICIENT_MIN_BYTES,
    TargetKind,
    coalesce_bursts,
    uniform_bursts,
)
from repro.cell.eib import HOP_LATENCY_CYCLES
from repro.cell.errors import CellError
from repro.cell.memory import READ, WRITE
from repro.sim import AllOf, Environment, Event, Resource
from repro.sim.core import Completion
from repro.sim.engine_fast import FastActor
from repro.sim.trace import MfcComplete, MfcEnqueue, MfcIssue


class _FastSlots:
    """MFC queue-slot accounting for the coalescing engine.

    The reference engine's :class:`~repro.sim.resources.Resource` makes
    a slot grant cost two heap slots (the request's succeed plus the
    resume relay); those are an adjacent same-time pair, so the fast
    path merges them into the single ``_after(0, ...)`` hop its caller
    schedules.  A queue-full wait costs one slot at release in both
    engines: :meth:`release` wakes the oldest waiter directly.
    """

    __slots__ = ("capacity", "count", "queue")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.count = 0
        self.queue: deque[Completion] = deque()

    def acquire(self) -> bool:
        """Claim a slot now if one is free."""
        if self.count < self.capacity:
            self.count += 1
            return True
        return False

    def wait(self, waiter: Completion) -> None:
        self.queue.append(waiter)

    def release(self, request=None) -> None:
        """Free a slot, handing it straight to the oldest waiter —
        signature-compatible with Resource.release for Mfc._finish."""
        if self.queue:
            self.queue.popleft().succeed()
        else:
            self.count -= 1


class Mfc:
    """The DMA engine of one SPE (identified by its physical node name)."""

    def __init__(self, env: Environment, node: str, chip: CellChip):
        self.env = env
        self.node = node
        self.chip = chip
        self.config = chip.config
        self._slots = Resource(env, capacity=self.config.mfc.queue_depth)
        # The PPE-visible proxy command queue is shallower (8 entries).
        self._proxy_slots = Resource(env, capacity=8)
        self._outstanding: dict[int, int] = {tag: 0 for tag in range(32)}
        # Reference waiters are Events; fast-engine waiters are actors.
        self._tag_waiters: list[tuple[Completion, tuple[int, ...]]] = []
        # Ordering state for fenced/barriered commands.
        self._tag_enqueued: dict[int, int] = {tag: 0 for tag in range(32)}
        self._tag_completed: dict[int, int] = {tag: 0 for tag in range(32)}
        self._total_enqueued = 0
        self._total_completed = 0
        self._order_waiters: list[tuple[Event, int | None, int]] = []
        # Next cycle at which the memory path can dispatch another byte.
        self._memory_path_free_at = 0
        self.commands_completed = 0
        self.bytes_transferred = 0
        # Monotonic command id for the trace stream (deterministic).
        self._cmd_seq = 0
        self._trace = env.trace
        self._tracing = env.trace.enabled
        # Fault injection (repro.sim.faults); cached guard keeps the
        # no-fault path to one branch per command.
        self._faults = env.faults
        self._faulting = env.faults.enabled
        # DMA hazard sanitizer (repro.sim.sanitizer); same cached-guard
        # pattern, and the sanitizer is a pure observer, so enabling it
        # cannot perturb the event stream.
        self._sanitizer = env.sanitizer
        self._sanitizing = env.sanitizer.enabled
        # Dropped (injected-fault) commands parked per tag, waiting for
        # the SPU program to re-drive them.
        self._parked: dict[int, list[Event]] = {}
        self.commands_redriven = 0
        if env.coalescing:
            # Fast-engine state: slot accounting plus the config scalars
            # the per-chunk hot path reads (attribute chains through the
            # config dataclasses are measurable at millions of chunks).
            self._fast_slots: _FastSlots | None = _FastSlots(
                self.config.mfc.queue_depth
            )
            self._fast_quantum = self.config.eib.grant_quantum_bytes
            self._fast_arbitration = self.config.eib.arbitration_cycles
            self._fast_completion = self.config.mfc.completion_cycles
            self._fast_elem_cycles = self.config.mfc.list_element_cycles
            self._fast_small_penalty = self.config.mfc.small_transfer_penalty_cycles
            self._fast_mem_rate = self.config.mfc.memory_path_bytes_per_cpu_cycle
            self._fast_inflight_limit = self.config.mfc.list_inflight_limit
            # Direct bus/memory handles (built before the SPEs) and the
            # memoised memory-path occupancy per transfer size.
            self._fast_eib = chip.eib
            self._fast_memory = chip.memory
            self._fast_mem_cycles: dict[int, int] = {}
            # Retired FastDmaCommand shells for reuse: a finished
            # command is fully dead (no heap entry, no waiter list holds
            # it), so the next issue restarts it instead of allocating.
            self._fast_pool: list[FastDmaCommand] = []
        else:
            self._fast_slots = None

    # -- SPU-facing API ----------------------------------------------------------

    def enqueue(self, command: DmaCommand | DmaList) -> Generator[Event, object, None]:
        """Put a command (DmaCommand or DmaList) in the queue.

        A sub-generator (``yield from``): it returns as soon as the
        command occupies a queue slot, blocking only when all slots are
        full.  The transfer itself proceeds asynchronously.
        """
        if not isinstance(command, (DmaCommand, DmaList)):
            raise CellError(f"cannot enqueue {command!r}")
        slot = self._slots.request()
        yield slot
        ordering = self._ordering_threshold(command)
        self._register_enqueue(command)
        cmd_id = (
            self._trace_enqueue(command, self._slots)
            if self._tracing
            else 0
        )
        # Executors are daemons: a command parked by an injected drop may
        # never resume (when its SPU died before re-driving it), and that
        # must not read as a scheduler deadlock at end of run — the
        # blocked SPU process itself is what the diagnostics should name.
        if isinstance(command, DmaCommand):
            self.env.process(
                self._execute_command(
                    command, slot, self._slots, ordering, cmd_id, self.env.now
                ),
                daemon=True,
            )
        else:
            self.env.process(
                self._execute_list(command, slot, cmd_id, self.env.now),
                daemon=True,
            )

    def proxy_enqueue(self, command: DmaCommand) -> Event:
        """PPE-initiated (proxy) DMA through the MFC's MMIO registers.

        The proxy queue is 8 deep and needs no SPU involvement; the
        returned event fires when the transfer completes.  This is how
        the PPE stages data into an SPE before starting its program.
        """
        if not isinstance(command, DmaCommand):
            raise CellError("the proxy queue takes single commands only")
        done = self.env.event()
        self.env.process(self._proxy_process(command, done))
        return done

    def _proxy_process(self, command: DmaCommand, done: Event):
        slot = self._proxy_slots.request()
        yield slot
        ordering = self._ordering_threshold(command)
        self._register_enqueue(command)
        cmd_id = (
            self._trace_enqueue(command, self._proxy_slots)
            if self._tracing
            else 0
        )
        yield self.env.process(
            self._execute_command(
                command, slot, self._proxy_slots, ordering, cmd_id, self.env.now
            )
        )
        done.succeed()

    def _trace_enqueue(self, command, slots: Resource) -> int:
        """Assign the command's trace id and record its enqueue.
        Only called when a recorder is attached."""
        self._cmd_seq += 1
        self._trace.emit(
            MfcEnqueue(
                ts=self.env.now,
                node=self.node,
                cmd_id=self._cmd_seq,
                tag=command.tag,
                nbytes=command.size,
                is_list=isinstance(command, DmaList),
                queue_depth=slots.count,
            )
        )
        return self._cmd_seq

    def outstanding(self, tag: int) -> int:
        """Commands of a tag group still in flight."""
        return self._outstanding[tag]

    def tag_group_quiet(self, tags: Iterable[int]) -> Event:
        """Event that fires when every listed tag group is empty —
        the model's ``mfc_read_tag_status_all``."""
        tags = tuple(tags)
        for tag in tags:
            if tag not in self._outstanding:
                raise CellError(f"unknown tag group {tag}")
        event = self.env.event()
        if all(self._outstanding[tag] == 0 for tag in tags):
            event.succeed()
            return event
        self._tag_waiters.append((event, tags))
        return event

    def redrive(self, tags: Iterable[int]) -> int:
        """Restart the parked (dropped) commands of the listed tag
        groups — the model's MFC command re-drive after a transfer was
        lost.  Returns how many commands were restarted."""
        restarted = 0
        for tag in tags:
            parked = self._parked.pop(tag, None)
            if not parked:
                continue
            for resume in parked:
                resume.succeed()
                restarted += 1
        self.commands_redriven += restarted
        return restarted

    def parked_commands(self, tags: Iterable[int] | None = None) -> int:
        """Dropped commands currently waiting for a re-drive."""
        if tags is None:
            return sum(len(parked) for parked in self._parked.values())
        return sum(len(self._parked.get(tag, ())) for tag in tags)

    @property
    def queue_free_slots(self) -> int:
        if self._fast_slots is not None:
            return self.config.mfc.queue_depth - self._fast_slots.count
        return self.config.mfc.queue_depth - self._slots.count

    # -- coalescing-engine API ---------------------------------------------------
    #
    # The fast twins of enqueue/tag_group_quiet.  The waiter is always a
    # FastActor; model decisions and bookkeeping go through the same
    # methods the reference path uses (_register_enqueue, _finish, the
    # tag-waiter lists), so the two engines share one timing model.

    def fast_claim_slot(self, waiter: Completion) -> bool:
        """Claim a queue slot now (True) or join the slot queue (False);
        a queued waiter is resumed by the next completion's release."""
        if self._fast_slots.acquire():
            return True
        self._fast_slots.wait(waiter)
        return False

    def fast_spawn(
        self,
        direction: DmaDirection,
        target: TargetKind,
        remote_node: str | None,
        size: int,
        tag: int,
        n_elements: int | None = None,
    ) -> None:
        """Start the flat executor for a claimed slot: the second half of
        :meth:`enqueue`.  The caller has already validated the transfer
        shape (the machines carry only what :meth:`_finish` reads)."""
        machine: FastDmaCommand | FastDmaList
        if n_elements is None:
            machine = FastDmaCommand(
                self.env, self, direction, target, remote_node, size, tag
            )
        else:
            machine = FastDmaList(
                self.env, self, direction, target, remote_node, size, n_elements, tag
            )
        self._register_enqueue(machine)

    def fast_tags_quiet(self, tags: Iterable[int], waiter: Completion) -> bool:
        """True when every listed tag group is already empty, else park
        the waiter on the shared tag-waiter list (woken by _finish)."""
        tags = tuple(tags)
        for tag in tags:
            if tag not in self._outstanding:
                raise CellError(f"unknown tag group {tag}")
        if all(self._outstanding[tag] == 0 for tag in tags):
            return True
        self._tag_waiters.append((waiter, tags))
        return False

    # -- ordering (fence / barrier) ------------------------------------------------

    def _ordering_threshold(self, command) -> tuple[int | None, int] | None:
        """(tag-or-None, completion count to wait for), or None."""
        if isinstance(command, DmaCommand) and command.barrier:
            return (None, self._total_enqueued)
        if isinstance(command, DmaCommand) and command.fence:
            return (command.tag, self._tag_enqueued[command.tag])
        return None

    def _register_enqueue(self, command) -> None:
        self._tag_enqueued[command.tag] += 1
        self._total_enqueued += 1
        self._outstanding[command.tag] += 1
        if self._sanitizing:
            self._sanitizer.command_enqueued(self.node, command)

    def _ordering_satisfied(self, tag: int | None, threshold: int) -> bool:
        if tag is None:
            return self._total_completed >= threshold
        return self._tag_completed[tag] >= threshold

    def _wait_ordering(self, ordering: tuple[int | None, int] | None):
        if ordering is None:
            return
        tag, threshold = ordering
        if self._ordering_satisfied(tag, threshold):
            return
        event = self.env.event()
        self._order_waiters.append((event, tag, threshold))
        yield event

    # -- command execution -------------------------------------------------------

    def _execute_command(
        self,
        command: DmaCommand,
        slot,
        slots: Resource,
        ordering: tuple[int | None, int] | None = None,
        cmd_id: int = 0,
        enqueued_at: int = 0,
    ):
        yield from self._wait_ordering(ordering)
        if self._faulting:
            yield from self._inject_faults(command.tag)
        issued_at = self.env.now
        if self._tracing:
            self._trace.emit(
                MfcIssue(
                    ts=issued_at,
                    node=self.node,
                    cmd_id=cmd_id,
                    tag=command.tag,
                    nbytes=command.size,
                )
            )
        yield from self._move(
            direction=command.direction,
            target=command.target,
            remote_node=command.remote_node,
            nbytes=command.size,
        )
        yield self.env.timeout(self.config.mfc.completion_cycles)
        self._finish(command, slot, slots)
        if self._tracing:
            self._trace.emit(
                MfcComplete(
                    ts=self.env.now,
                    node=self.node,
                    cmd_id=cmd_id,
                    tag=command.tag,
                    nbytes=command.size,
                    enqueued_at=enqueued_at,
                    issued_at=issued_at,
                )
            )

    def _execute_list(self, dma_list: DmaList, slot, cmd_id: int = 0,
                      enqueued_at: int = 0):
        """Stream the list's elements.

        The MFC fetches list elements back-to-back and feeds the bus a
        continuous packet stream, so consecutive elements coalesce into
        bus bursts of up to one grant quantum: this is why DMA-list
        bandwidth is flat across element sizes where DMA-elem pays a
        per-command issue cost.  Element fetch time is still charged per
        element, and burst concurrency is bounded by the MFC's internal
        buffering.
        """
        if self._faulting:
            yield from self._inject_faults(dma_list.tag)
        inflight = Resource(self.env, capacity=self.config.mfc.list_inflight_limit)
        issued_at = self.env.now
        if self._tracing:
            self._trace.emit(
                MfcIssue(
                    ts=issued_at,
                    node=self.node,
                    cmd_id=cmd_id,
                    tag=dma_list.tag,
                    nbytes=dma_list.size,
                )
            )
        pending: list[Event] = []
        for n_elements, nbytes in self._list_bursts(dma_list.elements):
            yield self.env.timeout(self.config.mfc.list_element_cycles * n_elements)
            token = inflight.request()
            yield token
            done = self.env.event()
            self.env.process(
                self._list_burst(dma_list, nbytes, inflight, token, done),
                daemon=True,
            )
            pending.append(done)
        if pending:
            yield AllOf(self.env, pending)
        yield self.env.timeout(self.config.mfc.completion_cycles)
        self._finish(dma_list, slot, self._slots)
        if self._tracing:
            self._trace.emit(
                MfcComplete(
                    ts=self.env.now,
                    node=self.node,
                    cmd_id=cmd_id,
                    tag=dma_list.tag,
                    nbytes=dma_list.size,
                    enqueued_at=enqueued_at,
                    issued_at=issued_at,
                )
            )

    def _inject_faults(self, tag: int):
        """Fault probes on the issue path (only reached when an engine
        is attached): an injected stall delays the command; an injected
        drop parks it until :meth:`redrive` — the SPU side notices via a
        tag-group timeout and re-drives (see ``SpuRuntime.wait_tags``)."""
        stall = self._faults.mfc_stall_cycles(self.node)
        if stall:
            yield self.env.timeout(stall)
        if self._faults.mfc_dropped(self.node):
            resume = self.env.event()
            self._parked.setdefault(tag, []).append(resume)
            yield resume

    def _list_bursts(self, elements) -> list[tuple[int, int]]:
        """Coalesce consecutive list elements into (count, bytes) bursts
        of at most one EIB grant quantum each."""
        return coalesce_bursts(
            (element.size for element in elements),
            self.config.eib.grant_quantum_bytes,
        )

    def _list_burst(
        self,
        dma_list: DmaList,
        nbytes: int,
        inflight: Resource,
        token,
        done: Event,
    ):
        yield from self._move(
            direction=dma_list.direction,
            target=dma_list.target,
            remote_node=dma_list.remote_node,
            nbytes=nbytes,
        )
        inflight.release(token)
        done.succeed()

    def _move(
        self,
        direction: DmaDirection,
        target: TargetKind,
        remote_node,
        nbytes: int,
    ):
        """The data movement common to commands and list elements."""
        if nbytes < EFFICIENT_MIN_BYTES:
            yield self.env.timeout(self.config.mfc.small_transfer_penalty_cycles)
        if target is TargetKind.MAIN_MEMORY:
            yield from self._pace_memory_path(nbytes)
            bank = self.chip.memory.assign_bank(self.node)
            if direction is DmaDirection.GET:
                yield self.chip.memory.read(self.node, nbytes, bank)
                yield from self.chip.eib.transfer(bank.node, self.node, nbytes)
            else:
                yield from self.chip.eib.transfer(self.node, bank.node, nbytes)
                yield self.chip.memory.write(self.node, nbytes, bank)
        else:
            if remote_node == self.node:
                raise CellError("LS-to-LS DMA with itself")
            if direction is DmaDirection.GET:
                yield from self.chip.eib.transfer(remote_node, self.node, nbytes)
            else:
                yield from self.chip.eib.transfer(self.node, remote_node, nbytes)
        self.bytes_transferred += nbytes

    def _pace_memory_path(self, nbytes: int):
        """Outstanding-transaction window to main memory, expressed as a
        dispatch pacer: a single MFC cannot push more than ~10 GB/s of
        GET+PUT traffic at memory no matter how many commands it queues."""
        rate = self.config.mfc.memory_path_bytes_per_cpu_cycle
        start = max(self.env.now, self._memory_path_free_at)
        self._memory_path_free_at = start + math.ceil(nbytes / rate)
        if start > self.env.now:
            yield self.env.timeout(start - self.env.now)

    def _finish(self, command, slot, slots: Resource) -> None:
        slots.release(slot)
        self._outstanding[command.tag] -= 1
        if self._outstanding[command.tag] < 0:
            raise CellError(f"tag group {command.tag} under-run")
        self._tag_completed[command.tag] += 1
        self._total_completed += 1
        self.commands_completed += 1
        if self._sanitizing:
            self._sanitizer.command_completed(self.node, command)
        self._wake_tag_waiters()
        self._wake_order_waiters()

    def _finish_fast(self, command) -> None:
        """:meth:`_finish` for the coalescing engine, with the slot
        hand-off relay run inline when provably safe.

        The reference releases the queue slot first, but the release
        only *pushes* the woken kernel's relay — nothing in the rest of
        ``_finish`` reads or writes slot state, so moving the hand-off
        to the tail is exact.  There, when nothing else shares the tick,
        the woken kernel runs inline: it still precedes any tag-waiter
        wakes this finish pushed (the reference relay carries a smaller
        sequence number than those wakes), and every push it makes lands
        after theirs, exactly as when it is popped off the heap.  The
        sanitizer branch of ``_finish`` is dropped: the fast engine
        never runs with an observer attached (resolve_engine).
        """
        slots = self._fast_slots
        env = self.env
        queue = env._queue
        if slots.queue and not (queue and queue[0][0] == env.now):
            tag = command.tag
            outstanding = self._outstanding
            outstanding[tag] -= 1
            if outstanding[tag] < 0:
                raise CellError(f"tag group {tag} under-run")
            self._tag_completed[tag] += 1
            self._total_completed += 1
            self.commands_completed += 1
            if self._tag_waiters:
                self._wake_tag_waiters()
            if self._order_waiters:
                self._wake_order_waiters()
            waiter: Any = slots.queue.popleft()
            waiter._run_callbacks()
        else:
            self._finish(command, None, slots)

    def _wake_tag_waiters(self) -> None:
        if not self._tag_waiters:
            return
        still_waiting = []
        for event, tags in self._tag_waiters:
            if all(self._outstanding[tag] == 0 for tag in tags):
                event.succeed()
            else:
                still_waiting.append((event, tags))
        self._tag_waiters = still_waiting

    def _wake_order_waiters(self) -> None:
        if not self._order_waiters:
            return
        still_waiting = []
        for event, tag, threshold in self._order_waiters:
            if self._ordering_satisfied(tag, threshold):
                event.succeed()
            else:
                still_waiting.append((event, tag, threshold))
        self._order_waiters = still_waiting


# -- coalescing-engine command machines ------------------------------------------
#
# Flat-actor twins of _execute_command / _execute_list / _move /
# Eib.transfer.  Each state method corresponds to one resume point of the
# reference generators; every _after/_park/succeed below occupies exactly
# the heap slot its generator counterpart occupied (modulo the three
# proven-exact coalescings documented in repro.sim.engine_fast).  The
# machines never see fences, barriers, faults, tracing or the sanitizer:
# the fast kernels issue none of the former, and resolve_engine falls
# back to the reference engine when any observer is attached.


class _FastMover(FastActor):
    """The data-movement states shared by commands and list bursts:
    Mfc._move (small-transfer penalty, memory-path pacing, bank service)
    fused with Eib.transfer's chunk/arbitrate/hold loop.

    The EIB leg runs off two per-path memos (`Eib.fast_path_choices`,
    `Eib.fast_chunks`) that tabulate exactly what `_try_grant` and the
    chunk loop would compute, and inlines commit/release (ring occupancy,
    port flags, ring monitor) without the trace branches — the grant
    *decisions* and their order are byte-identical to the reference."""

    __slots__ = (
        "mfc",
        "_mv_direction",
        "_mv_target",
        "_mv_remote",
        "_mv_after",
        "_mv_bank",
        # MemoryRequest-shaped attributes: the mover submits *itself* to
        # MemoryBank.submit_fast, so no per-command request allocation.
        # `direction` here is the bank direction (READ/WRITE string), set
        # just before each submit; the DMA direction is `_mv_direction`.
        "nbytes",
        "requester",
        "direction",
        "done",
        "_eib",
        "_eib_src",
        "_eib_dst",
        "_eib_after",
        "_eib_leg",
        "_eib_plan",
        "_eib_choices",
        "_eib_srcbit",
        "_eib_dstbit",
        "_eib_nsrc",
        "_eib_ndst",
        "_eib_i",
        "_eib_ri",
        "_eib_notmask",
        "_eib_wait_started",
    )

    # -- Mfc._move ---------------------------------------------------------------

    def _move_begin(self) -> None:
        # _mv_paced and MemorySystem.assign_bank fused into the entry
        # state: the common large-transfer path reaches the bank submit
        # or the EIB leg without an intermediate frame.
        mfc = self.mfc
        if self.nbytes < EFFICIENT_MIN_BYTES:
            self._after(mfc._fast_small_penalty, self._mv_paced)
            return
        if self._mv_target is TargetKind.MAIN_MEMORY:
            nbytes = self.nbytes
            cycles = mfc._fast_mem_cycles.get(nbytes)
            if cycles is None:
                cycles = math.ceil(nbytes / mfc._fast_mem_rate)
                mfc._fast_mem_cycles[nbytes] = cycles
            env = self.env
            now = env.now
            free = mfc._memory_path_free_at
            if free > now:
                mfc._memory_path_free_at = free + cycles
                # _after inlined.
                self._run_callbacks = self._mv_route
                env._sequence = sequence = env._sequence + 1
                heappush(env._queue, (free, sequence, self))
                return
            mfc._memory_path_free_at = now + cycles
            # _mv_route fused: the pacer granted dispatch immediately.
            # assign_bank (Bresenham first-touch placement), inlined —
            # including its per-requester call count, which fast-forward
            # replays (repro.sim.fastforward).
            memory = mfc._fast_memory
            node = mfc.node
            calls = memory._placement_calls
            calls[node] = calls.get(node, 0) + 1
            fraction = memory._placement_fraction
            acc = (
                memory._placement_accumulator.get(node, 1.0 - fraction)
                + fraction
            )
            if acc >= 1.0 - 1e-12:
                acc -= 1.0
                bank = memory.local_bank
            else:
                bank = memory.remote_bank
            memory._placement_accumulator[node] = acc
            self._mv_bank = bank
            if self._mv_direction is DmaDirection.GET:
                self.direction = READ
                self._run_callbacks = self._mv_read_done
                bank.submit_fast(self)
            else:
                self._eib_begin(mfc.node, bank.node, self._mv_put_bank)
        else:
            if self._mv_remote == mfc.node:
                raise CellError("LS-to-LS DMA with itself")
            if self._mv_direction is DmaDirection.GET:
                self._eib_begin(self._mv_remote, mfc.node, self._mv_done)
            else:
                self._eib_begin(mfc.node, self._mv_remote, self._mv_done)

    def _mv_paced(self) -> None:
        mfc = self.mfc
        if self._mv_target is TargetKind.MAIN_MEMORY:
            nbytes = self.nbytes
            cycles = mfc._fast_mem_cycles.get(nbytes)
            if cycles is None:
                cycles = math.ceil(nbytes / mfc._fast_mem_rate)
                mfc._fast_mem_cycles[nbytes] = cycles
            now = self.env.now
            free = mfc._memory_path_free_at
            if free > now:
                mfc._memory_path_free_at = free + cycles
                self._after(free - now, self._mv_route)
                return
            mfc._memory_path_free_at = now + cycles
            self._mv_route()
        else:
            if self._mv_remote == mfc.node:
                raise CellError("LS-to-LS DMA with itself")
            if self._mv_direction is DmaDirection.GET:
                self._eib_begin(self._mv_remote, mfc.node, self._mv_done)
            else:
                self._eib_begin(mfc.node, self._mv_remote, self._mv_done)

    def _mv_route(self) -> None:
        mfc = self.mfc
        bank = mfc._fast_memory.assign_bank(mfc.node)
        self._mv_bank = bank
        if self._mv_direction is DmaDirection.GET:
            self.direction = READ
            self._park(self._mv_read_done)
            bank.submit_fast(self)
        else:
            self._eib_begin(mfc.node, bank.node, self._mv_put_bank)

    def _mv_read_done(self) -> None:
        self._eib_begin(self._mv_bank.node, self.mfc.node, self._mv_done)

    def _mv_put_bank(self) -> None:
        self.direction = WRITE
        self._park(self._mv_done)
        self._mv_bank.submit_fast(self)

    def _mv_done(self) -> None:
        self.mfc.bytes_transferred += self.nbytes
        self._mv_after()

    # -- Eib.transfer ------------------------------------------------------------

    def _eib_begin(self, src: str, dst: str, after) -> None:
        self._eib_src = src
        self._eib_dst = dst
        self._eib_after = after
        eib = self._eib
        key = (src, dst, self.nbytes)
        leg = eib._fast_leg_memo.get(key)
        if leg is None:
            leg = eib.fast_leg(src, dst, self.nbytes)
        self._eib_leg = leg
        (
            self._eib_choices,
            self._eib_srcbit,
            self._eib_nsrc,
            self._eib_dstbit,
            self._eib_ndst,
            self._eib_plan,
            _memory_side,
        ) = leg
        self._eib_i = 0
        self._eib_chunk()

    def _eib_chunk(self) -> None:
        eib = self._eib
        eib.grants += 1
        srcbit = self._eib_srcbit
        dstbit = self._eib_dstbit
        # Eib._try_grant over the bitmask twin: port probe is one AND
        # per side, ring probe one AND per candidate.
        if not (eib._fast_out & srcbit | eib._fast_in & dstbit):
            occ = eib._fast_occ
            nact = eib._fast_nact
            maxt = eib._fast_max
            for ri, mask, notmask, latency in self._eib_choices:
                if nact[ri] < maxt and not occ[ri] & mask:
                    # Eib._commit, minus trace and occupancy monitors
                    # (a reference-engine observability feature).
                    occ[ri] |= mask
                    nact[ri] += 1
                    eib._fast_out |= srcbit
                    eib._fast_in |= dstbit
                    self._eib_ri = ri
                    self._eib_notmask = notmask
                    # Hold the path for hop latency + chunk cycles (the
                    # chunk cycles include the fixed arbitration cost).
                    plan = self._eib_plan
                    i = self._eib_i
                    hold = latency + plan[i]
                    env = self.env
                    queue = env._queue
                    n = len(plan)
                    if i + 1 < n and not eib._waiters:
                        # Whole-leg merge: when no flow is queued and no
                        # event fires strictly before this leg's last
                        # chunk would end, the reference's remaining
                        # boundary pops are pure release/regrant
                        # round-trips — no contender can arrive (every
                        # arrival needs a pop, and the next pop is at or
                        # after the merged end), the ring states other
                        # than ours are untouched, so each regrant picks
                        # this same ring and pays this same latency.
                        # Ties at the merged end still pop before our
                        # hold-end event in both engines (smaller
                        # sequence numbers).  Only the grant counter
                        # needs the skipped chunks added back.
                        total = hold
                        for j in range(i + 1, n):
                            total += latency + plan[j]
                        if not queue or queue[0][0] >= env.now + total:
                            eib.grants += n - i - 1
                            self._eib_i = n - 1
                            self._run_callbacks = self._eib_chunk_done
                            env._sequence = sequence = env._sequence + 1
                            heappush(
                                queue, (env.now + total, sequence, self)
                            )
                            return
                    self._run_callbacks = self._eib_chunk_done
                    env._sequence = sequence = env._sequence + 1
                    heappush(queue, (env.now + hold, sequence, self))
                    return
        eib.conflicts += 1
        eib._waiters.append((self, self._eib_src, self._eib_dst, self._eib_leg))
        self._eib_wait_started = self.env.now
        self._park(self._eib_granted)

    def _eib_granted(self) -> None:
        # Committed for us by Eib._drain_waiters_fast; unpack the grant.
        eib = self._eib
        env = self.env
        eib.wait_cycles += env.now - self._eib_wait_started
        ri, notmask, latency, penalty = self._value
        self._eib_ri = ri
        self._eib_notmask = notmask
        self._after(
            penalty + latency + self._eib_plan[self._eib_i],
            self._eib_chunk_done,
        )

    def _eib_chunk_done(self) -> None:
        eib = self._eib
        # Eib._release, minus trace and monitors, over the bitmask twin.
        ri = self._eib_ri
        eib._fast_occ[ri] &= self._eib_notmask
        eib._fast_nact[ri] -= 1
        eib._fast_out &= self._eib_nsrc
        eib._fast_in &= self._eib_ndst
        if eib._waiters:
            eib._drain_waiters_fast()
        i = self._eib_i + 1
        if i < len(self._eib_plan):
            self._eib_i = i
            self._eib_chunk()
        else:
            eib.bytes_moved += self.nbytes
            self._eib_after()


class FastDmaCommand(_FastMover):
    """Flat twin of _execute_command for a plain (unordered) command.

    Carries ``tag`` because that is all _register_enqueue and _finish
    read from a command when no sanitizer is attached."""

    __slots__ = ("tag",)

    def __init__(self, env, mfc: Mfc, direction, target, remote_node, nbytes, tag):
        self.env = env
        self._value = None
        self.mfc = mfc
        self._eib = mfc._fast_eib
        self.tag = tag
        self._mv_direction = direction
        self._mv_target = target
        self._mv_remote = remote_node
        self.nbytes = nbytes
        self.requester = mfc.node
        self.done = self
        # No _mv_after: this class fuses it into its _mv_done override.
        # The executor's start relay, inlined when nothing else shares
        # the tick (nothing the move touches is read by the issuing
        # kernel's remaining same-pop work, and the chain always parks
        # or schedules ahead before completing).
        queue = env._queue
        if queue and queue[0][0] == env.now:
            self._run_callbacks = self._move_begin
            env._sequence = sequence = env._sequence + 1
            heappush(queue, (env.now, sequence, self))
        else:
            self._move_begin()

    def _restart(self, direction, target, remote_node, nbytes, tag) -> None:
        """Reissue a retired shell: the constructor minus the fields
        that survive retirement (env, mfc, requester, done)."""
        self.tag = tag
        self._mv_direction = direction
        self._mv_target = target
        self._mv_remote = remote_node
        self.nbytes = nbytes
        env = self.env
        queue = env._queue
        if queue and queue[0][0] == env.now:
            self._run_callbacks = self._move_begin
            env._sequence = sequence = env._sequence + 1
            heappush(queue, (env.now, sequence, self))
        else:
            self._move_begin()

    def _mv_done(self) -> None:
        # The base _mv_done plus the completion-latency slot, fused.
        mfc = self.mfc
        mfc.bytes_transferred += self.nbytes
        env = self.env
        queue = env._queue
        target = env.now + mfc._fast_completion
        if not queue or queue[0][0] > target:
            # Tail-warp: this push would be the strictly earliest event
            # (no tie possible), and every frame between the heap pop
            # and here is in tail position (_eib_chunk_done ends with
            # _eib_after(); MemoryBank._fast_complete ends with the
            # requester's continuation), so advancing the clock and
            # completing inline is indistinguishable from popping the
            # slot — the run loop reassigns ``now`` on the next pop and
            # reads nothing else.
            env.now = target
            self._complete()
        else:
            self._run_callbacks = self._complete
            env._sequence = sequence = env._sequence + 1
            heappush(queue, (target, sequence, self))

    def _complete(self) -> None:
        # _finish_fast inlined (same body, same branch guard); the shell
        # is retired to the pool only after the slot hand-off so a woken
        # kernel that issues immediately picks up a *different* shell —
        # same behaviour as the unfused call sequence.
        mfc = self.mfc
        slots = mfc._fast_slots
        env = self.env
        queue = env._queue
        if slots.queue and not (queue and queue[0][0] == env.now):
            tag = self.tag
            outstanding = mfc._outstanding
            outstanding[tag] -= 1
            if outstanding[tag] < 0:
                raise CellError(f"tag group {tag} under-run")
            mfc._tag_completed[tag] += 1
            mfc._total_completed += 1
            mfc.commands_completed += 1
            if mfc._tag_waiters:
                mfc._wake_tag_waiters()
            if mfc._order_waiters:
                mfc._wake_order_waiters()
            waiter: Any = slots.queue.popleft()
            waiter._run_callbacks()
            mfc._fast_pool.append(self)
        else:
            mfc._finish(self, None, slots)
            mfc._fast_pool.append(self)


class FastDmaList(FastActor):
    """Flat twin of _execute_list: fetch-paced burst issue behind the
    in-flight token window, then drain, then completion."""

    __slots__ = (
        "mfc",
        "tag",
        "direction",
        "target",
        "remote_node",
        "_bursts",
        "_burst_i",
        "_cur_nbytes",
        "_outstanding_bursts",
        "_inflight",
        "_token_waiting",
        "_all_issued",
    )

    def __init__(
        self, env, mfc: Mfc, direction, target, remote_node,
        element_size, n_elements, tag,
    ):
        super().__init__(env)
        self.mfc = mfc
        self.tag = tag
        self.direction = direction
        self.target = target
        self.remote_node = remote_node
        self._bursts = uniform_bursts(element_size, n_elements, mfc._fast_quantum)
        self._burst_i = 0
        self._outstanding_bursts = 0
        self._inflight = 0
        self._token_waiting = False
        self._all_issued = False
        # The executor's start relay (see FastDmaCommand).
        self._hop(self._next_burst)

    def _next_burst(self) -> None:
        i = self._burst_i
        if i < len(self._bursts):
            n, nbytes = self._bursts[i]
            self._cur_nbytes = nbytes
            self._after(self.mfc._fast_elem_cycles * n, self._fetched)
        else:
            self._all_issued = True
            if self._outstanding_bursts == 0:
                # Unreachable in practice (the last burst was spawned in
                # this very pop, so it is still outstanding) but kept to
                # mirror the reference's AllOf-over-pending defensively.
                self._after(0, self._drained)
            else:
                self._park(self._drained)

    def _fetched(self) -> None:
        if self._inflight < self.mfc._fast_inflight_limit:
            self._inflight += 1
            self._hop(self._token)
        else:
            self._token_waiting = True
            self._park(self._token)

    def _token(self) -> None:
        self._outstanding_bursts += 1
        _FastListBurst(self.env, self, self._cur_nbytes)
        self._burst_i += 1
        self._next_burst()

    def _release_token(self) -> None:
        """Resource.release's fast twin: hand the token straight to this
        list's parked issue loop, or just decrement."""
        if self._token_waiting:
            self._token_waiting = False
            self.succeed()
        else:
            self._inflight -= 1

    def _burst_done(self) -> None:
        self._outstanding_bursts -= 1
        if self._all_issued and self._outstanding_bursts == 0:
            # The AllOf trigger slot of the reference engine.
            self._hop(self._drained)

    def _drained(self) -> None:
        self._after(self.mfc._fast_completion, self._complete)

    def _complete(self) -> None:
        self.mfc._finish_fast(self)


class _FastListBurst(_FastMover):
    """Flat twin of _list_burst: one coalesced span of list elements."""

    __slots__ = ("dma_list",)

    def __init__(self, env, dma_list: FastDmaList, nbytes: int):
        self.env = env
        self._value = None
        mfc = dma_list.mfc
        self.mfc = mfc
        self._eib = mfc._fast_eib
        self.dma_list = dma_list
        self.nbytes = nbytes
        self.requester = mfc.node
        self.done = self
        # The executor's start relay (see FastDmaCommand).
        self._hop(self._start)

    def _start(self) -> None:
        dma_list = self.dma_list
        self._mv_direction = dma_list.direction
        self._mv_target = dma_list.target
        self._mv_remote = dma_list.remote_node
        self._mv_after = self._moved
        self._move_begin()

    def _moved(self) -> None:
        # Token release first, then the done-event slot — the reference
        # burst releases its in-flight token before done.succeed().
        self.dma_list._release_token()
        self._hop(self._notify)

    def _notify(self) -> None:
        self.dma_list._burst_done()
