"""The Element Interconnect Bus: four data rings plus per-element ports.

Modelled behaviour, each piece tied to a paper observation:

* Two rings per direction, at most three concurrent transfers per ring
  with non-overlapping spans, at most six hops — transfers that cannot
  coexist wait on the data arbiter.  This is the "physical location may
  introduce EIB conflicts" mechanism behind Figures 12/13/15/16.
* Every element has one on-ramp and one off-ramp moving 16 B per bus
  cycle.  Two flows sharing a port halve; this is what pins the cycle-of-
  two-SPEs experiment at 33.6 GB/s instead of 67.2.
* The IOIF ramps carry only 7 GB/s (the second chip's memory bank).
* A transfer holds its path for a *grant quantum* of data, then
  re-arbitrates; each grant pays a fixed arbitration cost, so a single
  flow sustains a few percent under the 16.8 GB/s ring rate ("almost
  achieves the peak bandwidth").
* Each hop adds a small pipeline latency, giving the small (<2 GB/s)
  distance dependence of Figure 10's experiment.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from collections.abc import Generator

from repro.cell.config import CellConfig
from repro.cell.errors import ConfigError
from repro.cell.topology import CLOCKWISE, COUNTERCLOCKWISE, RingTopology
from repro.sim import BusyMonitor, Environment, Event
from repro.sim.core import Completion
from repro.sim.trace import EibGrant, EibRelease, EibTransfer, EibWait

#: Extra CPU cycles of pipeline latency per hop travelled.
HOP_LATENCY_CYCLES = 2


@dataclass
class TransferGrant:
    """A committed reservation: one ring, a span set, both ports.

    ``penalty_cycles`` is re-arbitration dead time attached when the
    grant had to wait behind other requesters.
    """

    ring: Ring
    spans: tuple[int, ...]
    span_set: frozenset
    src: str
    dst: str
    penalty_cycles: int = 0
    committed_at: int = 0


class Ring:
    """One data ring: a direction plus the set of active span sets."""

    def __init__(self, name: str, direction: int, max_transfers: int):
        self.name = name
        self.direction = direction
        self.max_transfers = max_transfers
        self._active: list[frozenset] = []
        self._occupied: set = set()

    @property
    def active_transfers(self) -> int:
        return len(self._active)

    def can_accept(self, span_set: frozenset) -> bool:
        """True when the ring has a free slot and no span overlaps."""
        if len(self._active) >= self.max_transfers:
            return False
        return self._occupied.isdisjoint(span_set)

    def add(self, span_set: frozenset) -> None:
        if not self.can_accept(span_set):
            raise ConfigError(f"ring {self.name} cannot accept {span_set}")
        self._active.append(span_set)
        self._occupied |= span_set

    def remove(self, span_set: frozenset) -> None:
        # Active span sets are pairwise disjoint (can_accept admits only
        # disjoint sets), so subtraction equals rebuilding the union.
        self._active.remove(span_set)
        self._occupied -= span_set


class Eib:
    """The bus: arbitration, routing, port accounting and statistics."""

    def __init__(
        self,
        env: Environment,
        topology: RingTopology,
        config: CellConfig,
    ):
        self.env = env
        self.topology = topology
        self.config = config
        self.rings: list[Ring] = []
        for direction, label in ((CLOCKWISE, "cw"), (COUNTERCLOCKWISE, "ccw")):
            for i in range(config.eib.rings_per_direction):
                self.rings.append(
                    Ring(f"{label}{i}", direction, config.eib.max_transfers_per_ring)
                )
        self._out_busy: dict[str, bool] = {node: False for node in topology.order}
        self._in_busy: dict[str, bool] = {node: False for node in topology.order}
        # Reference waiters are (Event, src, dst); coalescing-engine
        # waiters are (actor, src, dst, leg).  Only one kind ever lives
        # in the deque — an environment is wholly one engine.
        self._waiters: deque[tuple] = deque()
        self._span_sets: dict[tuple[str, str, int], frozenset] = {}
        self._rates: dict[tuple[str, str], float] = {}
        # Coalescing-engine memos: the pure-topology part of _try_grant
        # and the chunk schedule of a transfer, keyed per path.  Both
        # are derived from the same reference methods, so the *decision*
        # tables cannot drift from the reference decision code.
        self._fast_choices: dict[tuple[str, str], tuple] = {}
        self._chunk_plans: dict[tuple[str, str, int], tuple] = {}
        if env.coalescing:
            # Bitmask twin of the arbitration state, one int op where the
            # reference keeps sets and dicts.  Spans and nodes each get a
            # unique bit, so mask disjointness is exactly frozenset
            # disjointness and a busy-port probe is one AND.  The leg
            # table folds choices, port bits, chunk plan and the
            # memory-side flag into one tuple per (src, dst, nbytes).
            self._fast_occ: list[int] = [0] * len(self.rings)
            self._fast_nact: list[int] = [0] * len(self.rings)
            self._fast_max: int = config.eib.max_transfers_per_ring
            self._fast_out: int = 0
            self._fast_in: int = 0
            self._node_bits: dict[str, int] = {
                node: 1 << i for i, node in enumerate(topology.order)
            }
            self._span_bits: dict = {}
            self._fast_leg_memo: dict[tuple[str, str, int], tuple] = {}
            self._fast_retry: int = config.eib.conflict_retry_cycles
            self._contend_memo: dict[tuple, int] = {}
        # Statistics the analysis layer reads.
        self.grants = 0
        self.conflicts = 0
        self.wait_cycles = 0
        self.bytes_moved = 0
        self.ring_monitors = {ring.name: BusyMonitor(env, ring.name) for ring in self.rings}
        self._trace = env.trace
        self._tracing = env.trace.enabled
        self._faults = env.faults
        self._faulting = env.faults.enabled
        self.fault_cycles = 0

    # -- public API --------------------------------------------------------------

    def transfer(
        self, src: str, dst: str, nbytes: int
    ) -> Generator[Event, object, None]:
        """Move ``nbytes`` from ``src`` to ``dst``; a process sub-generator
        (use ``yield from``).  Returns once the last byte has landed."""
        if src == dst:
            raise ConfigError(f"EIB transfer from {src!r} to itself")
        if nbytes <= 0:
            raise ConfigError(f"EIB transfer of {nbytes} bytes")
        rate = self.fast_rate(src, dst)
        quantum = self.config.eib.grant_quantum_bytes
        remaining = nbytes
        while remaining > 0:
            chunk = min(remaining, quantum)
            grant = yield from self._acquire(src, dst)
            duration = (
                self.config.eib.arbitration_cycles
                + grant.penalty_cycles
                + len(grant.spans) * HOP_LATENCY_CYCLES
                + math.ceil(chunk / rate)
            )
            if self._faulting:
                # Ring-segment degradation / grant starvation: the
                # committed path carries dead cycles before data moves.
                degraded = self._faults.eib_penalty_cycles(src, dst)
                if degraded:
                    duration += degraded
                    self.fault_cycles += degraded
            yield self.env.timeout(duration)
            self._release(grant, chunk)
            remaining -= chunk
        self.bytes_moved += nbytes
        if self._tracing:
            self._trace.emit(
                EibTransfer(ts=self.env.now, src=src, dst=dst, nbytes=nbytes)
            )

    def fast_rate(self, src: str, dst: str) -> float:
        """Path rate (bytes per CPU cycle), memoised per (src, dst) —
        the coalescing engine asks once per chunk, so the two config
        lookups would otherwise dominate."""
        key = (src, dst)
        rate = self._rates.get(key)
        if rate is None:
            rate = min(
                self.config.node_rate_bytes_per_cpu_cycle(src),
                self.config.node_rate_bytes_per_cpu_cycle(dst),
            )
            self._rates[key] = rate
        return rate

    def fast_path_choices(
        self, src: str, dst: str
    ) -> tuple[tuple[Ring, tuple, frozenset, int], ...]:
        """The arbitration candidates for a path, in the exact order
        :meth:`_try_grant` tries them: ``(ring, spans, span set, hop
        latency cycles)`` per (direction, ring) pair.  Memoised — the
        candidates are pure topology, only ring *occupancy* changes
        over time, and grant checks probe that occupancy inline."""
        key = (src, dst)
        choices = self._fast_choices.get(key)
        if choices is None:
            built = []
            for direction in self.topology.directions_by_distance(src, dst):
                spans = self.topology.path(src, dst, direction)
                if len(spans) > self.config.eib.max_hops:
                    continue
                span_set = self._span_set(src, dst, direction)
                latency = len(spans) * HOP_LATENCY_CYCLES
                for ring in self.rings:
                    if ring.direction == direction:
                        built.append((ring, spans, span_set, latency))
            choices = tuple(built)
            self._fast_choices[key] = choices
        return choices

    def fast_chunks(self, src: str, dst: str, nbytes: int) -> tuple[int, ...]:
        """The grant-quantum chunk schedule of :meth:`transfer` as a
        memoised tuple of per-chunk hold cycles (arbitration + data) —
        the per-chunk ``min``/``ceil`` arithmetic is invariant per
        (path, size), every chunk pays the same fixed arbitration cost,
        and the chunk byte counts are not needed downstream (movers
        account bytes from their own ``nbytes``), so only the cycle
        totals are kept."""
        key = (src, dst, nbytes)
        plan = self._chunk_plans.get(key)
        if plan is None:
            rate = self.fast_rate(src, dst)
            quantum = self.config.eib.grant_quantum_bytes
            arbitration = self.config.eib.arbitration_cycles
            built = []
            remaining = nbytes
            while remaining > 0:
                chunk = min(remaining, quantum)
                built.append(arbitration + math.ceil(chunk / rate))
                remaining -= chunk
            plan = tuple(built)
            self._chunk_plans[key] = plan
        return plan

    def fast_leg(self, src: str, dst: str, nbytes: int) -> tuple:
        """The coalescing engine's whole-leg record, memoised per
        (src, dst, nbytes)::

            (choices, srcbit, ~srcbit, dstbit, ~dstbit, plan, memory_side)

        where ``choices`` is ``(ring index, span mask, ~span mask, hop
        latency)`` per candidate in :meth:`fast_path_choices` order and
        ``plan`` is :meth:`fast_chunks`.  Every mask is derived from the
        reference span sets with one unique bit per span, so mask
        disjointness *is* span-set disjointness — the decision table
        cannot drift from the reference decision code."""
        key = (src, dst, nbytes)
        leg = self._fast_leg_memo.get(key)
        if leg is None:
            span_bits = self._span_bits
            built = []
            for ring, _spans, span_set, latency in self.fast_path_choices(src, dst):
                mask = 0
                for span in span_set:
                    bit = span_bits.get(span)
                    if bit is None:
                        bit = 1 << len(span_bits)
                        span_bits[span] = bit
                    mask |= bit
                built.append((self.rings.index(ring), mask, ~mask, latency))
            srcbit = self._node_bits[src]
            dstbit = self._node_bits[dst]
            memory_side = (
                src in ("MIC", "IOIF0", "IOIF1")
                or dst in ("MIC", "IOIF0", "IOIF1")
            )
            leg = (
                tuple(built),
                srcbit,
                ~srcbit,
                dstbit,
                ~dstbit,
                self.fast_chunks(src, dst, nbytes),
                memory_side,
            )
            self._fast_leg_memo[key] = leg
        return leg

    def utilization(self) -> dict[str, float]:
        """Busy fraction of each ring over the run so far."""
        return {
            name: monitor.utilization()
            for name, monitor in self.ring_monitors.items()
        }

    @property
    def conflict_fraction(self) -> float:
        """Fraction of grants that had to wait for a path."""
        if self.grants == 0:
            return 0.0
        return self.conflicts / self.grants

    # -- arbitration --------------------------------------------------------------

    def _acquire(self, src: str, dst: str) -> Generator[Event, object, TransferGrant]:
        grant = self._try_grant(src, dst)
        if grant is not None:
            self._commit(grant, immediate=True)
            self.grants += 1
            return grant
        self.grants += 1
        self.conflicts += 1
        waiting = self.env.event()
        self._waiters.append((waiting, src, dst))
        started = self.env.now
        grant = yield waiting
        waited = self.env.now - started
        self.wait_cycles += waited
        if self._tracing:
            self._trace.emit(
                EibWait(ts=self.env.now, src=src, dst=dst, cycles=waited)
            )
        return grant

    def _span_set(self, src: str, dst: str, direction: int) -> frozenset:
        key = (src, dst, direction)
        cached = self._span_sets.get(key)
        if cached is None:
            cached = frozenset(self.topology.path(src, dst, direction))
            self._span_sets[key] = cached
        return cached

    def _try_grant(self, src: str, dst: str) -> TransferGrant | None:
        """Find a free path; does NOT commit resources.  Candidates come
        from the memoised table (same order this method historically
        built inline); only the occupancy probe runs per call."""
        if self._out_busy[src] or self._in_busy[dst]:
            return None
        for ring, spans, span_set, _latency in self.fast_path_choices(src, dst):
            if (
                len(ring._active) < ring.max_transfers
                and ring._occupied.isdisjoint(span_set)
            ):
                return TransferGrant(
                    ring=ring, spans=spans, span_set=span_set, src=src, dst=dst
                )
        return None

    def _commit(self, grant: TransferGrant, immediate: bool) -> None:
        grant.ring.add(grant.span_set)
        self._out_busy[grant.src] = True
        self._in_busy[grant.dst] = True
        self.ring_monitors[grant.ring.name].acquire()
        if self._tracing:
            grant.committed_at = self.env.now
            self._trace.emit(
                EibGrant(
                    ts=self.env.now,
                    src=grant.src,
                    dst=grant.dst,
                    ring=grant.ring.name,
                    spans=tuple(grant.spans),
                    immediate=immediate,
                )
            )

    def _release(self, grant: TransferGrant, nbytes: int = 0) -> None:
        grant.ring.remove(grant.span_set)
        self._out_busy[grant.src] = False
        self._in_busy[grant.dst] = False
        self.ring_monitors[grant.ring.name].release()
        if self._tracing:
            self._trace.emit(
                EibRelease(
                    ts=self.env.now,
                    src=grant.src,
                    dst=grant.dst,
                    ring=grant.ring.name,
                    nbytes=nbytes,
                    start=grant.committed_at,
                )
            )
        self._drain_waiters()

    def _drain_waiters(self) -> None:
        """Grant every queued request that now fits, in FIFO order.

        Grants are committed here, before the waiting processes resume,
        so two releases in the same cycle cannot double-book a path."""
        waiters = self._waiters
        if not waiters:
            return
        out_busy = self._out_busy
        in_busy = self._in_busy
        still_waiting: deque[tuple[Event, str, str]] = deque()
        granted: list[tuple[Event, TransferGrant]] | None = None
        while waiters:
            waiter = waiters.popleft()
            _event, src, dst = waiter
            # The busy-port probe of _try_grant, open-coded: most queued
            # flows fail right here (each commit below busies a port
            # pair), and the probe is two dict hits.
            if out_busy[src] or in_busy[dst]:
                still_waiting.append(waiter)
                continue
            for ring, spans, span_set, _latency in self.fast_path_choices(
                src, dst
            ):
                if (
                    len(ring._active) < ring.max_transfers
                    and ring._occupied.isdisjoint(span_set)
                ):
                    grant = TransferGrant(
                        ring=ring, spans=spans, span_set=span_set, src=src, dst=dst
                    )
                    self._commit(grant, immediate=False)
                    if granted is None:
                        granted = []
                    granted.append((waiter[0], grant))
                    break
            else:
                still_waiting.append(waiter)
        self._waiters = still_waiting
        if granted is None:
            return
        for event, grant in granted:
            if not self._memory_side(grant):
                grant.penalty_cycles = (
                    self.config.eib.conflict_retry_cycles
                    * self._contending_flows(grant)
                )
            event.succeed(grant)

    def _drain_waiters_fast(self) -> None:
        """:meth:`_drain_waiters` for coalescing-engine waiters — same
        FIFO scan, same commit-before-resume discipline, run over the
        bitmask twin of the arbitration state.  A granted waiter gets
        ``(ring index, ~span mask, hop latency, penalty)`` as its value;
        its ``_eib_granted`` continuation is popped off the heap exactly
        where the reference pops the grant event."""
        waiters = self._waiters
        out_mask = self._fast_out
        in_mask = self._fast_in
        occ = self._fast_occ
        nact = self._fast_nact
        maxt = self._fast_max
        granted: list[tuple] | None = None
        taken: set[int] = set()
        # Scan in place: the common outcome is "nothing grantable", and
        # leaving the deque untouched then is far cheaper than the
        # pop-and-reappend rebuild (the result is identical — the old
        # loop reassembled the same deque minus the granted entries, in
        # order).
        for index, waiter in enumerate(waiters):
            actor, src, dst, leg = waiter
            srcbit = leg[1]
            dstbit = leg[3]
            if out_mask & srcbit | in_mask & dstbit:
                continue
            for ri, mask, notmask, latency in leg[0]:
                if nact[ri] < maxt and not occ[ri] & mask:
                    occ[ri] |= mask
                    nact[ri] += 1
                    out_mask |= srcbit
                    in_mask |= dstbit
                    if granted is None:
                        granted = []
                    granted.append((actor, ri, notmask, latency, leg, src, dst))
                    taken.add(index)
                    break
        self._fast_out = out_mask
        self._fast_in = in_mask
        if granted is None:
            return
        self._waiters = deque(
            waiter
            for index, waiter in enumerate(waiters)
            if index not in taken
        )
        retry = self._fast_retry
        rings = self.rings
        for actor, ri, notmask, latency, leg, src, dst in granted:
            if leg[6]:
                penalty = 0
            else:
                penalty = retry * self._contending_flows_fast(
                    src, dst, rings[ri].direction
                )
            actor.succeed((ri, notmask, latency, penalty))

    def _contending_flows_fast(self, gsrc: str, gdst: str, direction: int) -> int:
        """:meth:`_contending_flows` with the per-flow-pair verdict
        memoised — the verdict is pure topology (the reference helpers
        compute it on first sight of a pair), only the set of waiting
        flows changes over time."""
        flows = {
            (src, dst)
            for _actor, src, dst, _leg in self._waiters
            if (src, dst) != (gsrc, gdst)
        }
        count = 0
        memo = self._contend_memo
        for src, dst in flows:
            key = (gsrc, gdst, direction, src, dst)
            verdict = memo.get(key)
            if verdict is None:
                if src == gsrc or dst == gdst:
                    verdict = 1
                elif direction in self.topology.directions_by_distance(
                    src, dst
                ) and not self._span_set(gsrc, gdst, direction).isdisjoint(
                    self._span_set(src, dst, direction)
                ):
                    verdict = 1
                else:
                    verdict = 0
                memo[key] = verdict
            count += verdict
        return count

    def _contending_flows(self, grant: TransferGrant) -> int:
        """Distinct other flows still waiting that this grant is holding
        up: same source ramp, same destination ramp, or a span overlap
        in the granted direction.  A flow's own pipelined commands do
        not count — the BIU presents one bus request per flow."""
        waiting_flows = {
            (src, dst)
            for _event, src, dst in self._waiters
            if (src, dst) != (grant.src, grant.dst)
        }
        count = 0
        for src, dst in waiting_flows:
            if src == grant.src or dst == grant.dst:
                count += 1
                continue
            if grant.ring.direction in self.topology.directions_by_distance(
                src, dst
            ) and not grant.span_set.isdisjoint(
                self._span_set(src, dst, grant.ring.direction)
            ):
                count += 1
        return count

    @staticmethod
    def _memory_side(grant: TransferGrant) -> bool:
        """Transfers touching the MIC or an IOIF keep streaming across
        grant boundaries (deep controller queues) — no retry penalty."""
        return (
            grant.src in ("MIC", "IOIF0", "IOIF1")
            or grant.dst in ("MIC", "IOIF0", "IOIF1")
        )
