"""SPE mailboxes: the 32-bit message channels of the MFC.

Each SPE has a 4-entry inbound mailbox (written by the PPE or other
SPEs through the MFC's memory-mapped registers) and a 1-entry outbound
mailbox.  The paper's codes use them to start and stop measurement
phases; the examples here use them the same way.
"""

from __future__ import annotations

from repro.cell.errors import MailboxError
from repro.sim import Environment, Event, Store

#: Architectural depths.
INBOUND_DEPTH = 4
OUTBOUND_DEPTH = 1

#: Mailbox messages are 32-bit values.
_MAX_MESSAGE = 2 ** 32


class Mailbox:
    """One direction of an SPE's mailbox pair."""

    def __init__(self, env: Environment, depth: int, name: str = ""):
        if depth < 1:
            raise MailboxError(f"mailbox depth must be >= 1, got {depth}")
        self.env = env
        self.depth = depth
        self.name = name
        self._store = Store(env, capacity=depth)

    @property
    def count(self) -> int:
        """Messages currently queued."""
        return len(self._store)

    def write(self, message: int) -> Event:
        """Blocking write: the event fires once the message is queued."""
        self._check(message)
        return self._store.put(message)

    def try_write(self, message: int) -> bool:
        """Non-blocking write; False when the mailbox is full."""
        self._check(message)
        if self.count >= self.depth:
            return False
        self._store.put(message)
        return True

    def read(self) -> Event:
        """Blocking read: the event's value is the message."""
        return self._store.get()

    def try_read(self) -> int | None:
        """Non-blocking read; None when empty."""
        if self.count == 0:
            return None
        event = self._store.get()
        if not event.triggered:
            raise MailboxError(f"mailbox {self.name!r} lost a queued message")
        return event.value

    @staticmethod
    def _check(message: int) -> None:
        if not isinstance(message, int) or not 0 <= message < _MAX_MESSAGE:
            raise MailboxError(f"mailbox messages are 32-bit values, got {message!r}")


class MailboxPair:
    """The inbound/outbound mailboxes of one SPE."""

    def __init__(self, env: Environment, spe_name: str = ""):
        self.inbound = Mailbox(env, INBOUND_DEPTH, name=f"{spe_name}.in")
        self.outbound = Mailbox(env, OUTBOUND_DEPTH, name=f"{spe_name}.out")
