"""Structural model of PPU load/store bandwidth (Figures 3, 4 and 6).

The paper's PPE experiments are steady-state streaming loops: a tight
load (or store, or load+store) loop over a buffer resident in L1, L2 or
main memory, with 1 or 2 SMT threads and element sizes from 1 byte to a
full 16-byte VMX register.  In steady state the achieved bandwidth is the
minimum over a small set of structural constraints, which is exactly how
the paper reasons about its own numbers ("probably due to a hardware
limitation on outstanding L1 cache misses, and the size of the store
queues").  A closed-form min-of-constraints model is therefore the right
level of abstraction — a cycle simulator would add noise, not fidelity.

Constraints modelled per (level, op, threads):

* *issue*: each thread retires at most one load/store per cycle, so an
  element of ``e`` bytes moves at most ``e`` bytes/cycle — the strong
  proportionality with element size every figure shows;
* *plateau*: the per-path structural ceiling (L1 port, store-queue
  drain, outstanding-miss window, memory write throughput), calibrated
  in :class:`repro.cell.config.PpeConfig`;
* *16 B bonus*: paths where the paper reports a distinct step from 8 B
  to 16 B elements (stores and copies; loads gain nothing).

``explain`` names the binding constraint so experiment reports can say
*why* a configuration is slow, mirroring the paper's analysis sections.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cell.caches import CacheHierarchy, ELEMENT_SIZES, LEVELS, OPS
from repro.cell.config import CellConfig
from repro.cell.errors import ConfigError

#: Human-readable description of each path's plateau limiter.
_PLATEAU_REASON: dict[str, str] = {
    "l1_load": "L1 load port sustains half the 16 B/cycle peak",
    "l1_store": "write-through L2 store-queue drain",
    "l1_copy": "load/store slots shared on the single LSU port",
    "l2_load": "outstanding L1 miss window",
    "l2_store": "L2 store queue (deeper than the miss window)",
    "l2_copy": "miss window shared between read and write streams",
    "mem_load": "outstanding L1 miss window (same limit as L2 loads)",
    "mem_store": "memory write throughput / saturated L2-to-memory queue",
    "mem_copy": "memory read+write turnaround",
}


@dataclass(frozen=True)
class PpeBandwidthPoint:
    """One modelled measurement with its binding constraint."""

    level: str
    op: str
    element_bytes: int
    threads: int
    gbps: float
    limiter: str


class PpeModel:
    """Closed-form PPU bandwidth model."""

    def __init__(self, config: CellConfig):
        self.config = config
        self.caches = CacheHierarchy(config.ppe)

    def _check(self, level: str, op: str, element_bytes: int, threads: int) -> None:
        if level not in LEVELS:
            raise ConfigError(f"level must be one of {LEVELS}, got {level!r}")
        if op not in OPS:
            raise ConfigError(f"op must be one of {OPS}, got {op!r}")
        if element_bytes not in ELEMENT_SIZES:
            raise ConfigError(
                f"element size must be one of {ELEMENT_SIZES}, got {element_bytes}"
            )
        if threads not in (1, 2):
            raise ConfigError(f"the PPU has 2 SMT threads, got {threads}")

    def bytes_per_cycle(
        self, level: str, op: str, element_bytes: int, threads: int
    ) -> float:
        """Effective delivered bytes per CPU cycle (copy counts both
        directions, as STREAM and the paper do)."""
        self._check(level, op, element_bytes, threads)
        ppe = self.config.ppe
        plateau = ppe.plateau(level, op, threads)
        saturating = ppe.saturating_element_bytes
        if element_bytes >= 16:
            return plateau * ppe.bonus_16b(level, op, threads)
        if element_bytes >= saturating:
            return plateau
        # Issue-limited region: bandwidth proportional to element size.
        return plateau * element_bytes / saturating

    def bandwidth_gbps(
        self, level: str, op: str, element_bytes: int, threads: int
    ) -> float:
        rate = self.bytes_per_cycle(level, op, element_bytes, threads)
        return rate * self.config.clock.cpu_hz / 1e9

    def explain(
        self, level: str, op: str, element_bytes: int, threads: int
    ) -> PpeBandwidthPoint:
        """The bandwidth plus the name of the binding constraint."""
        self._check(level, op, element_bytes, threads)
        saturating = self.config.ppe.saturating_element_bytes
        limiter = (
            f"issue rate: one {element_bytes} B access per cycle per thread"
            if element_bytes < saturating
            else _PLATEAU_REASON[f"{level}_{op}"]
        )
        return PpeBandwidthPoint(
            level=level,
            op=op,
            element_bytes=element_bytes,
            threads=threads,
            gbps=self.bandwidth_gbps(level, op, element_bytes, threads),
            limiter=limiter,
        )

    def peak_gbps(self) -> float:
        """The experiments' reference peak: the 16 B/cycle PPU-L1 link."""
        return 16 * self.config.clock.cpu_hz / 1e9
