"""The blade's memory system: MIC-attached XDR bank + IOIF-attached bank.

The paper's machine is one CBE of a dual-Cell blade booted with
``maxcpus=2``: only chip 0 runs code, but both 256 MB banks are mapped,
so DMA traffic reaches the local bank through the MIC (16.8 GB/s peak)
and the second chip's bank through the IOIF (7 GB/s).  The experiments
show three effects this module models explicitly:

* *Single-stream turnaround*: one SPE streaming against a bank sustains
  only ~60% of its peak ("memory having to do other operations, like
  refreshing, snooping, etc.").  After serving a command the bank stays
  unavailable to the *same* requester for a fraction of the command's
  transfer time; a second requester's commands slot into those gaps.
* *Requester spread*: beyond ~4 concurrent requesters the switch cost
  between requesters grows (command-queue and row-buffer thrash), which
  is the 8-SPE drop of Figure 8.
* *Duplex overlap*: alternating reads and writes overlap a fraction of
  the service time, letting GET+PUT (copy) reach ~23 GB/s where pure GET
  or PUT stop at ~21.

Bank assignment follows NUMA page placement: a fixed fraction of each
buffer's 64 KB pages sits on the local bank, the rest behind the IOIF.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from heapq import heappush
from itertools import islice
from typing import Any

from repro.cell.config import CellConfig
from repro.cell.errors import ConfigError
from repro.sim import BusyMonitor, Environment, Event, ProgressGuard
from repro.sim.core import Completion
from repro.sim.trace import BankActivate, BankTurnaround

#: Direction labels for bank accounting.
READ = "read"
WRITE = "write"


@dataclass
class MemoryRequest:
    """One bank command: who, how much, which direction."""

    requester: str
    nbytes: int
    direction: str
    # Reference engine: an Event; fast engine: the waiting actor.
    done: Completion | None = field(repr=False, default=None)

    def __post_init__(self):
        if self.direction not in (READ, WRITE):
            raise ConfigError(f"direction must be read/write, got {self.direction}")
        if self.nbytes <= 0:
            raise ConfigError(f"request of {self.nbytes} bytes")


class MemoryBank:
    """A serial-service bank with turnaround, spread and duplex effects."""

    def __init__(
        self,
        env: Environment,
        name: str,
        node: str,
        peak_bytes_per_cpu_cycle: float,
        config: CellConfig,
    ):
        if peak_bytes_per_cpu_cycle <= 0:
            raise ConfigError(f"bank {name} has non-positive peak")
        self.env = env
        self.name = name
        self.node = node
        self.peak = peak_bytes_per_cpu_cycle
        self.config = config
        self._pending: deque[Any] = deque()
        self._wakeup: Event | None = None
        # The requester-recency window, with the distinct count kept
        # incrementally (same semantics as a maxlen deque plus
        # len(set(...)), without the per-service set build).
        self._recent: deque[str] = deque()
        self._recent_window = config.memory.requester_window
        self._recent_counts: dict[str, int] = {}
        self._recent_distinct = 0
        self._prev_requester: str | None = None
        self._prev_direction: str | None = None
        self.bytes_served = 0
        self.commands_served = 0
        self.fault_cycles = 0
        self.monitor = BusyMonitor(env, name)
        self._faults = env.faults
        self._faulting = env.faults.enabled
        # Service-plan memos: the ceil/round arithmetic of _plan_service
        # depends only on (nbytes, duplex), the transfer length, and the
        # requester spread — all small key spaces in a streaming run.
        self._transfer_memo: dict[tuple[int, bool], int] = {}
        self._turnaround_memo: dict[int, int] = {}
        self._switch_memo: dict[tuple[int, int], int] = {}
        # Coalescing-engine table: total service cycles keyed by the
        # full decision input (nbytes, duplex, turnaround kind, spread)
        # — one lookup where _plan_service takes up to three.
        self._fast_plan: dict[tuple[int, bool, int, int], int] = {}
        self._sched_window = config.memory.scheduler_window
        if env.coalescing:
            # The coalescing engine drives the bank as a flat actor
            # (submit_fast / _fast_start / _fast_complete) instead of a
            # server generator: same pick, same plan, same heap slots.
            # _run_callbacks holds the current continuation directly
            # (same dispatch convention as FastActor).
            self._fast_current: Any = None
            self._idle = True
            self._run_callbacks = self._fast_start
        else:
            # The server legitimately waits forever between requests, so
            # it is a daemon process (exempt from the deadlock check),
            # and its unbounded loop is watched by a no-progress guard.
            env.process(self._serve(), daemon=True)

    def submit(self, request: MemoryRequest) -> Event:
        """Queue a command; the returned event fires when the bank is done."""
        if self.env.coalescing:
            raise ConfigError(
                f"bank {self.name} has no server process under the "
                "coalescing engine; use submit_fast"
            )
        if request.done is not None:
            raise ConfigError("memory request submitted twice")
        request.done = self.env.event()
        self._pending.append(request)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return request.done

    # -- coalescing-engine service path ---------------------------------------
    #
    # The fast engine puts the bank itself on the heap: one slot to wake
    # an idle bank (where the reference engine pops the wakeup relay and
    # picks), one slot per service interval (where it pops the service
    # timeout).  Picking, planning and completion bookkeeping are the
    # *same methods* the generator uses, so the two paths cannot drift.

    def submit_fast(self, request: Any) -> None:
        """Queue a command whose ``done`` is a fast-engine waiter.

        ``request`` is anything MemoryRequest-shaped — requester,
        nbytes, direction, done.  The fast movers submit themselves
        (they carry those attributes), which skips a per-command
        request allocation."""
        if self._idle:
            self._idle = False
            # The idle bank's wakeup relay; run it inline when nothing
            # else shares the tick (then no other submitter can slip a
            # request in front of this pick — the proven-exact
            # zero-delay coalescing of repro.sim.engine_fast).
            env = self.env
            queue = env._queue
            if queue and queue[0][0] == env.now:
                self._pending.append(request)
                # _run_callbacks is _fast_start whenever the bank idles.
                env._sequence = sequence = env._sequence + 1
                heappush(queue, (env.now, sequence, self))
            else:
                # Idle bank, empty queue: this request is the only
                # candidate — exactly what _pick would pop.
                total = self._plan_fast(request)
                self._fast_current = request
                self._run_callbacks = self._fast_complete
                env._sequence = sequence = env._sequence + 1
                heappush(queue, (env.now + total, sequence, self))
        else:
            self._pending.append(request)

    def _fast_start(self) -> None:
        # _pick and _plan_fast inlined: this method runs once per bank
        # service and the call overhead of the helpers is measurable at
        # the storm scale.  The logic is line-for-line the same.
        pending = self._pending
        prev_requester = self._prev_requester
        prev_direction = self._prev_direction
        request = pending[0]
        if (
            len(pending) == 1
            or (
                request.requester != prev_requester
                and request.direction != prev_direction
            )
        ):
            # Sole candidate, or the front already scores 0 — the scan
            # below would pick it and break on its first iteration.
            pending.popleft()
        else:
            window = min(len(pending), self._sched_window)
            best_index = 0
            best_score = 4
            index = 0
            for candidate in pending:
                if index == window:
                    break
                score = 0
                if candidate.requester == prev_requester:
                    score += 2
                if candidate.direction == prev_direction:
                    score += 1
                if score < best_score:
                    best_index, best_score = index, score
                    if score == 0:
                        break
                index += 1
            request = pending[best_index]
            del pending[best_index]
        # _recent_push, inlined.
        requester = request.requester
        recent = self._recent
        counts = self._recent_counts
        if len(recent) == self._recent_window:
            evicted = recent.popleft()
            left = counts[evicted] - 1
            if left:
                counts[evicted] = left
            else:
                del counts[evicted]
                self._recent_distinct -= 1
        recent.append(requester)
        if requester in counts:
            counts[requester] += 1
        else:
            counts[requester] = 1
            self._recent_distinct += 1
        # _plan_fast decision + memo lookup, inlined.
        prev = self._prev_requester
        prev_dir = self._prev_direction
        duplex = bool(prev_dir) and request.direction != prev_dir
        if requester == prev:
            kind = 1
            spread = 0
        elif prev is not None:
            kind = 2
            spread = self._recent_distinct
        else:
            kind = 0
            spread = 0
        key = (request.nbytes, duplex, kind, spread)
        total = self._fast_plan.get(key)
        if total is None:
            total = self._plan_fast_miss(key)
        self._fast_current = request
        self._run_callbacks = self._fast_complete
        # Occupancy monitors are a reference-engine observability
        # feature; the fast engine skips them (documented in MODEL.md).
        env = self.env
        env._sequence = sequence = env._sequence + 1
        heappush(env._queue, (env.now + total, sequence, self))

    def _fast_complete(self) -> None:
        request = self._fast_current
        self._fast_current = None
        # _finish_service, inlined (the same four assignments).
        self._prev_requester = request.requester
        self._prev_direction = request.direction
        self.bytes_served += request.nbytes
        self.commands_served += 1
        env = self.env
        queue = env._queue
        if queue and queue[0][0] == env.now:
            request.done.succeed()
            if self._pending:
                self._fast_start()
            else:
                self._idle = True
                self._run_callbacks = self._fast_start
        else:
            # Completion relay run inline: push the next service
            # interval first — its sequence number precedes every push
            # the woken requester makes, exactly as in the reference
            # server — then run the requester's continuation directly.
            if self._pending:
                self._fast_start()
            else:
                self._idle = True
                self._run_callbacks = self._fast_start
            done: Any = request.done
            done._run_callbacks()

    def _pick(self) -> Any:
        """Command reordering: within the scheduler window, prefer a
        different requester (hides the same-requester turnaround) and,
        second, the opposite direction (duplex overlap) — what a real
        memory controller's command queue does."""
        pending = self._pending
        if len(pending) == 1:
            return pending.popleft()
        window = min(len(pending), self._sched_window)
        prev_requester = self._prev_requester
        prev_direction = self._prev_direction
        best_index = 0
        best_score = 4
        # islice, not pending[index]: indexing a deque is O(index).
        for index, request in enumerate(islice(pending, window)):
            score = 0
            if request.requester == prev_requester:
                score += 2
            if request.direction == prev_direction:
                score += 1
            if score < best_score:
                best_index, best_score = index, score
                if score == 0:
                    break
        chosen = pending[best_index]
        del pending[best_index]
        return chosen

    def _recent_push(self, requester: str) -> None:
        """Advance the recency window, keeping the distinct-requester
        count incrementally — identical to appending to a maxlen deque
        and taking ``len(set(...))`` afterwards."""
        recent = self._recent
        counts = self._recent_counts
        if len(recent) == self._recent_window:
            evicted = recent.popleft()
            left = counts[evicted] - 1
            if left:
                counts[evicted] = left
            else:
                del counts[evicted]
                self._recent_distinct -= 1
        recent.append(requester)
        if requester in counts:
            counts[requester] += 1
        else:
            counts[requester] = 1
            self._recent_distinct += 1

    def _transfer_cycles(self, nbytes: int, duplex: bool) -> int:
        tkey = (nbytes, duplex)
        cached = self._transfer_memo.get(tkey)
        if cached is None:
            memcfg = self.config.memory
            cached = math.ceil(nbytes / self.peak)
            if duplex:
                # Read/write alternation overlaps part of the service.
                cached = math.ceil(cached * (1.0 - memcfg.duplex_overlap_fraction))
            self._transfer_memo[tkey] = cached
        return cached

    def _turnaround_cycles(self, transfer: int) -> int:
        cached = self._turnaround_memo.get(transfer)
        if cached is None:
            cached = round(
                self.config.memory.same_requester_turnaround_fraction * transfer
            )
            self._turnaround_memo[transfer] = cached
        return cached

    def _switch_cycles(self, transfer: int, spread: int) -> int:
        skey = (transfer, spread)
        cached = self._switch_memo.get(skey)
        if cached is None:
            memcfg = self.config.memory
            fraction = memcfg.requester_switch_fraction * (
                1.0
                + memcfg.requester_spread_factor
                * max(0, spread - memcfg.requester_spread_threshold)
            )
            cached = round(fraction * transfer)
            self._switch_memo[skey] = cached
        return cached

    def _plan_service(self, request: Any) -> tuple[int, int, str | None]:
        """(service cycles, overhead cycles, turnaround reason) for the
        next command, advancing the recency window and fault state.
        Shared by the server generator and (via :meth:`_plan_fast`'s
        identical arithmetic helpers) the fast path."""
        self._recent_push(request.requester)
        duplex = bool(self._prev_direction) and request.direction != self._prev_direction
        transfer = self._transfer_cycles(request.nbytes, duplex)
        overhead = 0
        turnaround_reason = None
        if request.requester == self._prev_requester:
            overhead = self._turnaround_cycles(transfer)
            turnaround_reason = "same-requester"
        elif self._prev_requester is not None:
            overhead = self._switch_cycles(transfer, self._recent_distinct)
            turnaround_reason = "switch"
        if self._faulting:
            # ECC scrub-and-retry: the command's data was corrupt
            # on first read and the bank re-serves it after a spike.
            retry = self._faults.bank_retry_cycles(self.name)
            if retry:
                overhead += retry
                self.fault_cycles += retry
        return transfer, overhead, turnaround_reason

    def _plan_fast(self, request: Any) -> int:
        """Total service cycles for the fast engine: the decisions and
        arithmetic of :meth:`_plan_service` collapsed into one memoised
        lookup keyed by the full decision input.  The fast engine never
        runs with faults enabled (resolve_engine), so the fault branch
        is dropped."""
        self._recent_push(request.requester)
        prev_requester = self._prev_requester
        prev_direction = self._prev_direction
        duplex = bool(prev_direction) and request.direction != prev_direction
        if request.requester == prev_requester:
            kind = 1
            spread = 0
        elif prev_requester is not None:
            kind = 2
            spread = self._recent_distinct
        else:
            kind = 0
            spread = 0
        key = (request.nbytes, duplex, kind, spread)
        total = self._fast_plan.get(key)
        if total is None:
            total = self._plan_fast_miss(key)
        return total

    def _plan_fast_miss(self, key: tuple[int, bool, int, int]) -> int:
        """Cold path of the fast-plan memo: compose the total from the
        same arithmetic helpers the reference planner uses."""
        nbytes, duplex, kind, spread = key
        transfer = self._transfer_cycles(nbytes, duplex)
        if kind == 1:
            total = transfer + self._turnaround_cycles(transfer)
        elif kind == 2:
            total = transfer + self._switch_cycles(transfer, spread)
        else:
            total = transfer
        self._fast_plan[key] = total
        return total

    def _finish_service(self, request: Any) -> None:
        """Post-service bookkeeping, shared by both engines."""
        self._prev_requester = request.requester
        self._prev_direction = request.direction
        self.bytes_served += request.nbytes
        self.commands_served += 1

    def _serve(self):
        trace = self.env.trace
        tracing = trace.enabled
        guard = ProgressGuard(self.env, f"bank {self.name}")
        while True:
            guard.tick((self.env.now, self.commands_served))
            if not self._pending:
                self._wakeup = self.env.event()
                yield self._wakeup
                self._wakeup = None
            request = self._pick()
            transfer, overhead, turnaround_reason = self._plan_service(request)
            if tracing:
                trace.emit(
                    BankActivate(
                        ts=self.env.now,
                        bank=self.name,
                        requester=request.requester,
                        direction=request.direction,
                        nbytes=request.nbytes,
                        service_cycles=transfer,
                        overhead_cycles=overhead,
                    )
                )
                if overhead and turnaround_reason:
                    trace.emit(
                        BankTurnaround(
                            ts=self.env.now,
                            bank=self.name,
                            requester=request.requester,
                            cycles=overhead,
                            reason=turnaround_reason,
                        )
                    )
            self.monitor.acquire()
            yield self.env.timeout(transfer + overhead)
            self.monitor.release()
            self._finish_service(request)
            request.done.succeed()

    @property
    def peak_gbps(self) -> float:
        return self.peak * self.config.clock.cpu_hz / 1e9


class MemorySystem:
    """Both banks plus the NUMA placement that routes commands to them."""

    def __init__(self, env: Environment, config: CellConfig):
        self.env = env
        self.config = config
        self.local_bank = MemoryBank(
            env,
            name="XDR-local",
            node="MIC",
            peak_bytes_per_cpu_cycle=config.memory.local_bank_peak_bytes_per_cpu_cycle,
            config=config,
        )
        self.remote_bank = MemoryBank(
            env,
            name="XDR-remote",
            node="IOIF0",
            peak_bytes_per_cpu_cycle=config.memory.remote_bank_peak_bytes_per_cpu_cycle,
            config=config,
        )
        # Weighted round-robin (Bresenham) state per requester, standing
        # in for which 64 KB page of its buffer a command touches.
        self._placement_accumulator: dict[str, float] = {}
        self._placement_fraction = config.memory.local_placement_fraction
        # Placement decisions taken per requester — the fast-forward
        # engine replays exactly this many accumulator updates per
        # warped period (repro.sim.fastforward).
        self._placement_calls: dict[str, int] = {}

    @property
    def banks(self) -> tuple["MemoryBank", "MemoryBank"]:
        return (self.local_bank, self.remote_bank)

    def assign_bank(self, requester: str) -> MemoryBank:
        """Bank holding the page the requester's next command touches."""
        fraction = self._placement_fraction
        self._placement_calls[requester] = (
            self._placement_calls.get(requester, 0) + 1
        )
        # Start so the first page lands locally (Linux first-touch).
        acc = self._placement_accumulator.get(requester, 1.0 - fraction) + fraction
        if acc >= 1.0 - 1e-12:
            acc -= 1.0
            bank = self.local_bank
        else:
            bank = self.remote_bank
        self._placement_accumulator[requester] = acc
        return bank

    def read(self, requester: str, nbytes: int, bank: MemoryBank) -> Event:
        return bank.submit(MemoryRequest(requester, nbytes, READ))

    def write(self, requester: str, nbytes: int, bank: MemoryBank) -> Event:
        return bank.submit(MemoryRequest(requester, nbytes, WRITE))

    @property
    def bytes_served(self) -> int:
        return sum(bank.bytes_served for bank in self.banks)

    def describe(self) -> dict[str, float]:
        return {
            "local_peak_gbps": self.local_bank.peak_gbps,
            "remote_peak_gbps": self.remote_bank.peak_gbps,
            "local_fraction": self.config.memory.local_placement_fraction,
        }
