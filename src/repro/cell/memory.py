"""The blade's memory system: MIC-attached XDR bank + IOIF-attached bank.

The paper's machine is one CBE of a dual-Cell blade booted with
``maxcpus=2``: only chip 0 runs code, but both 256 MB banks are mapped,
so DMA traffic reaches the local bank through the MIC (16.8 GB/s peak)
and the second chip's bank through the IOIF (7 GB/s).  The experiments
show three effects this module models explicitly:

* *Single-stream turnaround*: one SPE streaming against a bank sustains
  only ~60% of its peak ("memory having to do other operations, like
  refreshing, snooping, etc.").  After serving a command the bank stays
  unavailable to the *same* requester for a fraction of the command's
  transfer time; a second requester's commands slot into those gaps.
* *Requester spread*: beyond ~4 concurrent requesters the switch cost
  between requesters grows (command-queue and row-buffer thrash), which
  is the 8-SPE drop of Figure 8.
* *Duplex overlap*: alternating reads and writes overlap a fraction of
  the service time, letting GET+PUT (copy) reach ~23 GB/s where pure GET
  or PUT stop at ~21.

Bank assignment follows NUMA page placement: a fixed fraction of each
buffer's 64 KB pages sits on the local bank, the rest behind the IOIF.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.cell.config import CellConfig
from repro.cell.errors import ConfigError
from repro.sim import BusyMonitor, Environment, Event, ProgressGuard
from repro.sim.trace import BankActivate, BankTurnaround

#: Direction labels for bank accounting.
READ = "read"
WRITE = "write"


@dataclass
class MemoryRequest:
    """One bank command: who, how much, which direction."""

    requester: str
    nbytes: int
    direction: str
    done: Event = field(repr=False, default=None)

    def __post_init__(self):
        if self.direction not in (READ, WRITE):
            raise ConfigError(f"direction must be read/write, got {self.direction}")
        if self.nbytes <= 0:
            raise ConfigError(f"request of {self.nbytes} bytes")


class MemoryBank:
    """A serial-service bank with turnaround, spread and duplex effects."""

    def __init__(
        self,
        env: Environment,
        name: str,
        node: str,
        peak_bytes_per_cpu_cycle: float,
        config: CellConfig,
    ):
        if peak_bytes_per_cpu_cycle <= 0:
            raise ConfigError(f"bank {name} has non-positive peak")
        self.env = env
        self.name = name
        self.node = node
        self.peak = peak_bytes_per_cpu_cycle
        self.config = config
        self._pending: deque[MemoryRequest] = deque()
        self._wakeup: Event | None = None
        self._recent: deque[str] = deque(maxlen=config.memory.requester_window)
        self._prev_requester: str | None = None
        self._prev_direction: str | None = None
        self.bytes_served = 0
        self.commands_served = 0
        self.fault_cycles = 0
        self.monitor = BusyMonitor(env, name)
        self._faults = env.faults
        self._faulting = env.faults.enabled
        # The server legitimately waits forever between requests, so it
        # is a daemon process (exempt from the deadlock check), and its
        # unbounded loop is watched by a no-progress guard.
        env.process(self._serve(), daemon=True)

    def submit(self, request: MemoryRequest) -> Event:
        """Queue a command; the returned event fires when the bank is done."""
        if request.done is not None:
            raise ConfigError("memory request submitted twice")
        request.done = self.env.event()
        self._pending.append(request)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return request.done

    def _pick(self) -> MemoryRequest:
        """Command reordering: within the scheduler window, prefer a
        different requester (hides the same-requester turnaround) and,
        second, the opposite direction (duplex overlap) — what a real
        memory controller's command queue does."""
        window = min(len(self._pending), self.config.memory.scheduler_window)

        def score(request: MemoryRequest) -> int:
            penalty = 0
            if request.requester == self._prev_requester:
                penalty += 2
            if request.direction == self._prev_direction:
                penalty += 1
            return penalty

        best_index = 0
        best_score = None
        for index in range(window):
            current = score(self._pending[index])
            if best_score is None or current < best_score:
                best_index, best_score = index, current
                if current == 0:
                    break
        chosen = self._pending[best_index]
        del self._pending[best_index]
        return chosen

    def _serve(self):
        memcfg = self.config.memory
        trace = self.env.trace
        tracing = trace.enabled
        guard = ProgressGuard(self.env, f"bank {self.name}")
        while True:
            guard.tick((self.env.now, self.commands_served))
            if not self._pending:
                self._wakeup = self.env.event()
                yield self._wakeup
                self._wakeup = None
            request = self._pick()
            self._recent.append(request.requester)
            transfer = math.ceil(request.nbytes / self.peak)
            if request.direction != self._prev_direction and self._prev_direction:
                # Read/write alternation overlaps part of the service.
                transfer = math.ceil(transfer * (1.0 - memcfg.duplex_overlap_fraction))
            overhead = 0
            turnaround_reason = None
            if request.requester == self._prev_requester:
                overhead = round(memcfg.same_requester_turnaround_fraction * transfer)
                turnaround_reason = "same-requester"
            elif self._prev_requester is not None:
                spread = len(set(self._recent))
                fraction = memcfg.requester_switch_fraction * (
                    1.0
                    + memcfg.requester_spread_factor
                    * max(0, spread - memcfg.requester_spread_threshold)
                )
                overhead = round(fraction * transfer)
                turnaround_reason = "switch"
            if self._faulting:
                # ECC scrub-and-retry: the command's data was corrupt
                # on first read and the bank re-serves it after a spike.
                retry = self._faults.bank_retry_cycles(self.name)
                if retry:
                    overhead += retry
                    self.fault_cycles += retry
            if tracing:
                trace.emit(
                    BankActivate(
                        ts=self.env.now,
                        bank=self.name,
                        requester=request.requester,
                        direction=request.direction,
                        nbytes=request.nbytes,
                        service_cycles=transfer,
                        overhead_cycles=overhead,
                    )
                )
                if overhead and turnaround_reason:
                    trace.emit(
                        BankTurnaround(
                            ts=self.env.now,
                            bank=self.name,
                            requester=request.requester,
                            cycles=overhead,
                            reason=turnaround_reason,
                        )
                    )
            self.monitor.acquire()
            yield self.env.timeout(transfer + overhead)
            self.monitor.release()
            self._prev_requester = request.requester
            self._prev_direction = request.direction
            self.bytes_served += request.nbytes
            self.commands_served += 1
            request.done.succeed()

    @property
    def peak_gbps(self) -> float:
        return self.peak * self.config.clock.cpu_hz / 1e9


class MemorySystem:
    """Both banks plus the NUMA placement that routes commands to them."""

    def __init__(self, env: Environment, config: CellConfig):
        self.env = env
        self.config = config
        self.local_bank = MemoryBank(
            env,
            name="XDR-local",
            node="MIC",
            peak_bytes_per_cpu_cycle=config.memory.local_bank_peak_bytes_per_cpu_cycle,
            config=config,
        )
        self.remote_bank = MemoryBank(
            env,
            name="XDR-remote",
            node="IOIF0",
            peak_bytes_per_cpu_cycle=config.memory.remote_bank_peak_bytes_per_cpu_cycle,
            config=config,
        )
        # Weighted round-robin (Bresenham) state per requester, standing
        # in for which 64 KB page of its buffer a command touches.
        self._placement_accumulator: dict[str, float] = {}

    @property
    def banks(self) -> tuple["MemoryBank", "MemoryBank"]:
        return (self.local_bank, self.remote_bank)

    def assign_bank(self, requester: str) -> MemoryBank:
        """Bank holding the page the requester's next command touches."""
        fraction = self.config.memory.local_placement_fraction
        # Start so the first page lands locally (Linux first-touch).
        acc = self._placement_accumulator.get(requester, 1.0 - fraction) + fraction
        if acc >= 1.0 - 1e-12:
            acc -= 1.0
            bank = self.local_bank
        else:
            bank = self.remote_bank
        self._placement_accumulator[requester] = acc
        return bank

    def read(self, requester: str, nbytes: int, bank: MemoryBank) -> Event:
        return bank.submit(MemoryRequest(requester, nbytes, READ))

    def write(self, requester: str, nbytes: int, bank: MemoryBank) -> Event:
        return bank.submit(MemoryRequest(requester, nbytes, WRITE))

    @property
    def bytes_served(self) -> int:
        return sum(bank.bytes_served for bank in self.banks)

    def describe(self) -> dict[str, float]:
        return {
            "local_peak_gbps": self.local_bank.peak_gbps,
            "remote_peak_gbps": self.remote_bank.peak_gbps,
            "local_fraction": self.config.memory.local_placement_fraction,
        }
