"""Discrete-event model of the Cell Broadband Engine communication fabric.

This is the substrate the paper's measurements ran on: a 2.1 GHz Cell BE
blade.  The model covers every path the paper measures:

* the Element Interconnect Bus (:mod:`repro.cell.eib`) with its four data
  rings, per-element on/off-ramp ports, shortest-path routing and
  segment-conflict arbitration over the real physical ring layout
  (:mod:`repro.cell.topology`);
* the per-SPE Memory Flow Controller (:mod:`repro.cell.mfc`) with its
  16-entry DMA queue, DMA-elem and DMA-list commands, tag groups and the
  outstanding-transaction window that limits a single SPE against main
  memory;
* the memory system (:mod:`repro.cell.memory`): the MIC-attached XDR bank
  plus the second chip's bank reached through the IOIF at 7 GB/s, with
  same-requester turnaround (single-stream efficiency), requester-spread
  penalties and read/write duplex overlap;
* structural (closed-form) models of the PPU load/store paths to L1, L2
  and main memory (:mod:`repro.cell.ppe`) and of the SPU's local-store
  port (:mod:`repro.cell.spe`).

:class:`~repro.cell.chip.CellChip` assembles a full chip; experiments in
:mod:`repro.core` drive it through the :mod:`repro.libspe` API.
"""

from repro.cell.chip import CellChip
from repro.cell.config import (
    CellConfig,
    ClockConfig,
    EibConfig,
    LocalStoreConfig,
    MemoryConfig,
    MfcConfig,
    PpeConfig,
    SpuConfig,
)
from repro.cell.dma import DmaCommand, DmaDirection, DmaList, DmaListElement
from repro.cell.errors import (
    CellError,
    ConfigError,
    DmaAlignmentError,
    DmaSizeError,
    DmaTimeoutError,
    FaultError,
    LocalStoreError,
    SimulationStall,
    SpeCrashError,
)
from repro.cell.topology import RingTopology, SpeMapping

__all__ = [
    "CellChip",
    "CellConfig",
    "CellError",
    "ClockConfig",
    "ConfigError",
    "DmaAlignmentError",
    "DmaCommand",
    "DmaDirection",
    "DmaList",
    "DmaListElement",
    "DmaSizeError",
    "DmaTimeoutError",
    "EibConfig",
    "FaultError",
    "LocalStoreConfig",
    "LocalStoreError",
    "MemoryConfig",
    "MfcConfig",
    "PpeConfig",
    "RingTopology",
    "SimulationStall",
    "SpeCrashError",
    "SpeMapping",
    "SpuConfig",
]
