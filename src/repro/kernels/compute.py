"""The SPU arithmetic model.

The paper's introduction fixes the single-precision peak: each SPU
performs 4 single-precision floating-point operations per cycle on its
128-bit SIMD unit — with fused multiply-add that is 8 FLOPs/cycle, i.e.
16.8 GFLOP/s per SPE at 2.1 GHz, "[16.8] GFLOPS * 8" chip-wide.  The
related-work section fixes double precision: "only one double precision
operation every 7 cycles" (a 2-wide DP multiply-add every 7 cycles).

This module turns FLOP counts into SPU cycles.  It is deliberately a
throughput model: the streaming kernels overlap computation with DMA, so
issue-level detail would not change any result the roofline can see.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.cell.config import CellConfig
from repro.cell.errors import ConfigError


class Precision(enum.Enum):
    """Floating-point width of a kernel's arithmetic."""

    SINGLE = "single"
    DOUBLE = "double"

    @property
    def element_bytes(self) -> int:
        return 4 if self is Precision.SINGLE else 8


#: SIMD width (elements per 128-bit register) by precision.
_SIMD_WIDTH = {Precision.SINGLE: 4, Precision.DOUBLE: 2}

#: FLOPs per SIMD instruction (multiply-add counts as two).
_FLOPS_PER_INSTRUCTION = {
    Precision.SINGLE: 8,  # 4-wide FMA
    Precision.DOUBLE: 4,  # 2-wide FMA
}

#: Issue interval in cycles: SP pipelines one SIMD op per cycle; DP
#: stalls the pipe for 7 cycles per op (the paper's "one double
#: precision operation every 7 cycles").
_ISSUE_INTERVAL = {Precision.SINGLE: 1, Precision.DOUBLE: 7}


@dataclass(frozen=True)
class SpuComputeModel:
    """Cycles-for-FLOPs on one SPU.

    ``efficiency`` derates the peak for non-FMA work, shuffles and loop
    overhead; 1.0 models perfectly scheduled FMA chains.
    """

    config: CellConfig
    efficiency: float = 1.0

    def __post_init__(self):
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigError(f"efficiency must be in (0, 1], got {self.efficiency}")

    def flops_per_cycle(self, precision: Precision) -> float:
        """Sustained FLOPs per cycle at the model's efficiency."""
        peak = _FLOPS_PER_INSTRUCTION[precision] / _ISSUE_INTERVAL[precision]
        return peak * self.efficiency

    def peak_gflops(self, precision: Precision, n_spes: int = 1) -> float:
        """Peak GFLOP/s for ``n_spes`` SPEs (16.8 SP per SPE at 2.1 GHz)."""
        if n_spes < 1:
            raise ConfigError(f"n_spes must be >= 1, got {n_spes}")
        per_spe = self.flops_per_cycle(precision) * self.config.clock.cpu_hz / 1e9
        return per_spe * n_spes

    def cycles_for_flops(self, n_flops: float, precision: Precision) -> int:
        """SPU cycles to retire ``n_flops`` of streaming arithmetic."""
        if n_flops < 0:
            raise ConfigError(f"negative FLOP count {n_flops}")
        if n_flops == 0:
            return 0
        return max(1, math.ceil(n_flops / self.flops_per_cycle(precision)))

    def dp_slowdown(self) -> float:
        """How much slower DP arithmetic is than SP (the paper's
        motivation for Dongarra's mixed-precision approach)."""
        return self.flops_per_cycle(Precision.SINGLE) / self.flops_per_cycle(
            Precision.DOUBLE
        )
