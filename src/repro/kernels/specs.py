"""Kernel workload descriptions.

A :class:`KernelSpec` describes one double-buffered iteration of a
streaming kernel on one SPE: which DMA reads it needs, how many FLOPs it
performs on them, and what it writes back.  The four factories cover the
kernels the paper's conclusions name: scalar product, matrix-by-vector,
matrix product, and a streaming (STREAM-triad) benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cell.errors import ConfigError
from repro.kernels.compute import Precision

#: Default DMA chunk: the architecture's 16 KiB maximum, the efficient
#: choice per the paper's own results.
DEFAULT_CHUNK_BYTES = 16384


@dataclass(frozen=True)
class KernelSpec:
    """One streaming iteration of a kernel on one SPE.

    ``read_bytes``: the DMA GETs issued per iteration (one entry per
    input stream).  ``write_bytes``: the DMA PUT per iteration (0 for
    reductions).  ``flops_per_iteration``: arithmetic retired once the
    reads have landed.
    """

    name: str
    read_bytes: tuple[int, ...]
    write_bytes: int
    flops_per_iteration: float
    precision: Precision = Precision.SINGLE
    ls_resident_bytes: int = 0  # data kept in the LS across iterations

    def __post_init__(self):
        if not self.read_bytes:
            raise ConfigError(f"kernel {self.name!r} reads nothing")
        if any(size <= 0 for size in self.read_bytes):
            raise ConfigError(f"kernel {self.name!r} has a non-positive read")
        if self.write_bytes < 0:
            raise ConfigError(f"kernel {self.name!r} writes {self.write_bytes} B")
        if self.flops_per_iteration <= 0:
            raise ConfigError(f"kernel {self.name!r} performs no arithmetic")

    @property
    def traffic_bytes(self) -> int:
        """Memory bytes moved per iteration (reads + writes)."""
        return sum(self.read_bytes) + self.write_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of memory traffic — the roofline x axis."""
        return self.flops_per_iteration / self.traffic_bytes


def dot_product(
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    precision: Precision = Precision.SINGLE,
) -> KernelSpec:
    """Scalar product: stream x and y, accumulate x[i]*y[i] in registers.

    Intensity 2 FLOPs / 2 elements of traffic = 0.25 FLOP/B in SP:
    hopelessly bandwidth-bound, the kernel the paper's bandwidth numbers
    matter most for.
    """
    elements = chunk_bytes // precision.element_bytes
    return KernelSpec(
        name=f"dot-product-{precision.value}",
        read_bytes=(chunk_bytes, chunk_bytes),
        write_bytes=0,
        flops_per_iteration=2.0 * elements,
        precision=precision,
    )


def stream_triad(
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    precision: Precision = Precision.SINGLE,
) -> KernelSpec:
    """STREAM triad a[i] = b[i] + s * c[i]: two reads, one write, 2 FLOPs
    per element — the streaming benchmark the paper compares itself to
    (McCalpin's STREAM)."""
    elements = chunk_bytes // precision.element_bytes
    return KernelSpec(
        name=f"stream-triad-{precision.value}",
        read_bytes=(chunk_bytes, chunk_bytes),
        write_bytes=chunk_bytes,
        flops_per_iteration=2.0 * elements,
        precision=precision,
    )


def matrix_vector(
    row_block_bytes: int = DEFAULT_CHUNK_BYTES,
    vector_bytes: int = 32768,
    precision: Precision = Precision.SINGLE,
) -> KernelSpec:
    """y = A x with x resident in the local store: stream row blocks of
    A, 2 FLOPs per matrix element.  Intensity 0.5 FLOP/B (SP):
    bandwidth-bound, but twice the dot product's intensity."""
    elements = row_block_bytes // precision.element_bytes
    return KernelSpec(
        name=f"matrix-vector-{precision.value}",
        read_bytes=(row_block_bytes,),
        write_bytes=0,
        flops_per_iteration=2.0 * elements,
        precision=precision,
        ls_resident_bytes=vector_bytes,
    )


def matrix_multiply(
    block: int = 64,
    precision: Precision = Precision.SINGLE,
    k_blocks: int = 16,
) -> KernelSpec:
    """Blocked C += A·B with ``block`` x ``block`` tiles in the local
    store: per iteration fetch one A tile and one B tile, retire
    2·block^3 FLOPs; the C tile is written back once per ``k_blocks``
    iterations (amortised here).  Intensity grows linearly with the
    block size — the kernel that escapes the bandwidth roof.
    """
    if block < 4 or block & (block - 1):
        raise ConfigError(f"block must be a power of two >= 4, got {block}")
    if k_blocks < 1:
        raise ConfigError(f"k_blocks must be >= 1, got {k_blocks}")
    tile_bytes = block * block * precision.element_bytes
    if tile_bytes > 65536:
        raise ConfigError(
            f"{block}x{block} {precision.value} tiles ({tile_bytes} B) do not "
            "leave room for double buffering in the 256 KiB local store"
        )
    return KernelSpec(
        name=f"matmul-b{block}-{precision.value}",
        read_bytes=(tile_bytes, tile_bytes),
        write_bytes=tile_bytes // k_blocks,
        flops_per_iteration=2.0 * block ** 3,
        precision=precision,
        ls_resident_bytes=tile_bytes,
    )
