"""Small computational kernels on the modelled Cell — the paper's §5
future work, implemented.

"In the near future, we plan to use this experience to evaluate small
kernels (scalar product, matrix by vector, matrix product, streaming
benchmarks...)" — this subpackage does exactly that on the model:

* :mod:`repro.kernels.compute` — the SPU arithmetic model: 4-wide
  single-precision SIMD with fused multiply-add (16.8 GFLOP/s per SPE
  at 2.1 GHz, the paper's "16.8 GFLOPS * 8"), and the notoriously slow
  double precision ("only one double precision operation every 7
  cycles").
* :mod:`repro.kernels.specs` — kernel workload descriptions: scalar
  (dot) product, STREAM triad, matrix-vector, blocked matrix multiply.
* :mod:`repro.kernels.streaming` — the double-buffered SPU streaming
  loop that runs any spec across 1-8 SPEs and measures GFLOP/s and
  GB/s end to end.
* :mod:`repro.kernels.roofline` — the bandwidth/compute roofline the
  paper's related-work section gestures at (Williams et al.): predicted
  versus simulated performance and the binding resource.
"""

from repro.kernels.compute import Precision, SpuComputeModel
from repro.kernels.roofline import RooflineModel, RooflinePoint
from repro.kernels.specs import (
    KernelSpec,
    dot_product,
    matrix_multiply,
    matrix_vector,
    stream_triad,
)
from repro.kernels.streaming import KernelRun, run_kernel

__all__ = [
    "KernelRun",
    "KernelSpec",
    "Precision",
    "RooflineModel",
    "RooflinePoint",
    "SpuComputeModel",
    "dot_product",
    "matrix_multiply",
    "matrix_vector",
    "run_kernel",
    "stream_triad",
]
