"""The double-buffered streaming loop that runs a kernel on real SPEs.

This is the code shape the paper's conclusions prescribe: DMA the next
chunk while computing on the current one (double buffering), tags
alternating between the two buffers, synchronisation per buffer rather
than per command, writes on their own tag group.  Data is parallel
across SPEs: each SPE streams its own slice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cell.chip import CellChip
from repro.cell.config import CellConfig
from repro.cell.dma import legal_command_sizes
from repro.cell.errors import ConfigError
from repro.cell.topology import SpeMapping
from repro.kernels.compute import SpuComputeModel
from repro.kernels.specs import KernelSpec
from repro.libspe import SpeContext

#: Tag assignment: two read buffers plus a write group.
_READ_TAGS = (0, 1)
_WRITE_TAG = 2


#: Split a transfer into legal MFC commands (see repro.cell.dma).
_dma_sizes = legal_command_sizes


def _ceil16(nbytes: int) -> int:
    return (nbytes + 15) & ~15


def _kernel_program(spu, spec: KernelSpec, compute: SpuComputeModel,
                    n_iterations: int, out: dict):
    # LS layout: two read buffers (one per read tag) then the write
    # staging buffer, each 16 B aligned.  Input streams from main memory
    # walk forward one read stride per iteration; output lands past the
    # whole input region.  Local and remote cursors advance in lockstep
    # through the same command sizes, so they always share 16 B
    # alignment, and no two in-flight commands touch the same bytes —
    # the layout the DMA hazard sanitizer certifies.
    read_stride = sum(_ceil16(nbytes) for nbytes in spec.read_bytes)
    write_stride = _ceil16(spec.write_bytes)
    read_base = {_READ_TAGS[0]: 0, _READ_TAGS[1]: read_stride}
    write_base = 2 * read_stride
    write_ea_base = n_iterations * read_stride

    def issue_reads(tag, iteration):
        local = read_base[tag]
        remote = iteration * read_stride
        for stream_bytes in spec.read_bytes:
            for size in _dma_sizes(stream_bytes):
                yield from spu.mfc_get(
                    size=size, tag=tag,
                    local_offset=local, remote_offset=remote,
                )
                local += size
                remote += size
            local = _ceil16(local)
            remote = _ceil16(remote)

    compute_cycles = compute.cycles_for_flops(
        spec.flops_per_iteration, spec.precision
    )
    start = spu.read_decrementer()
    yield from issue_reads(_READ_TAGS[0], 0)
    for iteration in range(n_iterations):
        current = _READ_TAGS[iteration % 2]
        upcoming = _READ_TAGS[(iteration + 1) % 2]
        if iteration + 1 < n_iterations:
            yield from issue_reads(upcoming, iteration + 1)
        yield from spu.wait_tags([current])
        if compute_cycles:
            yield spu.compute(compute_cycles)
        if spec.write_bytes:
            local = write_base
            remote = write_ea_base + iteration * write_stride
            for size in _dma_sizes(spec.write_bytes):
                yield from spu.mfc_put(
                    size=size, tag=_WRITE_TAG,
                    local_offset=local, remote_offset=remote,
                )
                local += size
                remote += size
    yield from spu.wait_tags([_READ_TAGS[0], _READ_TAGS[1], _WRITE_TAG])
    out["start"] = start
    out["end"] = spu.read_decrementer()


@dataclass(frozen=True)
class KernelRun:
    """Measured end-to-end performance of one kernel configuration."""

    spec: KernelSpec
    n_spes: int
    iterations_per_spe: int
    cycles: int
    gflops: float
    gbps: float

    @property
    def total_flops(self) -> float:
        return self.spec.flops_per_iteration * self.iterations_per_spe * self.n_spes

    @property
    def total_bytes(self) -> int:
        return self.spec.traffic_bytes * self.iterations_per_spe * self.n_spes

    def __str__(self) -> str:
        return (
            f"{self.spec.name}: {self.n_spes} SPEs, {self.gflops:.2f} GFLOP/s, "
            f"{self.gbps:.2f} GB/s"
        )


def run_kernel(
    spec: KernelSpec,
    n_spes: int = 4,
    iterations_per_spe: int = 64,
    config: CellConfig | None = None,
    compute: SpuComputeModel | None = None,
    seed: int = 77,
) -> KernelRun:
    """Run a kernel data-parallel across ``n_spes`` SPEs and measure it."""
    config = config or CellConfig.paper_blade()
    if not 1 <= n_spes <= config.n_spes:
        raise ConfigError(f"n_spes must be in 1..{config.n_spes}, got {n_spes}")
    if iterations_per_spe < 1:
        raise ConfigError(f"iterations_per_spe must be >= 1")
    ls_needed = spec.ls_resident_bytes + 2 * sum(spec.read_bytes) + spec.write_bytes
    if ls_needed > config.local_store.size_bytes:
        raise ConfigError(
            f"kernel {spec.name!r} needs {ls_needed} B of local store for "
            f"double buffering; only {config.local_store.size_bytes} available"
        )
    compute = compute or SpuComputeModel(config)
    chip = CellChip(config=config, mapping=SpeMapping.random(seed, config.n_spes))
    outs: list[dict] = []
    for logical in range(n_spes):
        out: dict = {}
        SpeContext(chip, logical).load(
            _kernel_program, spec, compute, iterations_per_spe, out
        )
        outs.append(out)
    chip.run()
    elapsed = max(out["end"] for out in outs) - min(out["start"] for out in outs)
    seconds = config.clock.cycles_to_seconds(elapsed)
    total_flops = spec.flops_per_iteration * iterations_per_spe * n_spes
    total_bytes = spec.traffic_bytes * iterations_per_spe * n_spes
    return KernelRun(
        spec=spec,
        n_spes=n_spes,
        iterations_per_spe=iterations_per_spe,
        cycles=elapsed,
        gflops=total_flops / seconds / 1e9,
        gbps=total_bytes / seconds / 1e9,
    )
