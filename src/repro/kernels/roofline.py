"""Roofline analysis over the modelled machine.

attainable GFLOP/s = min(compute peak, arithmetic intensity x memory
bandwidth).  The compute roof comes from the SPU arithmetic model; the
bandwidth roof is the *measured* multi-SPE DMA bandwidth (the paper's
Figure 8 numbers), not the theoretical 25.6 — which is precisely why
the paper's measurements matter for kernel design: the 10-vs-20 GB/s
single-vs-multi-SPE result moves every bandwidth-bound kernel's roof.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cell.config import CellConfig
from repro.cell.errors import ConfigError
from repro.kernels.compute import Precision, SpuComputeModel
from repro.kernels.specs import KernelSpec
from repro.kernels.streaming import KernelRun, run_kernel

#: Sustained GET+PUT memory bandwidth per SPE count, from the Figure 8
#: reproduction (see EXPERIMENTS.md).  Used as the default bandwidth
#: roof; pass ``memory_bandwidth_gbps`` to override with a fresh
#: measurement.
MEASURED_MEMORY_GBPS = {1: 10.1, 2: 20.0, 4: 21.5, 8: 19.0}


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel against the roofline."""

    spec: KernelSpec
    n_spes: int
    predicted_gflops: float
    bound: str  # "bandwidth" or "compute"
    measured: KernelRun | None = None

    @property
    def model_error(self) -> float | None:
        """|measured - predicted| / predicted, when a run is attached."""
        if self.measured is None:
            return None
        return abs(self.measured.gflops - self.predicted_gflops) / self.predicted_gflops


class RooflineModel:
    """Predict and (optionally) verify kernel performance."""

    def __init__(
        self,
        config: CellConfig | None = None,
        compute: SpuComputeModel | None = None,
        memory_bandwidth_gbps: dict | None = None,
    ):
        self.config = config or CellConfig.paper_blade()
        self.compute = compute or SpuComputeModel(self.config)
        self.memory_gbps = dict(memory_bandwidth_gbps or MEASURED_MEMORY_GBPS)

    def bandwidth_roof(self, n_spes: int) -> float:
        if n_spes not in self.memory_gbps:
            raise ConfigError(
                f"no bandwidth roof for {n_spes} SPEs; known: "
                f"{sorted(self.memory_gbps)}"
            )
        return self.memory_gbps[n_spes]

    def compute_roof(self, precision: Precision, n_spes: int) -> float:
        return self.compute.peak_gflops(precision, n_spes)

    def ridge_intensity(self, precision: Precision, n_spes: int) -> float:
        """FLOP/B where the rooflines cross: below it kernels are
        bandwidth-bound, above it compute-bound."""
        return self.compute_roof(precision, n_spes) / self.bandwidth_roof(n_spes)

    def predict(self, spec: KernelSpec, n_spes: int) -> RooflinePoint:
        bandwidth_bound = spec.arithmetic_intensity * self.bandwidth_roof(n_spes)
        compute_bound = self.compute_roof(spec.precision, n_spes)
        if bandwidth_bound <= compute_bound:
            return RooflinePoint(
                spec=spec,
                n_spes=n_spes,
                predicted_gflops=bandwidth_bound,
                bound="bandwidth",
            )
        return RooflinePoint(
            spec=spec, n_spes=n_spes, predicted_gflops=compute_bound, bound="compute"
        )

    def verify(
        self, spec: KernelSpec, n_spes: int, iterations_per_spe: int = 64
    ) -> RooflinePoint:
        """Prediction plus an actual simulated run."""
        predicted = self.predict(spec, n_spes)
        measured = run_kernel(
            spec,
            n_spes=n_spes,
            iterations_per_spe=iterations_per_spe,
            config=self.config,
            compute=self.compute,
        )
        return RooflinePoint(
            spec=spec,
            n_spes=n_spes,
            predicted_gflops=predicted.predicted_gflops,
            bound=predicted.bound,
            measured=measured,
        )

    @staticmethod
    def format(points: list[RooflinePoint]) -> str:
        lines = [
            f"{'kernel':<24} {'SPEs':>4} {'FLOP/B':>7} {'bound':>9} "
            f"{'predicted':>10} {'measured':>9}"
        ]
        for point in points:
            measured = (
                f"{point.measured.gflops:9.2f}" if point.measured else "        -"
            )
            lines.append(
                f"{point.spec.name:<24} {point.n_spes:>4} "
                f"{point.spec.arithmetic_intensity:>7.2f} {point.bound:>9} "
                f"{point.predicted_gflops:>10.2f} {measured}"
            )
        return "\n".join(lines)
