"""Reproduce the whole paper in one command.

Runs every experiment, validates every claim, derives the guidelines,
and writes text reports plus CSVs (one per figure) to an output
directory::

    python -m repro.reproduce                 # default sweep, ./repro-out/
    python -m repro.reproduce --quick         # smoke sweep (~30 s)
    python -m repro.reproduce --paper-scale   # the paper's full protocol
    python -m repro.reproduce --outdir /tmp/cell
    python -m repro.reproduce --quick --trace out.json   # + chip trace
    python -m repro.reproduce --jobs 8        # fan repetitions over 8 processes
    python -m repro.reproduce --no-cache      # ignore .repro-cache/

Repetitions are independent simulations; ``--jobs N`` (default: one per
CPU core) fans them across a process pool with a deterministic ordered
merge, so reports are byte-identical for every N (``--jobs 1`` is the
serial path).  Completed repetitions are memoised in ``.repro-cache/``
keyed by machine config, workloads, seed and code version; a re-run
after an unrelated edit (or none) skips straight to the reports.
``--no-cache`` bypasses the cache, ``--cache-dir`` relocates it,
``--cache-max-mb`` caps it with least-recently-used eviction.

Sweeps survive failure instead of restarting from zero.  Worker
crashes are detected and re-dispatched (bounded by ``--retries``);
``--timeout`` adds a per-repetition wall-clock bound that catches hung
workers; ``--partial`` returns every completed cell plus a structured
failure report instead of aborting a nearly-done sweep.  ``--resume``
journals every completed repetition to ``<outdir>/sweep-journal.jsonl``
(``--journal PATH`` relocates it) and, on a re-run after a crash or
SIGKILL, replays the journal and re-executes only the remainder —
byte-identical to an uninterrupted run::

    python -m repro.reproduce --quick --resume          # crash-safe sweep
    # ... SIGKILL / OOM / power loss ...
    python -m repro.reproduce --quick --resume          # picks up where it died

``--trace PATH`` additionally runs a traced showcase workload (memory
streams plus SPE couples) and writes a Chrome trace-event JSON loadable
in Perfetto / ``chrome://tracing``; summarise it afterwards with
``python -m repro.trace_report PATH``.

``--faults SPEC`` additionally runs the fault-tolerance showcase: the
offload runtime executes a wavefront task graph under deterministic
injected faults (``--fault-seed`` picks the fault stream) and must
complete the whole graph under both scheduling policies, quarantining
crashed SPEs and re-dispatching their work::

    python -m repro.reproduce --quick --faults spe_crash:1 --fault-seed 7
    python -m repro.reproduce --quick --faults dma_drop:0.02,ecc_retry:0.05

``--sanitize`` additionally runs the DMA hazard sanitizer showcase
(:mod:`repro.sim.sanitizer`): the shipped double-buffered kernels must
run hazard-free, and a deliberately unsynchronised DMA pair must be
flagged.  The sanitizer is a pure observer — with or without it, runs
are byte-identical.

``--surrogate[=fit|predict|auto]`` puts the analytic bandwidth
surrogate (:mod:`repro.analysis.surrogate`) in front of the simulator:
in-domain repetitions are answered by per-path fitted bandwidth laws in
O(1), out-of-domain ones fall back to the DES (``auto``, the default
mode, feeds fallbacks back into the training set and refits).  The
model persists at ``--surrogate-path`` (default
``<cache-dir>/surrogate.json``) keyed by code version; stale models
are refitted.  Cached/journalled truth always wins over a prediction,
and predictions are never persisted::

    python -m repro.reproduce --quick --surrogate          # auto: fit or load, serve, refit
    python -m repro.reproduce --quick --surrogate=fit      # force a fresh training sweep
    python -m repro.reproduce --quick --surrogate=predict  # serve from the stored model only

Exit status is non-zero if any paper claim fails to reproduce.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis import GuidelineAdvisor, StreamingComparison
from repro.core import (
    CouplesExperiment,
    CycleExperiment,
    PairDistanceExperiment,
    PairSyncExperiment,
    PpeBandwidthExperiment,
    ResultCache,
    SpeLocalStoreExperiment,
    SpeMemoryExperiment,
)
from repro.core import validation
from repro.core.cache import DEFAULT_CACHE_DIR
from repro.core.experiment import ExperimentResult
from repro.core.report import format_series_chart, render_result, to_csv
from repro.core.spe_pairs import SYNC_AFTER_ALL
from repro.runtime.journal import SweepJournal
from repro.runtime.parallel import SweepExecutor, default_jobs
from repro.runtime.resilience import HostRetryPolicy, SweepFailureReport

#: Sweep presets: (element sizes, repetitions, bytes per SPE).
PRESETS = {
    "quick": ((1024, 16384), 2, 2 ** 20),
    "default": ((128, 512, 1024, 4096, 16384), 6, 2 ** 20),
    "paper": ((128, 256, 512, 1024, 2048, 4096, 8192, 16384), 10, 2 ** 21),
}


def sweep_experiments(preset: str) -> dict:
    """The five seed-swept DMA experiments of the reproduce sweep, in
    sweep order, freshly constructed for a preset.

    Single source of the sweep's geometry: :func:`run_all` runs these,
    and the bandwidth surrogate's training population is collected from
    these same objects
    (:func:`repro.analysis.surrogate_store.training_specs`), so the
    fitted domain can never drift from the sweep it answers.
    """
    sizes, repetitions, volume = PRESETS[preset]
    return {
        # Memory bandwidth barely depends on placement; fewer
        # repetitions suffice (see SpeMemoryExperiment).
        "memory": SpeMemoryExperiment(
            element_sizes=sizes,
            repetitions=min(3, repetitions),
            bytes_per_spe=volume,
        ),
        "distance": PairDistanceExperiment(
            element_sizes=(16384,), repetitions=repetitions,
            bytes_per_spe=volume,
        ),
        "sync": PairSyncExperiment(
            sync_policies=(1, 2, 4, 16, SYNC_AFTER_ALL),
            element_sizes=tuple(sorted(set(sizes) | {512, 1024, 4096, 16384})),
            repetitions=2,
            bytes_per_spe=volume,
        ),
        "couples": CouplesExperiment(
            element_sizes=sizes, repetitions=repetitions, bytes_per_spe=volume
        ),
        "cycle": CycleExperiment(
            element_sizes=sizes, repetitions=repetitions, bytes_per_spe=volume
        ),
    }


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        )
    return value


def _non_negative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {text!r}"
        )
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {text!r}"
        ) from None
    if not value > 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {text!r}"
        )
    return value


def resolve_jobs(requested: int | None) -> int:
    """The effective worker count: default to every core, reject
    nonsense, clamp an over-ask to the machine (extra workers would
    only thrash a sweep of CPU-bound simulations)."""
    available = default_jobs()
    if requested is None:
        return available
    if requested < 1:
        raise ValueError(f"--jobs must be a positive integer, got {requested}")
    if requested > available:
        print(
            f"warning: --jobs {requested} exceeds the {available} available "
            f"CPU core(s); clamping to {available}"
        )
        return available
    return requested


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.reproduce", description=__doc__
    )
    parser.add_argument("--outdir", default="repro-out")
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace-event JSON of a traced showcase run",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="run the fault-tolerance showcase with this fault spec "
        "(e.g. spe_crash:1 or dma_drop:0.02,ecc_retry:0.05)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run the DMA hazard sanitizer showcase: the shipped "
        "kernels must be hazard-free and a deliberately unsynchronised "
        "pair must be flagged",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for the deterministic fault stream (default 0)",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker processes for the sweeps (default: one per CPU "
        "core; 1 = serial; asks beyond the CPU count are clamped)",
    )
    parser.add_argument(
        "--timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-repetition wall-clock timeout for pooled sweeps; a "
        "hung worker is replaced and its repetition retried (default: "
        "no timeout)",
    )
    parser.add_argument(
        "--retries",
        type=_non_negative_int,
        default=2,
        metavar="N",
        help="re-dispatches of a repetition after a worker crash, hang "
        "or error before it counts as failed (default 2)",
    )
    parser.add_argument(
        "--partial",
        action="store_true",
        help="on exhausted retries, keep every completed cell and "
        "print a structured failure report instead of aborting the "
        "sweep (claims that lost their data are skipped)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="journal every completed repetition (crash-safe append) "
        "and replay the journal on re-run, so an interrupted sweep "
        "re-executes only the remainder",
    )
    parser.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="sweep-journal location (default with --resume: "
        "<outdir>/sweep-journal.jsonl); implies --resume",
    )
    parser.add_argument(
        "--cache-max-mb",
        type=_positive_int,
        default=None,
        metavar="MB",
        help="cap the result cache at this size, evicting "
        "least-recently-used entries (default: unbounded)",
    )
    parser.add_argument(
        "--engine",
        choices=("reference", "fast"),
        default="reference",
        help="simulation engine for the sweeps: the per-event reference "
        "engine or the coalescing fast engine (identical results; runs "
        "with trace/fault/sanitizer observers always use reference)",
    )
    parser.add_argument(
        "--surrogate",
        nargs="?",
        const="auto",
        choices=("fit", "predict", "auto"),
        default=None,
        metavar="MODE",
        help="answer in-domain repetitions from the analytic bandwidth "
        "surrogate instead of simulating them: 'fit' refits from the "
        "training sweep unconditionally, 'predict' serves the stored "
        "model (fitting only when it is missing or stale), 'auto' "
        "(the default with a bare --surrogate) additionally feeds "
        "simulated fallbacks back into the model and persists the "
        "grown fit",
    )
    parser.add_argument(
        "--surrogate-path",
        default=None,
        metavar="PATH",
        help="fitted-model location (default: surrogate.json inside "
        "the cache directory)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the persistent result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="PATH",
        help=f"result-cache directory (default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="cumulative",
        choices=("cumulative", "tottime"),
        default=None,
        metavar="SORT",
        help="run under cProfile and print the top 25 functions to "
        "stderr, sorted by cumulative time (the default with a bare "
        "--profile) or by tottime",
    )
    parser.add_argument(
        "--profile-out",
        default=None,
        metavar="PATH",
        help="additionally dump the raw cProfile stats to this file "
        "(loadable with pstats; implies --profile)",
    )
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument("--quick", action="store_true")
    scale.add_argument("--paper-scale", action="store_true")
    args = parser.parse_args(argv)
    if args.profile_out is not None and args.profile is None:
        args.profile = "cumulative"
    return args


def _write(outdir: str, name: str, text: str) -> None:
    path = os.path.join(outdir, name)
    with open(path, "w") as handle:
        handle.write(text)
    print(f"wrote {path}")


def _save_result(outdir: str, result: ExperimentResult) -> None:
    _write(outdir, f"{result.name}.txt", render_result(result))
    for table_name, table in result.tables.items():
        _write(outdir, f"{result.name}.{table_name}.csv", to_csv(table))


def run_all(
    preset: str, outdir: str, executor: SweepExecutor | None = None
) -> list[validation.ClaimCheck]:
    """Run every experiment and write the reports.

    ``executor`` routes each experiment's repetitions through a
    :class:`~repro.runtime.parallel.SweepExecutor` (process fan-out
    and/or the persistent result cache); ``None`` keeps the historical
    inline-serial path.
    """
    experiments = sweep_experiments(preset)
    os.makedirs(outdir, exist_ok=True)
    checks: list[validation.ClaimCheck] = []

    def execute(experiment) -> ExperimentResult:
        if executor is None:
            return experiment.run()
        return executor.run(experiment)

    def guarded(validate):
        """Run one validation/analysis step; in partial-results mode a
        dropped cell (KeyError) skips the step instead of crashing the
        95% of the sweep that did complete."""
        try:
            return validate()
        except KeyError as error:
            if executor is not None and executor.failures:
                print(f"  validation skipped (partial results): {error}")
                return []
            raise

    print("[1/8] PPE bandwidth (Figures 3, 4, 6)")
    ppe: dict[str, ExperimentResult] = {}
    for level in ("l1", "l2", "mem"):
        ppe[level] = execute(PpeBandwidthExperiment(level))
        _save_result(outdir, ppe[level])
    checks += guarded(lambda: validation.check_ppe(ppe))

    print("[2/8] SPU <-> local store (section 4.2.2)")
    localstore = execute(SpeLocalStoreExperiment())
    _save_result(outdir, localstore)
    checks += guarded(lambda: validation.check_localstore(localstore))

    print("[3/8] SPE <-> memory (Figure 8)")
    memory = execute(experiments["memory"])
    _save_result(outdir, memory)
    checks += guarded(lambda: validation.check_spe_memory(memory))
    _write(
        outdir,
        "fig08-chart.txt",
        format_series_chart(
            memory.table("get"),
            axis="element_bytes",
            series_fixed=[
                (f"{n} SPE(s)", {"n_spes": n}) for n in (1, 2, 4, 8)
            ],
            peak=23.8,
            title="Figure 8 (GET): SPE-to-memory bandwidth",
        ),
    )

    print("[4/8] pair distance (Figure 9 setup)")
    distance = execute(experiments["distance"])
    _save_result(outdir, distance)
    checks += guarded(lambda: validation.check_pair_distance(distance))

    print("[5/8] sync delay (Figure 10)")
    sync = execute(experiments["sync"])
    _save_result(outdir, sync)
    checks += guarded(lambda: validation.check_pair_sync(sync))

    print("[6/8] couples (Figures 12/13)")
    couples = execute(experiments["couples"])
    _save_result(outdir, couples)
    checks += guarded(lambda: validation.check_couples(couples))

    print("[7/8] cycle (Figures 15/16)")
    cycle = execute(experiments["cycle"])
    _save_result(outdir, cycle)
    checks += guarded(lambda: validation.check_cycle(cycle, couples))

    print("[8/8] streaming guideline + section-5 rules")
    streams = StreamingComparison(chunks_per_stream_unit=32).run()
    stream_text = "\n".join(
        f"{result.label}: {result.gbps:.2f} GB/s"
        for result in streams.values()
    ) + (
        f"\nadvantage: "
        f"{streams['double'].gbps / streams['single'].gbps:.2f}x\n"
    )
    _write(outdir, "guideline-streams.txt", stream_text)

    advisor = GuidelineAdvisor()
    for level, result in ppe.items():
        advisor.add_ppe(level, result)
    guarded(lambda: advisor.add_memory(memory))
    guarded(lambda: advisor.add_pair_sync(sync))
    guarded(lambda: advisor.add_couples(couples))
    guarded(lambda: advisor.add_cycle(cycle))
    guidelines = "\n".join(str(rule) for rule in advisor.guidelines()) + "\n"
    _write(outdir, "guidelines.txt", guidelines)

    _write(outdir, "validation.txt", validation.summarize(checks) + "\n")
    return checks


def run_traced(preset: str, path: str, seed: int = 1000) -> bool:
    """Run the traced showcase workload and write a Chrome trace to
    ``path``.  Returns True when the trace stream reproduces the live
    EIB counters exactly (it must, for a completed run)."""
    from repro.cell.chip import CellChip
    from repro.cell.topology import SpeMapping
    from repro.core.kernels import DmaWorkload, dma_stream_kernel
    from repro.libspe import SpeContext
    from repro.sim import TraceRecorder, TraceSummary, write_chrome_trace

    sizes, _repetitions, volume = PRESETS[preset]
    element_bytes = max(sizes)
    n_elements = max(32, min(256, volume // element_bytes))
    recorder = TraceRecorder()
    chip = CellChip(mapping=SpeMapping.random(seed, 8), trace=recorder)
    # Memory streams on SPEs 0-3 (bank + MFC records), couples on
    # 4/5 and 6/7 (ring-conflict records): every record type fires.
    for logical in range(4):
        out: dict = {}
        workload = DmaWorkload(
            direction="get", element_bytes=element_bytes, n_elements=n_elements
        )
        SpeContext(chip, logical).load(dma_stream_kernel, workload, out, None)
    for a, b in ((4, 5), (6, 7)):
        out = {}
        workload = DmaWorkload(
            direction="copy",
            element_bytes=element_bytes,
            n_elements=n_elements,
            partner_logical=b,
        )
        SpeContext(chip, a).load(dma_stream_kernel, workload, out, chip.spe(b))
    chip.run()
    counters = TraceSummary(recorder.records).counters()
    live = {
        "grants": chip.eib.grants,
        "conflicts": chip.eib.conflicts,
        "wait_cycles": chip.eib.wait_cycles,
        "bytes_moved": chip.eib.bytes_moved,
    }
    write_chrome_trace(
        path,
        recorder.records,
        cpu_hz=chip.config.clock.cpu_hz,
        metadata={"counters": live, "seed": seed, "preset": preset},
    )
    print(
        f"wrote {path} ({len(recorder.records)} records; "
        f"read it with python -m repro.trace_report {path})"
    )
    if counters != live:
        print(f"trace/live counter mismatch: {counters} vs {live}")
        return False
    return True


def racy_pair_program(spu, out):
    # Two GETs into the same LS bytes, same tag group, no wait between
    # them: the canonical unsynchronised DMA pair.  Module-level (not
    # nested in run_sanitized) so the static/runtime cross-validation
    # test can lint exactly the program the runtime sanitizer flags.
    yield from spu.mfc_get(size=4096, tag=0)
    yield from spu.mfc_get(size=4096, tag=0)
    yield from spu.wait_tags([0])
    out["done"] = True


def run_sanitized(preset: str, seed: int = 1000) -> bool:
    """Run the DMA hazard sanitizer showcase (``--sanitize``).

    Two runs, both with the sanitizer attached (the sanitizer is a pure
    observer, so the simulations are byte-identical to unsanitized ones):

    * the showcase workload (memory streams plus SPE couples) with the
      shipped double-buffered kernels — must report **zero** hazards;
    * a deliberately unsynchronised GET/GET pair reusing one LS buffer
      with no intervening tag wait — the sanitizer must flag it.

    Returns True when both behave as claimed.
    """
    from repro.cell.chip import CellChip
    from repro.cell.topology import SpeMapping
    from repro.core.kernels import DmaWorkload, dma_stream_kernel
    from repro.libspe import SpeContext
    from repro.sim import DmaSanitizer

    sizes, _repetitions, volume = PRESETS[preset]
    # The largest paper elements (16 KiB against main memory) genuinely
    # reuse LS buffers — 16 in-flight commands fill the whole 256 KiB
    # local store — so the clean showcase runs the largest size whose
    # rotation provably fits (see docs/MODEL.md, "Correctness tooling").
    element_bytes = max(s for s in sizes if s <= 4096)
    n_elements = max(32, min(256, volume // element_bytes))
    sanitizer = DmaSanitizer()
    chip = CellChip(mapping=SpeMapping.random(seed, 8), sanitizer=sanitizer)
    for logical in range(4):
        workload = DmaWorkload(
            direction="get", element_bytes=element_bytes, n_elements=n_elements
        )
        SpeContext(chip, logical).load(dma_stream_kernel, workload, {}, None)
    for a, b in ((4, 5), (6, 7)):
        workload = DmaWorkload(
            direction="copy",
            element_bytes=element_bytes,
            n_elements=n_elements,
            partner_logical=b,
        )
        SpeContext(chip, a).load(dma_stream_kernel, workload, {}, chip.spe(b))
    chip.run()
    print(f"sanitized showcase: {sanitizer.report()}")
    ok = True
    if sanitizer.findings:
        print("  FAIL: the shipped kernels must run hazard-free")
        ok = False

    racy_sanitizer = DmaSanitizer()
    racy_chip = CellChip(sanitizer=racy_sanitizer)
    SpeContext(racy_chip, 0).load(racy_pair_program, {})
    racy_chip.run()
    print(f"racy pair: {racy_sanitizer.report()}")
    if not racy_sanitizer.findings:
        print("  FAIL: the unsynchronised pair must be flagged")
        ok = False
    return ok


def run_faulted(spec: str, seed: int) -> bool:
    """Run the fault-tolerance showcase: the offload runtime must finish
    a wavefront graph under injected faults with both policies, and a
    re-run with the same seed must reproduce the exact same stats."""
    from repro.runtime import OffloadRuntime, wavefront
    from repro.sim import FaultEngine, FaultSpecError

    try:
        parsed = FaultEngine(spec, seed=seed)
    except FaultSpecError as error:
        print(f"bad --faults spec: {error}")
        return False
    print(f"fault-tolerance showcase: {parsed.describe()}")
    graph = wavefront(4, 4)
    ok = True
    for policy in ("forward", "memory"):
        stats = OffloadRuntime(
            graph, n_spes=8, policy=policy,
            faults=FaultEngine(spec, seed=seed),
        ).run()
        again = OffloadRuntime(
            graph, n_spes=8, policy=policy,
            faults=FaultEngine(spec, seed=seed),
        ).run()
        print(f"  {stats}")
        if (stats.makespan_cycles, stats.faults_injected,
                stats.tasks_retried, stats.spes_lost) != (
                again.makespan_cycles, again.faults_injected,
                again.tasks_retried, again.spes_lost):
            print(f"  NON-DETERMINISTIC under seed {seed}: {stats} vs {again}")
            ok = False
    return ok


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.profile is None:
        return _main(args)
    # Profiled run: wrap the whole pipeline, report to stderr so the
    # validation summary on stdout stays machine-readable.
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return _main(args)
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats(args.profile).print_stats(25)
        if args.profile_out is not None:
            profiler.dump_stats(args.profile_out)
            print(
                f"profile stats written to {args.profile_out}",
                file=sys.stderr,
            )


def _main(args: argparse.Namespace) -> int:
    preset = "quick" if args.quick else "paper" if args.paper_scale else "default"
    jobs = resolve_jobs(args.jobs)
    cache = None if args.no_cache else ResultCache(
        args.cache_dir,
        max_bytes=None if args.cache_max_mb is None else args.cache_max_mb * 2 ** 20,
    )
    journal = None
    if args.resume or args.journal:
        journal_path = args.journal or os.path.join(
            args.outdir, "sweep-journal.jsonl"
        )
        os.makedirs(args.outdir, exist_ok=True)
        journal = SweepJournal(journal_path)
        print(f"sweep journal: {journal.describe()}")
    executor = SweepExecutor(
        jobs=jobs,
        cache=cache,
        engine=args.engine,
        policy=HostRetryPolicy(timeout_s=args.timeout, retries=args.retries),
        partial_results=args.partial,
        journal=journal,
    )
    try:
        if args.surrogate:
            from repro.analysis.surrogate_store import (
                SurrogateStore,
                fit_surrogate,
            )

            surrogate_path = args.surrogate_path or os.path.join(
                args.cache_dir, "surrogate.json"
            )
            surrogate_store = SurrogateStore(surrogate_path)
            model = (
                None if args.surrogate == "fit" else surrogate_store.load()
            )
            if model is None:
                reason = (
                    "refit requested" if args.surrogate == "fit"
                    else f"no servable model at {surrogate_path}"
                )
                print(
                    f"surrogate: fitting from the {preset!r} training "
                    f"sweep ({reason})"
                )
                model = fit_surrogate(executor, preset)
                surrogate_store.save(model)
                print(model.report.summary())
            else:
                print(
                    f"surrogate: loaded {model.describe()} "
                    f"from {surrogate_path}"
                )
            executor.surrogate = model
        checks = run_all(preset, args.outdir, executor=executor)
        if (
            executor.surrogate is not None
            and args.surrogate == "auto"
            and executor.surrogate.pending
        ):
            grown = executor.surrogate.pending
            executor.surrogate.refit()
            surrogate_store.save(executor.surrogate)
            print(
                f"surrogate: refitted with {grown} fallback "
                f"observation(s); now {executor.surrogate.describe()}"
            )
    finally:
        executor.close()
        if journal is not None:
            journal.close()
    print(f"sweep execution: {executor.describe()}")
    if executor.failures:
        report = SweepFailureReport(
            failures=executor.failures,
            total=executor.simulated + executor.journal_hits
            + len(executor.failures)
            + (executor.cache.hits if executor.cache is not None else 0),
            completed=executor.simulated + executor.journal_hits
            + (executor.cache.hits if executor.cache is not None else 0),
        )
        print(report.summary())
    trace_ok = True
    if args.trace:
        trace_ok = run_traced(preset, args.trace)
    faults_ok = True
    if args.faults:
        faults_ok = run_faulted(args.faults, args.fault_seed)
    sanitize_ok = True
    if args.sanitize:
        sanitize_ok = run_sanitized(preset)
    print()
    print(validation.summarize(checks))
    passed = (
        all(check.passed for check in checks)
        and not executor.failures
        and trace_ok and faults_ok and sanitize_ok
    )
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
