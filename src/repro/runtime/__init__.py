"""A CellSs-style task-offload runtime on the modelled chip.

The paper's related work describes CellSs (Bellens et al.): "The model
is based on the definition of tasks, and exposing the dependencies among
them.  The runtime library then deals with generating the threads,
scheduling them on the SPEs, and transferring data to/from them.  The
bandwidth results, and the programming guidelines that we provide in
this paper would be very useful in optimizing the runtime library used
in such programming model."

This subpackage is that runtime, optimised *by* the paper's results:

* tasks declare FLOPs, external inputs, an output size and dependencies
  (:mod:`repro.runtime.task`);
* SPE workers pull ready tasks, DMA their inputs, compute and publish
  their outputs (:mod:`repro.runtime.offload`);
* the scheduler applies the paper's guidelines: outputs are cached in
  the producer's local store and *forwarded* SPE-to-SPE (where the
  paper measures near-peak bandwidth) instead of bouncing through main
  memory (where 8 concurrent SPEs saturate); ready-task selection
  prefers the SPE already holding the task's inputs.

The ``memory`` policy disables forwarding, which is exactly the
baseline an un-tuned runtime would implement — the comparison is the
point.
"""

from repro.runtime.journal import SweepJournal
from repro.runtime.offload import OffloadRuntime, RuntimeStats
from repro.runtime.parallel import DeferredStats, SweepExecutor, default_jobs
from repro.runtime.resilience import (
    FailureMonitor,
    HostRetryPolicy,
    InflightTable,
    ResiliencePolicy,
    SpecFailure,
    SweepError,
    SweepFailureReport,
)
from repro.runtime.task import Task, TaskGraph, chain, fan_out_fan_in, wavefront

__all__ = [
    "DeferredStats",
    "FailureMonitor",
    "HostRetryPolicy",
    "InflightTable",
    "OffloadRuntime",
    "ResiliencePolicy",
    "RuntimeStats",
    "SpecFailure",
    "SweepError",
    "SweepExecutor",
    "SweepFailureReport",
    "SweepJournal",
    "default_jobs",
    "Task",
    "TaskGraph",
    "chain",
    "fan_out_fan_in",
    "wavefront",
]
