"""Tasks and task graphs for the offload runtime.

A :class:`Task` is one SPE-sized unit of work: it reads the outputs of
the tasks it depends on (plus optional external input from main memory),
computes, and produces one output block.  A :class:`TaskGraph` is a DAG
of tasks with cycle detection and ready-set bookkeeping.

Three factories build the graph shapes the examples and benchmarks use:
a linear ``chain`` (pure pipeline), ``fan_out_fan_in`` (map-reduce) and
a ``wavefront`` (stencil sweep) whose diagonal parallelism exercises
locality-aware scheduling.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.cell.errors import ConfigError

_task_ids = itertools.count()


@dataclass
class Task:
    """One offloadable unit of work."""

    name: str
    flops: float
    output_bytes: int
    external_input_bytes: int = 0
    depends_on: tuple["Task", ...] = ()
    task_id: int = field(default_factory=lambda: next(_task_ids))

    def __post_init__(self):
        if self.flops < 0:
            raise ConfigError(f"task {self.name!r} has negative FLOPs")
        if self.output_bytes < 16 or self.output_bytes % 16:
            raise ConfigError(
                f"task {self.name!r} output must be a quadword multiple "
                f">= 16 B, got {self.output_bytes}"
            )
        if self.external_input_bytes < 0:
            raise ConfigError(f"task {self.name!r} has negative input")
        self.depends_on = tuple(self.depends_on)

    @property
    def input_bytes(self) -> int:
        """Total bytes this task consumes."""
        return self.external_input_bytes + sum(
            dep.output_bytes for dep in self.depends_on
        )

    def __hash__(self) -> int:
        return self.task_id

    def __repr__(self) -> str:
        return f"Task({self.name!r}, deps={len(self.depends_on)})"


class TaskGraph:
    """A validated DAG of tasks."""

    def __init__(self, tasks: Sequence[Task]):
        if not tasks:
            raise ConfigError("a task graph needs at least one task")
        self.tasks: list[Task] = list(tasks)
        known = set(self.tasks)
        for task in self.tasks:
            for dep in task.depends_on:
                if dep not in known:
                    raise ConfigError(
                        f"task {task.name!r} depends on {dep.name!r}, which "
                        "is not in the graph"
                    )
        self._check_acyclic()
        self.consumers: dict[Task, list[Task]] = {task: [] for task in self.tasks}
        for task in self.tasks:
            for dep in task.depends_on:
                self.consumers[dep].append(task)

    def _check_acyclic(self) -> None:
        state: dict[Task, int] = {}

        def visit(task: Task) -> None:
            if state.get(task) == 1:
                raise ConfigError(f"task graph has a cycle through {task.name!r}")
            if state.get(task) == 2:
                return
            state[task] = 1
            for dep in task.depends_on:
                visit(dep)
            state[task] = 2

        for task in self.tasks:
            visit(task)

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def total_flops(self) -> float:
        return sum(task.flops for task in self.tasks)

    @property
    def critical_path_flops(self) -> float:
        """FLOPs along the longest dependency chain (a lower bound on
        serial work, ignoring all data movement)."""
        memo: dict[Task, float] = {}

        def depth(task: Task) -> float:
            if task not in memo:
                memo[task] = task.flops + max(
                    (depth(dep) for dep in task.depends_on), default=0.0
                )
            return memo[task]

        return max(depth(task) for task in self.tasks)


def chain(
    n_stages: int,
    block_bytes: int = 16384,
    flops_per_stage: float = 16384.0,
    external_first_input: bool = True,
) -> TaskGraph:
    """A linear pipeline: stage i consumes stage i-1's block."""
    if n_stages < 1:
        raise ConfigError(f"chain needs >= 1 stage, got {n_stages}")
    tasks: list[Task] = []
    for stage in range(n_stages):
        tasks.append(
            Task(
                name=f"stage{stage}",
                flops=flops_per_stage,
                output_bytes=block_bytes,
                external_input_bytes=(
                    block_bytes if stage == 0 and external_first_input else 0
                ),
                depends_on=(tasks[-1],) if tasks else (),
            )
        )
    return TaskGraph(tasks)


def fan_out_fan_in(
    width: int,
    block_bytes: int = 16384,
    flops_per_task: float = 32768.0,
) -> TaskGraph:
    """Map-reduce: a source, ``width`` independent workers, a sink."""
    if width < 1:
        raise ConfigError(f"fan width must be >= 1, got {width}")
    source = Task(
        name="source",
        flops=flops_per_task,
        output_bytes=block_bytes,
        external_input_bytes=block_bytes,
    )
    workers = [
        Task(
            name=f"map{i}",
            flops=flops_per_task,
            output_bytes=block_bytes,
            depends_on=(source,),
        )
        for i in range(width)
    ]
    sink = Task(
        name="reduce",
        flops=flops_per_task,
        output_bytes=block_bytes,
        depends_on=tuple(workers),
    )
    return TaskGraph([source] + workers + [sink])


def wavefront(
    width: int,
    steps: int,
    block_bytes: int = 16384,
    flops_per_task: float = 32768.0,
) -> TaskGraph:
    """A stencil sweep: task (i, t) depends on (i-1..i+1, t-1).

    Row t exposes ``width``-way parallelism while every task's inputs
    sit with its predecessors — the shape where forwarding and locality
    scheduling pay off most.
    """
    if width < 1 or steps < 1:
        raise ConfigError("wavefront needs width >= 1 and steps >= 1")
    rows: list[list[Task]] = []
    for t in range(steps):
        row: list[Task] = []
        for i in range(width):
            if t == 0:
                deps: tuple[Task, ...] = ()
                external = block_bytes
            else:
                neighbours = range(max(0, i - 1), min(width, i + 2))
                deps = tuple(rows[t - 1][j] for j in neighbours)
                external = 0
            row.append(
                Task(
                    name=f"cell({i},{t})",
                    flops=flops_per_task,
                    output_bytes=block_bytes,
                    external_input_bytes=external,
                    depends_on=deps,
                )
            )
        rows.append(row)
    return TaskGraph([task for row in rows for task in row])
