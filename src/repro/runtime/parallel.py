"""Parallel sweep execution: fan independent repetitions over processes.

The paper's protocol repeats every bandwidth experiment with a fresh
machine and a new random SPE placement per repetition, so a sweep is a
large set of *independent* simulations.  :class:`SweepExecutor` runs
them through a ``multiprocessing`` pool while keeping the results
deterministic and bit-identical to the serial path:

* every repetition is a picklable :class:`~repro.core.experiment.RunSpec`
  value, and :func:`~repro.core.experiment.run_spec` is a pure function
  of it — same spec, same sample, whichever process runs it;
* results are merged back in **submission order** (``Pool.map``
  preserves order), so each sweep cell reduces over exactly the same
  sample sequence as a serial run, and report CSVs come out
  byte-identical for any ``--jobs`` value;
* workers build their own simulation environments, so tracing and fault
  injection never leak into a fanned-out repetition (worker isolation);
* a :class:`~repro.core.cache.ResultCache` can be attached: cache hits
  are served in the parent without touching the pool, misses are
  simulated and then written back.

With ``jobs=1`` no pool is created and repetitions run inline — the
historical serial path, used as the determinism oracle by the tests.

Deferred execution: an experiment's ``run()`` builds its sweep cell by
cell, each cell asking for its repetitions' statistics mid-loop.  To
let one pool chew on the *whole* sweep instead of barrier-synchronising
per cell (a cell has only a handful of repetitions — nowhere near
enough to keep N workers busy), :meth:`SweepExecutor.stats` returns a
lightweight :class:`DeferredStats` placeholder when a pool is in play;
:meth:`SweepExecutor.run` resolves every placeholder in the result's
tables after ``run()`` returns, in one ordered ``Pool.map`` over all
collected repetitions.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
from collections.abc import Sequence

from repro.core.experiment import Experiment, ExperimentResult, RunSpec, run_spec
from repro.core.results import BandwidthSample, BandwidthStats
from repro.sim.engine_fast import ENGINES


def default_jobs() -> int:
    """The default worker count: every core the host offers."""
    return os.cpu_count() or 1


class DeferredStats:
    """Placeholder for a cell's statistics, resolved after the sweep.

    Holds the slice of the executor's pending-spec list that belongs to
    one sweep cell.  An experiment must not read through it during
    ``run()`` (none of the experiments do — cells are only written into
    tables); :meth:`SweepExecutor.run` replaces every placeholder with
    the real :class:`~repro.core.results.BandwidthStats` before the
    result reaches reports or validation.
    """

    __slots__ = ("start", "count")

    def __init__(self, start: int, count: int):
        self.start = start
        self.count = count

    def __repr__(self) -> str:
        return f"<DeferredStats [{self.start}:{self.start + self.count}]>"


class SweepExecutor:
    """Runs repetitions serially, from cache, or across a process pool.

    ``jobs`` is the worker count (``None`` = one per CPU core).
    ``cache`` is an optional :class:`~repro.core.cache.ResultCache`.
    ``engine`` picks the simulation engine for every repetition this
    executor runs (``"reference"`` or ``"fast"``); both produce
    identical samples, so the cache is engine-agnostic.
    The executor owns at most one pool; :meth:`close` (or use as a
    context manager) tears it down.
    """

    def __init__(self, jobs: int | None = None, cache=None,
                 engine: str = "reference"):
        jobs = default_jobs() if jobs is None else jobs
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.jobs = jobs
        self.cache = cache
        self.engine = engine
        # functools.partial keeps the callable picklable for Pool.map.
        self._run_spec = (
            run_spec if engine == "reference"
            else functools.partial(run_spec, engine=engine)
        )
        self.simulated = 0
        self._pending: list[RunSpec] = []
        self._pool = None

    # -- experiment-facing API -------------------------------------------------

    def stats(
        self, specs: Sequence[RunSpec]
    ) -> BandwidthStats | DeferredStats:
        """Statistics over one cell's repetitions.

        Serial (``jobs == 1``): runs (or cache-serves) the repetitions
        immediately, in seed order — byte-identical to the inline path.
        Parallel: queues the specs and returns a :class:`DeferredStats`
        placeholder for :meth:`run` to resolve.
        """
        if self.jobs == 1:
            return BandwidthStats.from_samples(self.samples(list(specs)))
        start = len(self._pending)
        self._pending.extend(specs)
        return DeferredStats(start, len(specs))

    def run(self, experiment: Experiment) -> ExperimentResult:
        """Run an experiment through this executor and resolve every
        deferred cell with one ordered fan-out over the whole sweep."""
        # The pending list must not outlive this call: if run() (or the
        # resolution fan-out) raises, leftover specs would shift the
        # start offsets of every DeferredStats a *later* experiment
        # queues on this executor, resolving its cells against the wrong
        # slice of samples.
        try:
            experiment.executor = self
            result = experiment.run()
            if self._pending:
                samples = self.samples(self._pending)
                for table in result.tables.values():
                    for key, cell in table.cells.items():
                        if isinstance(cell, DeferredStats):
                            table.cells[key] = BandwidthStats.from_samples(
                                samples[cell.start:cell.start + cell.count]
                            )
        finally:
            self._pending = []
        return result

    # -- execution -------------------------------------------------------------

    def samples(self, specs: list[RunSpec]) -> list[BandwidthSample]:
        """One sample per spec, in order: cache hits served in-process,
        misses simulated (inline or across the pool) and written back."""
        cache = self.cache
        out: list[BandwidthSample | None] = [None] * len(specs)
        misses: list[int] = []
        keys: list[str] = []
        if cache is None:
            misses = list(range(len(specs)))
        else:
            # Compute each key once and thread it through get *and* the
            # put after a miss — canonical JSON + SHA-256 over the full
            # config is not free at cold-sweep scale.
            keys = [cache.key(spec) for spec in specs]
            for index, spec in enumerate(specs):
                sample = cache.get(spec, key=keys[index])
                if sample is None:
                    misses.append(index)
                else:
                    out[index] = sample
        if misses:
            pool = self._ensure_pool() if self.jobs > 1 else None
            if pool is None:
                fresh = [self._run_spec(specs[index]) for index in misses]
            else:
                chunksize = max(1, len(misses) // (self.jobs * 4))
                fresh = pool.map(
                    self._run_spec, [specs[index] for index in misses], chunksize
                )
            self.simulated += len(misses)
            for index, sample in zip(misses, fresh, strict=True):
                out[index] = sample
                if cache is not None:
                    cache.put(specs[index], sample, key=keys[index])
        return out  # type: ignore[return-value]

    def _ensure_pool(self):
        if self._pool is None:
            # Workers inherit nothing mutable from the parent: run_spec
            # rebuilds chip, environment, trace (NULL) and faults (NULL)
            # from the picklable spec alone.
            self._pool = multiprocessing.get_context().Pool(self.jobs)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> SweepExecutor:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> str:
        parts = [f"jobs={self.jobs}", f"simulated={self.simulated}"]
        if self.cache is not None:
            parts.append(
                f"cache: {self.cache.hits} hit(s) / {self.cache.misses} miss(es)"
            )
        return ", ".join(parts)
