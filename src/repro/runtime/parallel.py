"""Parallel sweep execution: supervised fan-out of independent repetitions.

The paper's protocol repeats every bandwidth experiment with a fresh
machine and a new random SPE placement per repetition, so a sweep is a
large set of *independent* simulations.  :class:`SweepExecutor` runs
them through a ``multiprocessing`` pool while keeping the results
deterministic and bit-identical to the serial path:

* every repetition is a picklable :class:`~repro.core.experiment.RunSpec`
  value, and :func:`~repro.core.experiment.run_spec` is a pure function
  of it — same spec, same sample, whichever process runs it (this
  purity is also what makes re-dispatch after a crash safe);
* results are merged back in **submission order**, so each sweep cell
  reduces over exactly the same sample sequence as a serial run, and
  report CSVs come out byte-identical for any ``--jobs`` value;
* workers build their own simulation environments, so tracing and fault
  injection never leak into a fanned-out repetition (worker isolation);
* a :class:`~repro.core.cache.ResultCache` can be attached: cache hits
  are served in the parent without touching the pool, misses are
  simulated and then written back;
* a :class:`~repro.runtime.journal.SweepJournal` can be attached:
  every completed repetition is appended to it the moment its sample
  exists, and journalled repetitions are replayed on a later run — the
  crash-safe ``--resume`` story;
* a fitted :class:`~repro.analysis.surrogate.SurrogateModel` can be
  attached (:attr:`SweepExecutor.surrogate`): repetitions inside its
  validated domain are answered analytically in O(1) — after the
  journal and cache, before any simulation — while out-of-domain
  repetitions simulate and feed their truth back into the model's
  training set.  Predicted samples are never written to the cache or
  the journal, so both stores stay pure simulator truth.

With ``jobs=1`` no pool is created and repetitions run inline — the
historical serial path, used as the determinism oracle by the tests.

Supervision (all off / inert by default — a healthy default run is
byte-identical to the historical one): instead of one ``Pool.map``
whose first casualty kills the whole sweep, each repetition is
dispatched with ``apply_async`` and harvested under a
:class:`~repro.runtime.resilience.HostRetryPolicy`:

* **lost workers** (SIGKILL, OOM) are detected by watching the pool's
  worker pids while waiting; the victim repetitions are re-dispatched
  to a rebuilt pool, within ``policy.retries``;
* **hung workers** are caught by ``policy.timeout_s`` (wall-clock,
  backed off per retry); the pool is torn down — which clears the hung
  process — and the repetition retried;
* **worker exceptions** are retried without a pool rebuild; if every
  attempt fails with an exception, the original exception is re-raised
  (the historical surface);
* with ``partial_results=True`` an exhausted repetition becomes a
  ``None`` hole plus a :class:`~repro.runtime.resilience.SpecFailure`
  in :attr:`SweepExecutor.failures` instead of an exception, and
  :meth:`SweepExecutor.run` reduces each cell over its surviving
  samples (cells with none are dropped and noted) — a 95%-done sweep
  returns its 95%;
* either way, completed repetitions are journalled/cached *before* any
  failure is raised, so nothing finished is ever lost.

``maxtasksperchild`` is forwarded to the pool: recycling workers every
N repetitions bounds the blast radius of leaks in long sweeps (worker
replacement looks like a pid change, so detection tolerates it — a
false positive costs one redundant, idempotent re-run).

Deferred execution: an experiment's ``run()`` builds its sweep cell by
cell, each cell asking for its repetitions' statistics mid-loop.  To
let one pool chew on the *whole* sweep instead of barrier-synchronising
per cell (a cell has only a handful of repetitions — nowhere near
enough to keep N workers busy), :meth:`SweepExecutor.stats` returns a
lightweight :class:`DeferredStats` placeholder when a pool is in play;
:meth:`SweepExecutor.run` resolves every placeholder in the result's
tables after ``run()`` returns, in one ordered fan-out over all
collected repetitions.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import time
from collections.abc import Callable, Sequence

from repro.core.experiment import (
    EngineReport,
    Experiment,
    ExperimentResult,
    RunSpec,
    run_spec_report,
)
from repro.core.results import BandwidthSample, BandwidthStats
from repro.runtime.journal import SweepJournal
from repro.runtime.resilience import (
    HostRetryPolicy,
    SpecFailure,
    SweepError,
    SweepFailureReport,
)
from repro.sim.engine_fast import ENGINES

#: How often a harvesting wait wakes up to check for lost workers.
_POLL_S = 0.1

#: Wall-clock budget for draining already-submitted work from a
#: condemned pool before it is terminated.
_DRAIN_S = 5.0


def default_jobs() -> int:
    """The default worker count: every core the host offers."""
    return os.cpu_count() or 1


class _HarvestTimeout(Exception):
    """One repetition produced no result within its policy timeout."""


class _WorkerLost(Exception):
    """Pool worker pids changed while a result was pending."""


class DeferredStats:
    """Placeholder for a cell's statistics, resolved after the sweep.

    Holds the slice of the executor's pending-spec list that belongs to
    one sweep cell.  An experiment must not read through it during
    ``run()`` (none of the experiments do — cells are only written into
    tables); :meth:`SweepExecutor.run` replaces every placeholder with
    the real :class:`~repro.core.results.BandwidthStats` before the
    result reaches reports or validation.
    """

    __slots__ = ("start", "count")

    def __init__(self, start: int, count: int):
        self.start = start
        self.count = count

    def __repr__(self) -> str:
        return f"<DeferredStats [{self.start}:{self.start + self.count}]>"


class SweepExecutor:
    """Runs repetitions serially, from cache/journal, or across a pool.

    ``jobs`` is the worker count (``None`` = one per CPU core).
    ``cache`` is an optional :class:`~repro.core.cache.ResultCache`.
    ``engine`` picks the simulation engine for every repetition this
    executor runs (``"reference"`` or ``"fast"``); both produce
    identical samples, so the cache is engine-agnostic.
    ``policy`` is the :class:`~repro.runtime.resilience.HostRetryPolicy`
    supervising pooled dispatch (default: retry crashes, never time
    out).  ``partial_results`` turns exhausted repetitions into
    structured failures instead of exceptions.  ``journal`` (a
    :class:`~repro.runtime.journal.SweepJournal` or a path) makes the
    sweep crash-safe and resumable.  ``maxtasksperchild`` recycles pool
    workers after that many repetitions.  ``target`` overrides the
    repetition callable — the chaos-test hook; it must be picklable and
    pure, like :func:`~repro.core.experiment.run_spec`.

    The executor owns at most one pool; :meth:`close` (or use as a
    context manager) tears it down.
    """

    def __init__(self, jobs: int | None = None, cache=None,
                 engine: str = "reference",
                 policy: HostRetryPolicy | None = None,
                 partial_results: bool = False,
                 journal: SweepJournal | str | None = None,
                 maxtasksperchild: int | None = None,
                 target: Callable[[RunSpec], BandwidthSample] | None = None):
        jobs = default_jobs() if jobs is None else jobs
        if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1:
            raise ValueError(f"jobs must be a positive integer, got {jobs!r}")
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        if maxtasksperchild is not None and (
            isinstance(maxtasksperchild, bool)
            or not isinstance(maxtasksperchild, int)
            or maxtasksperchild < 1
        ):
            raise ValueError(
                f"maxtasksperchild must be a positive integer or None, "
                f"got {maxtasksperchild!r}"
            )
        self.jobs = jobs
        self.cache = cache
        self.engine = engine
        self.policy = HostRetryPolicy() if policy is None else policy
        self.partial_results = partial_results
        self.maxtasksperchild = maxtasksperchild
        self._owns_journal = isinstance(journal, str)
        self.journal = SweepJournal(journal) if isinstance(journal, str) else journal
        if target is not None:
            self._run_spec = target
        else:
            # functools.partial keeps the callable picklable for the
            # pool.  The report variant carries the engine's event
            # accounting back with the sample; _harvest unwraps it.
            self._run_spec = (
                run_spec_report if engine == "reference"
                else functools.partial(run_spec_report, engine=engine)
            )
        self.simulated = 0
        #: Event accounting aggregated over simulated repetitions
        #: (journal/cache/surrogate hits run no engine, so they add
        #: nothing here).
        self.events_popped = 0
        self.events_elided = 0
        self.windows_warped = 0
        self.retried = 0
        self.journal_hits = 0
        #: Optional :class:`~repro.analysis.surrogate.SurrogateModel`.
        #: When attached, in-domain repetitions are answered by the
        #: model (after journal/cache, before any simulation) and
        #: out-of-domain repetitions simulate as usual, feeding their
        #: samples back into the model's training set.
        self.surrogate = None
        self.surrogate_hits = 0
        self.surrogate_fallbacks = 0
        self.failures: list[SpecFailure] = []
        self._pending: list[RunSpec] = []
        self._pool = None
        self._pool_pids: set[int] | None = None

    # -- experiment-facing API -------------------------------------------------

    def stats(
        self, specs: Sequence[RunSpec]
    ) -> BandwidthStats | DeferredStats | None:
        """Statistics over one cell's repetitions.

        Serial (``jobs == 1``): runs (or cache-serves) the repetitions
        immediately, in seed order — byte-identical to the inline path.
        In ``partial_results`` mode the reduction covers the surviving
        samples; ``None`` is returned when every repetition failed
        (:meth:`run` drops such cells from the tables).
        Parallel: queues the specs and returns a :class:`DeferredStats`
        placeholder for :meth:`run` to resolve.
        """
        if self.jobs == 1:
            collected = [
                sample for sample in self.samples(list(specs))
                if sample is not None
            ]
            if not collected:
                return None
            return BandwidthStats.from_samples(collected)
        start = len(self._pending)
        self._pending.extend(specs)
        return DeferredStats(start, len(specs))

    def run(self, experiment: Experiment) -> ExperimentResult:
        """Run an experiment through this executor and resolve every
        deferred cell with one ordered fan-out over the whole sweep."""
        # The pending list must not outlive this call: if run() (or the
        # resolution fan-out) raises, leftover specs would shift the
        # start offsets of every DeferredStats a *later* experiment
        # queues on this executor, resolving its cells against the wrong
        # slice of samples.
        try:
            experiment.executor = self
            result = experiment.run()
            samples = self.samples(self._pending) if self._pending else []
            for name, table in result.tables.items():
                dead = []
                for key, cell in table.cells.items():
                    if isinstance(cell, DeferredStats):
                        collected = [
                            sample
                            for sample in samples[cell.start:cell.start + cell.count]
                            if sample is not None
                        ]
                        if collected:
                            table.cells[key] = BandwidthStats.from_samples(collected)
                        else:
                            dead.append(key)
                    elif cell is None:  # serial partial cell, all failed
                        dead.append(key)
                for key in dead:
                    del table.cells[key]
                    result.notes.append(
                        f"table {name!r} cell {key}: every repetition "
                        "failed; cell dropped (see failure report)"
                    )
        finally:
            self._pending = []
        return result

    # -- execution -------------------------------------------------------------

    def samples(self, specs: list[RunSpec]) -> list[BandwidthSample | None]:
        """One sample per spec, in order: journal and cache hits served
        in-process, misses simulated (inline or across the pool) and
        written back to both stores.

        Completed repetitions are persisted before any failure
        propagates.  Holes (``None``) only appear in
        ``partial_results`` mode.
        """
        cache, journal, surrogate = self.cache, self.journal, self.surrogate
        out: list[BandwidthSample | None] = [None] * len(specs)
        misses: list[int] = []
        # Compute each key once and thread it through get *and* the
        # put/record after a miss — canonical JSON + SHA-256 over the
        # full config is not free at cold-sweep scale.  The journal
        # shares the cache's key function, so one digest serves both
        # whenever their code versions agree.
        ckeys = [cache.key(spec) for spec in specs] if cache is not None else []
        if journal is None:
            jkeys = []
        elif cache is not None and journal.code_version == cache.code_version:
            jkeys = ckeys
        else:
            jkeys = [journal.key(spec) for spec in specs]
        for index, spec in enumerate(specs):
            if journal is not None:
                sample = journal.get(spec, key=jkeys[index])
                if sample is not None:
                    self.journal_hits += 1
                    out[index] = sample
                    continue
            if cache is not None:
                sample = cache.get(spec, key=ckeys[index])
                if sample is not None:
                    out[index] = sample
                    if journal is not None:
                        journal.record(spec, sample, key=jkeys[index])
                    continue
            if surrogate is not None:
                sample = surrogate.predict(spec)
                if sample is not None:
                    # Served from the fitted model.  Predicted samples
                    # are NEVER written to the cache or the journal:
                    # both stores hold simulator truth only, so a
                    # surrogate-off rerun stays byte-identical.
                    self.surrogate_hits += 1
                    out[index] = sample
                    continue
                self.surrogate_fallbacks += 1
            misses.append(index)
        if misses:
            work = [(index, specs[index]) for index in misses]
            if self.jobs > 1:
                results, failures = self._pooled(work)
            else:
                results, failures = self._inline(work)
            self.simulated += len(results)
            for index in misses:
                sample = results.get(index)
                if sample is None:
                    continue
                sample = self._harvest(sample)
                out[index] = sample
                if journal is not None:
                    journal.record(specs[index], sample, key=jkeys[index])
                if cache is not None:
                    cache.put(specs[index], sample, key=ckeys[index])
                if surrogate is not None:
                    # Out-of-domain fallback: the simulated truth grows
                    # the training set (served at the next refit).
                    surrogate.observe(specs[index], sample)
            if failures:
                self._conclude(failures, out, len(specs))
        return out

    def _harvest(self, result):
        """Unwrap an :class:`~repro.core.experiment.EngineReport` into
        its sample, folding the event accounting into the executor's
        totals.  A ``target`` override may return bare samples — those
        pass through untouched."""
        if isinstance(result, EngineReport):
            self.events_popped += result.events_popped
            self.events_elided += result.events_elided
            self.windows_warped += result.windows_warped
            return result.sample
        return result

    def _conclude(self, failures: list[SpecFailure],
                  out: list[BandwidthSample | None], total: int) -> None:
        """Record or raise the round's failures (after persistence)."""
        if self.partial_results:
            self.failures.extend(failures)
            return
        errors = [failure.error for failure in failures
                  if failure.error is not None]
        if len(errors) == len(failures):
            # Every failure was a worker exception: re-raise the first
            # unchanged — the historical Pool.map surface.
            raise errors[0]
        raise SweepError(SweepFailureReport(
            failures=failures,
            total=total,
            completed=sum(sample is not None for sample in out),
        ))

    def _inline(self, work: list[tuple[int, RunSpec]]):
        """Serial execution with bounded retries (no pool, no timeout:
        a single process cannot preempt its own repetition)."""
        results: dict[int, BandwidthSample] = {}
        failures: list[SpecFailure] = []
        for index, spec in work:
            for attempt in range(self.policy.retries + 1):
                try:
                    results[index] = self._run_spec(spec)
                    break
                except Exception as error:
                    if attempt < self.policy.retries:
                        self.retried += 1
                        continue
                    failures.append(SpecFailure(
                        index=index, seed=spec.seed, attempts=attempt + 1,
                        cause=f"{type(error).__name__}: {error}", error=error,
                    ))
        return results, failures

    def _pooled(self, work: list[tuple[int, RunSpec]]):
        """Supervised per-spec dispatch over the pool.

        Each round submits everything still owed via ``apply_async``
        and harvests in submission order.  A hang or a lost worker
        condemns the round's pool: already-finished results are drained
        within a grace budget, the pool is terminated (clearing hung or
        half-dead workers), and the casualties are re-dispatched to a
        fresh pool — each spec at most ``policy.retries`` extra times.
        """
        results: dict[int, BandwidthSample] = {}
        failures: list[SpecFailure] = []
        queue = [(index, spec, 0) for index, spec in work]
        while queue:
            try:
                pool = self._ensure_pool()
                batch = [
                    (index, spec, attempt,
                     pool.apply_async(self._run_spec, (spec,)))
                    for index, spec, attempt in queue
                ]
            except Exception as error:
                # Broken-pool recovery: submission itself failed.
                self._discard_pool()
                retry: list = []
                for index, spec, attempt in queue:
                    self._fail_or_retry(
                        retry, failures, index, spec, attempt,
                        f"pool broken on submit: {type(error).__name__}: {error}",
                    )
                queue = retry
                continue
            retry = []
            condemned = False
            drain_deadline = 0.0
            for index, spec, attempt, handle in batch:
                if condemned:
                    # The pool is going down; salvage what already
                    # finished, re-dispatch the rest.
                    grace = max(0.0, drain_deadline - time.monotonic())
                    try:
                        results[index] = handle.get(grace)
                    except multiprocessing.TimeoutError:
                        self._fail_or_retry(
                            retry, failures, index, spec, attempt,
                            "abandoned with condemned pool",
                        )
                    except Exception as error:
                        self._fail_or_retry(
                            retry, failures, index, spec, attempt,
                            f"{type(error).__name__}: {error}", error=error,
                        )
                    continue
                timeout = self.policy.timeout_for(attempt)
                try:
                    results[index] = self._await(handle, timeout)
                except _HarvestTimeout:
                    condemned = True  # hung worker: only a rebuild clears it
                    drain_deadline = time.monotonic() + _DRAIN_S
                    self._fail_or_retry(
                        retry, failures, index, spec, attempt,
                        f"no result within {timeout:.1f}s",
                    )
                except _WorkerLost as lost:
                    condemned = True
                    drain_deadline = time.monotonic() + _DRAIN_S
                    self._fail_or_retry(
                        retry, failures, index, spec, attempt,
                        f"worker lost (pid(s) {lost})",
                    )
                except Exception as error:
                    # The worker raised: the pool itself is healthy.
                    self._fail_or_retry(
                        retry, failures, index, spec, attempt,
                        f"{type(error).__name__}: {error}", error=error,
                    )
            if condemned:
                self._discard_pool()
            queue = retry
        return results, failures

    def _fail_or_retry(self, retry: list, failures: list[SpecFailure],
                       index: int, spec: RunSpec, attempt: int, cause: str,
                       error: BaseException | None = None) -> None:
        if attempt < self.policy.retries:
            self.retried += 1
            retry.append((index, spec, attempt + 1))
            return
        failures.append(SpecFailure(
            index=index, seed=spec.seed, attempts=attempt + 1,
            cause=cause, error=error,
        ))

    def _await(self, handle, timeout: float | None) -> BandwidthSample:
        """Blocking harvest of one async result, waking every
        ``_POLL_S`` to check the deadline and the pool's worker pids."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait = _POLL_S
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise _HarvestTimeout
                wait = min(wait, remaining)
            try:
                return handle.get(wait)
            except multiprocessing.TimeoutError:
                lost = self._lost_workers()
                if lost:
                    raise _WorkerLost(", ".join(map(str, lost))) from None

    def _lost_workers(self) -> list[int]:
        """Worker pids that disappeared since the last check.

        Relies on the pool's internal worker list when available; a
        pool implementation without one simply has no fast detection
        (timeouts still apply).  The known-pid set is refreshed on
        every call, so one loss is reported exactly once.
        """
        procs = getattr(self._pool, "_pool", None)
        if not procs:
            return []
        alive = {proc.pid for proc in procs if proc.is_alive()}
        known, self._pool_pids = self._pool_pids, alive
        if known is None:
            return []
        return sorted(known - alive)

    def _ensure_pool(self):
        if self._pool is None:
            # Workers inherit nothing mutable from the parent: run_spec
            # rebuilds chip, environment, trace (NULL) and faults (NULL)
            # from the picklable spec alone.
            self._pool = multiprocessing.get_context().Pool(
                self.jobs, maxtasksperchild=self.maxtasksperchild
            )
            self._pool_pids = None
            self._lost_workers()  # prime the known-pid set
        return self._pool

    def _discard_pool(self) -> None:
        """Tear down a condemned pool (terminate clears hung workers)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_pids = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self._pool_pids = None
        if self.journal is not None and self._owns_journal:
            self.journal.close()

    def __enter__(self) -> SweepExecutor:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> str:
        parts = [f"jobs={self.jobs}", f"simulated={self.simulated}"]
        if self.events_popped or self.events_elided:
            events = (
                f"events: {self.events_popped + self.events_elided:,} "
                f"modeled / {self.events_popped:,} popped"
            )
            if self.events_elided:
                events += (
                    f" ({self.events_elided:,} fast-forwarded across "
                    f"{self.windows_warped} warp(s))"
                )
            parts.append(events)
        if self.retried:
            parts.append(f"retried={self.retried}")
        if self.journal is not None:
            parts.append(f"journal: {self.journal_hits} replayed")
        if self.surrogate is not None:
            parts.append(
                f"surrogate: {self.surrogate_hits} served / "
                f"{self.surrogate_fallbacks} simulated fallback(s)"
            )
        if self.cache is not None:
            parts.append(f"cache: {self.cache.describe()}")
        if self.failures:
            parts.append(f"incomplete: {len(self.failures)} repetition(s) failed")
        return ", ".join(parts)
