"""The offload runtime: SPE workers pulling tasks off a dependency DAG.

Scheduling applies the paper's guidelines directly:

* **Forwarding** (``policy="forward"``): a producer caches its output in
  its local store (write-through to memory for safety); a consumer on
  another SPE pulls it LS-to-LS, where the paper measures near-peak
  bandwidth, instead of re-reading main memory, where eight concurrent
  SPEs saturate.  ``policy="memory"`` is the untuned baseline: every
  value bounces through main memory.
* **Locality-aware pick**: an idle worker prefers the ready task with
  the most input bytes already sitting in its own local store.
* **Fan-out limiting**: a value with many consumers is *not* forwarded —
  sixteen SPEs pulling from one producer's local store serialise on its
  EIB off-ramp ("care must be taken in scheduling the communications in
  the EIB bus to avoid saturation"), so wide fan-outs read the
  write-through copy from memory, which both banks serve in parallel.
* **Delayed synchronisation**: input GETs across all of a task's
  dependencies share one tag group and are waited once.

The runtime runs real SPU programs on the chip model, so every transfer
contends on the EIB/banks like any other experiment in this repository.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.cell.chip import CellChip
from repro.cell.config import CellConfig
from repro.cell.dma import legal_command_sizes
from repro.cell.errors import ConfigError
from repro.cell.topology import SpeMapping
from repro.kernels.compute import Precision, SpuComputeModel
from repro.libspe import SpeContext
from repro.runtime.task import Task, TaskGraph

#: Tags: input GETs on 0, the output write-through PUT on 1.
_INPUT_TAG = 0
_OUTPUT_TAG = 1

#: SPU cycles per task for runtime bookkeeping (mailbox round trip to
#: the scheduler, argument unpacking) — CellSs-style overhead.
DISPATCH_OVERHEAD_CYCLES = 200

POLICIES = ("forward", "memory")


@dataclass
class RuntimeStats:
    """What one run of the task graph cost and where the bytes went."""

    policy: str
    n_spes: int
    n_tasks: int
    makespan_cycles: int = 0
    gflops: float = 0.0
    memory_read_bytes: int = 0
    memory_write_bytes: int = 0
    forwarded_bytes: int = 0
    ls_hit_bytes: int = 0
    tasks_per_spe: Dict[int, int] = field(default_factory=dict)

    @property
    def memory_traffic_bytes(self) -> int:
        return self.memory_read_bytes + self.memory_write_bytes

    def __str__(self) -> str:
        return (
            f"policy={self.policy}: {self.n_tasks} tasks on {self.n_spes} "
            f"SPEs in {self.makespan_cycles} cycles ({self.gflops:.2f} "
            f"GFLOP/s); memory {self.memory_traffic_bytes / 2 ** 20:.1f} MiB, "
            f"forwarded {self.forwarded_bytes / 2 ** 20:.1f} MiB, "
            f"LS hits {self.ls_hit_bytes / 2 ** 20:.1f} MiB"
        )


class OffloadRuntime:
    """Schedule one task graph over the SPEs of a modelled chip."""

    def __init__(
        self,
        graph: TaskGraph,
        n_spes: int = 8,
        policy: str = "forward",
        config: Optional[CellConfig] = None,
        compute: Optional[SpuComputeModel] = None,
        precision: Precision = Precision.SINGLE,
        ls_cache_bytes: int = 131072,
        forward_fanout_limit: int = 4,
        seed: int = 11,
    ):
        if policy not in POLICIES:
            raise ConfigError(f"policy must be one of {POLICIES}, got {policy!r}")
        if forward_fanout_limit < 1:
            raise ConfigError(
                f"forward_fanout_limit must be >= 1, got {forward_fanout_limit}"
            )
        self.graph = graph
        self.config = config or CellConfig.paper_blade()
        if not 1 <= n_spes <= self.config.n_spes:
            raise ConfigError(
                f"n_spes must be in 1..{self.config.n_spes}, got {n_spes}"
            )
        self.n_spes = n_spes
        self.policy = policy
        self.compute = compute or SpuComputeModel(self.config)
        self.precision = precision
        self.ls_cache_bytes = ls_cache_bytes
        self.forward_fanout_limit = forward_fanout_limit
        self.seed = seed

    # -- public ------------------------------------------------------------------

    def run(self) -> RuntimeStats:
        chip = CellChip(
            config=self.config,
            mapping=SpeMapping.random(self.seed, self.config.n_spes),
        )
        state = _RunState(self.graph, self.n_spes, self.ls_cache_bytes)
        stats = RuntimeStats(
            policy=self.policy,
            n_spes=self.n_spes,
            n_tasks=len(self.graph),
            tasks_per_spe={worker: 0 for worker in range(self.n_spes)},
        )
        for worker in range(self.n_spes):
            SpeContext(chip, worker).load(self._worker, chip, state, stats, worker)
        chip.run()
        if state.completed != len(self.graph):
            raise ConfigError(
                f"runtime stalled: {state.completed}/{len(self.graph)} tasks "
                "completed (dependency deadlock?)"
            )
        stats.makespan_cycles = chip.env.now
        seconds = self.config.clock.cycles_to_seconds(chip.env.now)
        stats.gflops = self.graph.total_flops / seconds / 1e9 if seconds else 0.0
        return stats

    # -- the SPU worker program -----------------------------------------------------

    def _worker(self, spu, chip: CellChip, state: "_RunState", stats: RuntimeStats,
                worker: int):
        while True:
            task = state.pick(worker)
            while task is None:
                if state.completed == len(self.graph):
                    return
                waiter = spu.spe.env.event()
                state.waiters.append(waiter)
                yield waiter
                task = state.pick(worker)
            yield spu.compute(DISPATCH_OVERHEAD_CYCLES)
            yield from self._fetch_inputs(spu, state, stats, worker, task)
            yield from spu.wait_tags([_INPUT_TAG])
            cycles = self.compute.cycles_for_flops(task.flops, self.precision)
            if cycles:
                yield spu.compute(cycles)
            # Write-through the output, then publish it.
            for size in legal_command_sizes(task.output_bytes):
                yield from spu.mfc_put(size=size, tag=_OUTPUT_TAG)
            stats.memory_write_bytes += task.output_bytes
            yield from spu.wait_tags([_OUTPUT_TAG])
            state.cache_output(worker, task)
            stats.tasks_per_spe[worker] += 1
            state.complete(task)

    def _fetch_inputs(self, spu, state: "_RunState", stats: RuntimeStats,
                      worker: int, task: Task):
        for dep in task.depends_on:
            holders = state.residency.get(dep, set())
            if worker in holders:
                stats.ls_hit_bytes += dep.output_bytes
                continue
            narrow_fanout = (
                len(state.graph.consumers[dep]) <= self.forward_fanout_limit
            )
            if self.policy == "forward" and holders and narrow_fanout:
                source = min(holders)  # deterministic choice
                partner = spu.spe.chip.spe(source)
                for size in legal_command_sizes(dep.output_bytes):
                    yield from spu.mfc_get(
                        size=size, tag=_INPUT_TAG, remote_spe=partner
                    )
                stats.forwarded_bytes += dep.output_bytes
                state.cache_copy(worker, dep)
            else:
                for size in legal_command_sizes(dep.output_bytes):
                    yield from spu.mfc_get(size=size, tag=_INPUT_TAG)
                stats.memory_read_bytes += dep.output_bytes
        if task.external_input_bytes:
            for size in legal_command_sizes(task.external_input_bytes):
                yield from spu.mfc_get(size=size, tag=_INPUT_TAG)
            stats.memory_read_bytes += task.external_input_bytes


class _RunState:
    """Shared scheduler state (mutated only between simulator events)."""

    def __init__(self, graph: TaskGraph, n_spes: int, ls_cache_bytes: int):
        self.graph = graph
        self.ls_cache_bytes = ls_cache_bytes
        self.pending: Dict[Task, int] = {
            task: len(task.depends_on) for task in graph.tasks
        }
        self.ready: List[Task] = [
            task for task in graph.tasks if not task.depends_on
        ]
        self.completed = 0
        self.waiters: List = []
        # Which SPEs hold a task's output in their LS (memory always has
        # a write-through copy, so eviction is a plain drop).
        self.residency: Dict[Task, Set[int]] = {}
        self._cache: Dict[int, Deque[Tuple[Task, int]]] = {
            worker: deque() for worker in range(n_spes)
        }
        self._cache_used: Dict[int, int] = {worker: 0 for worker in range(n_spes)}

    def pick(self, worker: int) -> Optional[Task]:
        """Pop the ready task with the most bytes resident on ``worker``."""
        if not self.ready:
            return None
        best_index = 0
        best_score = -1
        for index, task in enumerate(self.ready):
            score = sum(
                dep.output_bytes
                for dep in task.depends_on
                if worker in self.residency.get(dep, ())
            )
            if score > best_score:
                best_index, best_score = index, score
        return self.ready.pop(best_index)

    def cache_output(self, worker: int, task: Task) -> None:
        self._insert(worker, task)

    def cache_copy(self, worker: int, task: Task) -> None:
        """A forwarded input now also lives in the consumer's LS."""
        if worker not in self.residency.get(task, set()):
            self._insert(worker, task)

    def _insert(self, worker: int, task: Task) -> None:
        if task.output_bytes > self.ls_cache_bytes:
            return  # uncacheable; memory keeps the only copy
        cache = self._cache[worker]
        while self._cache_used[worker] + task.output_bytes > self.ls_cache_bytes:
            evicted, size = cache.popleft()
            self._cache_used[worker] -= size
            self.residency[evicted].discard(worker)
        cache.append((task, task.output_bytes))
        self._cache_used[worker] += task.output_bytes
        self.residency.setdefault(task, set()).add(worker)

    def complete(self, task: Task) -> None:
        self.completed += 1
        for consumer in self.graph.consumers[task]:
            self.pending[consumer] -= 1
            if self.pending[consumer] == 0:
                self.ready.append(consumer)
        waiters, self.waiters = self.waiters, []
        for waiter in waiters:
            waiter.succeed()
